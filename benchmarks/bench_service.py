"""Service benchmark: cold vs warm cache, concurrent load, bit-identity.

Starts the HTTP serving layer in-process (ephemeral port, temporary cache
directory), measures a cold ``/analyze`` (full pipeline: conversion,
aggregation, minimisation) against warm repeats served from the skeleton
store, then drives a mixed concurrent load and reports throughput and
latency percentiles.  The ``service`` section is merged into an existing
``BENCH_fig2.json`` report (or a fresh one is created)::

    PYTHONPATH=src python benchmarks/bench_service.py [BENCH_fig2.json]

Fails (exit 1) if the warm path is not at least 10x faster than the cold
path, if fewer than 4 clients were exercised, or if any served response is
not bit-identical to the in-process result.
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.measures import Unreliability
from repro.core.study import Study, StudyOptions
from repro.dft import galileo
from repro.service.client import ServiceClient
from repro.service.server import serve
from repro.service.store import SkeletonStore
from repro.systems import cardiac_assist_system

NUM_CLIENTS = 4
REQUESTS_PER_CLIENT = 25
WARM_REPEATS = 5
MISSION_TIMES = [0.5, 1.0, 2.0]
SWEEP_ROWS = 48
SWEEP_POOL_PROCESSES = 4

SWEEP_TREE = """
param lam = 0.5;
toplevel "sys";
"sys" and "left" "right";
"left" or "a" "b";
"right" or "c" "d";
"a" lambda=lam;
"b" lambda=0.7;
"c" lambda=lam;
"d" lambda=0.9;
"""


def _strip(response: dict) -> dict:
    slim = dict(response)
    slim.pop("timings", None)
    slim.pop("service", None)
    options = dict(slim.get("options", {}))
    options.pop("skeleton_cache", None)
    slim["options"] = options
    return slim


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def bench_service() -> dict:
    tree = cardiac_assist_system()
    text = galileo.write(tree)
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as cache_dir:
        server = serve(cache_dir, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)

            start = time.perf_counter()
            cold = client.analyze(text, times=MISSION_TIMES)
            cold_seconds = time.perf_counter() - start

            warm_seconds = float("inf")
            warm = None
            for _ in range(WARM_REPEATS):
                start = time.perf_counter()
                warm = client.analyze(text, times=MISSION_TIMES)
                warm_seconds = min(warm_seconds, time.perf_counter() - start)

            # Bit-identity: the served response must carry exactly what an
            # in-process cached study computes on the same store.
            local = Study(
                galileo.parse(text, name="<request>"),
                StudyOptions(),
                skeleton_cache=SkeletonStore(cache_dir),
            ).evaluate(Unreliability(MISSION_TIMES), on_error="record")
            local_dict = _strip(local.to_dict(include_steps=False))
            bit_identical = (
                _strip(cold) == local_dict and _strip(warm) == local_dict
            )

            # Concurrent load: NUM_CLIENTS threads, warm requests only.
            latencies = []
            lock = threading.Lock()

            def client_loop():
                worker = ServiceClient(server.url)
                mine = []
                for _ in range(REQUESTS_PER_CLIENT):
                    start = time.perf_counter()
                    worker.analyze(text, times=MISSION_TIMES)
                    mine.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(mine)

            wall_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
                for future in [
                    pool.submit(client_loop) for _ in range(NUM_CLIENTS)
                ]:
                    future.result()
            wall_seconds = time.perf_counter() - wall_start

            metrics = client.metrics()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT
    return {
        "tree": tree.name,
        "mission_times": MISSION_TIMES,
        "cold_analyze_seconds": cold_seconds,
        "warm_analyze_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "bit_identical": bit_identical,
        "load": {
            "clients": NUM_CLIENTS,
            "requests": total_requests,
            "wall_seconds": wall_seconds,
            "requests_per_second": total_requests / wall_seconds,
            "p50_ms": _percentile(latencies, 0.50) * 1e3,
            "p95_ms": _percentile(latencies, 0.95) * 1e3,
            "mean_ms": statistics.fmean(latencies) * 1e3,
        },
        "server_metrics": metrics["endpoints"].get("/analyze", {}),
    }


def _sweep_rows_per_second(processes: int) -> tuple:
    """Warm sweep throughput against a server with ``processes`` workers."""
    samples = [{"lam": 0.1 + 0.05 * k} for k in range(SWEEP_ROWS)]
    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as cache_dir:
        server = serve(cache_dir, port=0, processes=processes)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            # Warm the skeleton store (and the worker kernels) first so the
            # measurement sees only row evaluation, not the cold build.
            client.sweep(SWEEP_TREE, samples=samples[:1], times=MISSION_TIMES)
            best = float("inf")
            response = None
            for _ in range(WARM_REPEATS):
                start = time.perf_counter()
                response = client.sweep(
                    SWEEP_TREE, samples=samples, times=MISSION_TIMES
                )
                best = min(best, time.perf_counter() - start)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return best, response


def bench_sweep_pool() -> dict:
    """Satellite benchmark: `/sweep` rows through the persistent worker pool
    vs the inline engine, same store-warm request."""
    inline_seconds, inline_response = _sweep_rows_per_second(0)
    pooled_seconds, pooled_response = _sweep_rows_per_second(SWEEP_POOL_PROCESSES)
    identical = [
        (row["sample"], row["measures"])
        for row in inline_response["rows"]
    ] == [
        (row["sample"], row["measures"])
        for row in pooled_response["rows"]
    ]
    return {
        "rows": SWEEP_ROWS,
        "pool_processes": SWEEP_POOL_PROCESSES,
        "inline_seconds": inline_seconds,
        "pooled_seconds": pooled_seconds,
        "inline_rows_per_second": SWEEP_ROWS / inline_seconds,
        "pooled_rows_per_second": SWEEP_ROWS / pooled_seconds,
        "pooled_speedup": inline_seconds / pooled_seconds,
        "pooled_used_service_pool": bool(
            pooled_response["options"].get("service_pool", False)
        ),
        "rows_identical": identical,
    }


def main(argv) -> int:
    report_path = Path(argv[1] if len(argv) > 1 else "BENCH_fig2.json")
    section = bench_service()
    section["sweep_pool"] = bench_sweep_pool()

    report = {}
    if report_path.exists():
        report = json.loads(report_path.read_text())
    report["service"] = section
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps({"service": section}, indent=2, sort_keys=True))

    failures = []
    if not section["sweep_pool"]["rows_identical"]:
        failures.append("pooled sweep rows differ from inline sweep rows")
    if not section["sweep_pool"]["pooled_used_service_pool"]:
        failures.append("pooled sweep fell back to the inline engine")
    if section["warm_speedup"] < 10.0:
        failures.append(
            f"warm analyze only {section['warm_speedup']:.1f}x faster than cold "
            "(need >= 10x)"
        )
    if section["load"]["clients"] < 4:
        failures.append("load test ran fewer than 4 concurrent clients")
    if not section["bit_identical"]:
        failures.append("served responses differ from in-process results")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
