"""Service benchmark: cold vs warm cache, concurrent load, bit-identity.

Starts the HTTP serving layer in-process (ephemeral port, temporary cache
directory), measures a cold ``/analyze`` (full pipeline: conversion,
aggregation, minimisation) against warm repeats served from the skeleton
store, then drives a mixed concurrent load and reports throughput and
latency percentiles.  The ``service`` section is merged into an existing
``BENCH_fig2.json`` report (or a fresh one is created)::

    PYTHONPATH=src python benchmarks/bench_service.py [BENCH_fig2.json]

Fails (exit 1) if the warm path is not at least 10x faster than the cold
path, if fewer than 4 clients were exercised, or if any served response is
not bit-identical to the in-process result.
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.measures import Unreliability
from repro.core.study import Study, StudyOptions
from repro.dft import galileo
from repro.service.client import ServiceClient
from repro.service.server import serve
from repro.service.store import SkeletonStore
from repro.systems import cardiac_assist_system

NUM_CLIENTS = 4
REQUESTS_PER_CLIENT = 25
WARM_REPEATS = 5
MISSION_TIMES = [0.5, 1.0, 2.0]


def _strip(response: dict) -> dict:
    slim = dict(response)
    slim.pop("timings", None)
    slim.pop("service", None)
    options = dict(slim.get("options", {}))
    options.pop("skeleton_cache", None)
    slim["options"] = options
    return slim


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def bench_service() -> dict:
    tree = cardiac_assist_system()
    text = galileo.write(tree)
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as cache_dir:
        server = serve(cache_dir, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)

            start = time.perf_counter()
            cold = client.analyze(text, times=MISSION_TIMES)
            cold_seconds = time.perf_counter() - start

            warm_seconds = float("inf")
            warm = None
            for _ in range(WARM_REPEATS):
                start = time.perf_counter()
                warm = client.analyze(text, times=MISSION_TIMES)
                warm_seconds = min(warm_seconds, time.perf_counter() - start)

            # Bit-identity: the served response must carry exactly what an
            # in-process cached study computes on the same store.
            local = Study(
                galileo.parse(text, name="<request>"),
                StudyOptions(),
                skeleton_cache=SkeletonStore(cache_dir),
            ).evaluate(Unreliability(MISSION_TIMES), on_error="record")
            local_dict = _strip(local.to_dict(include_steps=False))
            bit_identical = (
                _strip(cold) == local_dict and _strip(warm) == local_dict
            )

            # Concurrent load: NUM_CLIENTS threads, warm requests only.
            latencies = []
            lock = threading.Lock()

            def client_loop():
                worker = ServiceClient(server.url)
                mine = []
                for _ in range(REQUESTS_PER_CLIENT):
                    start = time.perf_counter()
                    worker.analyze(text, times=MISSION_TIMES)
                    mine.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(mine)

            wall_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
                for future in [
                    pool.submit(client_loop) for _ in range(NUM_CLIENTS)
                ]:
                    future.result()
            wall_seconds = time.perf_counter() - wall_start

            metrics = client.metrics()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT
    return {
        "tree": tree.name,
        "mission_times": MISSION_TIMES,
        "cold_analyze_seconds": cold_seconds,
        "warm_analyze_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "bit_identical": bit_identical,
        "load": {
            "clients": NUM_CLIENTS,
            "requests": total_requests,
            "wall_seconds": wall_seconds,
            "requests_per_second": total_requests / wall_seconds,
            "p50_ms": _percentile(latencies, 0.50) * 1e3,
            "p95_ms": _percentile(latencies, 0.95) * 1e3,
            "mean_ms": statistics.fmean(latencies) * 1e3,
        },
        "server_metrics": metrics["endpoints"].get("/analyze", {}),
    }


def main(argv) -> int:
    report_path = Path(argv[1] if len(argv) > 1 else "BENCH_fig2.json")
    section = bench_service()

    report = {}
    if report_path.exists():
        report = json.loads(report_path.read_text())
    report["service"] = section
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps({"service": section}, indent=2, sort_keys=True))

    failures = []
    if section["warm_speedup"] < 10.0:
        failures.append(
            f"warm analyze only {section['warm_speedup']:.1f}x faster than cold "
            "(need >= 10x)"
        )
    if section["load"]["clients"] < 4:
        failures.append("load test ran fewer than 4 concurrent clients")
    if not section["bit_identical"]:
        failures.append("served responses differ from in-process results")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
