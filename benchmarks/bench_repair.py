"""E8 — repairable elements and unavailability (Section 7.2, Figures 13-15).

The repairable AND over two repairable basic events composes and aggregates to
the small birth-death CTMC of Figure 15b; its steady-state unavailability has
the closed form ``(lambda / (lambda + mu))^2``.  A larger repairable plant
exercises the repairable OR/AND behaviours together.
"""

import pytest

from repro import CompositionalAnalyzer
from repro.ctmc import ctmc_from_ioimc
from repro.systems import repairable_and_system, repairable_plant, repairable_voting_system

from conftest import record

FAILURE_RATE = 1.0
REPAIR_RATE = 2.0


@pytest.mark.benchmark(group="repair")
def test_repairable_and_unavailability(benchmark):
    tree = repairable_and_system(failure_rate=FAILURE_RATE, repair_rate=REPAIR_RATE)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        return analyzer.unavailability(), analyzer.final_ioimc

    value, final = benchmark(run)
    closed_form = (FAILURE_RATE / (FAILURE_RATE + REPAIR_RATE)) ** 2
    ctmc = ctmc_from_ioimc(final)
    record(
        benchmark,
        experiment="E8 (Figure 15, repairable AND)",
        steady_state_unavailability=value,
        closed_form=closed_form,
        final_ctmc_states=ctmc.num_states,
        paper_claim="composition yields the small CTMC of Figure 15b",
    )
    assert value == pytest.approx(closed_form, abs=1e-9)
    assert ctmc.num_states <= 5


@pytest.mark.benchmark(group="repair")
def test_repairable_voting_unavailability(benchmark):
    tree = repairable_voting_system(num_components=3, threshold=2,
                                    failure_rate=1.0, repair_rate=5.0)

    def run():
        return CompositionalAnalyzer(tree).unavailability()

    value = benchmark(run)
    # Closed form for 2-out-of-3 identical independent repairable components.
    unavailability = 1.0 / 6.0  # lambda / (lambda + mu) with mu = 5
    closed_form = (
        3 * unavailability**2 * (1 - unavailability) + unavailability**3
    )
    record(
        benchmark,
        experiment="E8 (repairable 2-out-of-3)",
        steady_state_unavailability=value,
        closed_form=closed_form,
    )
    assert value == pytest.approx(closed_form, abs=1e-9)


@pytest.mark.benchmark(group="repair")
def test_repairable_plant_transient_unavailability(benchmark):
    tree = repairable_plant()

    def run():
        analyzer = CompositionalAnalyzer(tree)
        return analyzer.unavailability(time=2.0), analyzer.unavailability()

    transient, steady = benchmark(run)
    record(
        benchmark,
        experiment="E8 (repairable plant)",
        transient_unavailability_t2=transient,
        steady_state_unavailability=steady,
    )
    assert 0.0 < transient <= steady + 1e-9
