"""E9 — scalability sweep over the cascaded-PAND family (extends Section 5.2).

The paper makes its state-space argument on a single instance (3 modules of 4
basic events).  This benchmark sweeps the family and records, per instance,
the peak intermediate I/O-IMC of the compositional pipeline next to the size
of the monolithic DIFTree chain.  The expected shape: the monolithic chain
grows exponentially with the number of basic events while the compositional
peak stays small (the per-module chains lump to their failure-count skeleton).
"""

import time

import pytest

from repro import AnalysisOptions, CompositionalAnalyzer
from repro.baselines import MonolithicMarkovGenerator
from repro.systems import cascaded_pand_family

from conftest import record

MISSION_TIME = 1.0

#: (number of AND modules, basic events per module)
SWEEP = [(3, 2), (3, 3), (3, 4), (4, 3)]


@pytest.mark.benchmark(group="scalability-compositional")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_compositional_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, compositional)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        unreliability=value,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
    )
    assert 0.0 <= value <= 1.0
    # The compositional peak grows mildly with the module size, never
    # exponentially in the total number of basic events.
    assert statistics.peak_product_states < 60 * events_per_module * num_modules


@pytest.mark.benchmark(group="scalability-monolithic")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_monolithic_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        return MonolithicMarkovGenerator(tree).build()

    built = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, DIFTree monolithic)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        states=built.num_states,
        transitions=built.num_transitions,
    )
    # Exponential growth in the number of basic events: at least one state per
    # subset of basic events that can fail before the system does.
    assert built.num_states >= 2 ** (num_modules * (events_per_module - 1))


@pytest.mark.benchmark(group="scalability-ordering")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_modular_plan_peak_not_worse_than_linked(
    benchmark, num_modules, events_per_module
):
    """The precomputed modular plan must not inflate the peak product."""
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree, AnalysisOptions(ordering="modular"))
        analyzer.final_ioimc
        return analyzer.statistics

    modular_stats = benchmark(run)
    linked = CompositionalAnalyzer(tree, AnalysisOptions(ordering="linked"))
    linked.final_ioimc
    linked_stats = linked.statistics
    record(
        benchmark,
        experiment="E11 (modular plan vs linked ordering)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        modular_peak_product_states=modular_stats.peak_product_states,
        linked_peak_product_states=linked_stats.peak_product_states,
        modular_peak_product_transitions=modular_stats.peak_product_transitions,
        linked_peak_product_transitions=linked_stats.peak_product_transitions,
    )
    assert modular_stats.peak_product_states <= linked_stats.peak_product_states


@pytest.mark.benchmark(group="scalability-fusion")
def test_fused_composition_faster_than_compose_then_reduce(benchmark):
    """Fusing maximal progress into the product exploration beats composing
    first and reducing afterwards, and never inflates the recorded peaks."""
    tree = cascaded_pand_family(3, 6)

    def run_fused():
        analyzer = CompositionalAnalyzer(
            tree, AnalysisOptions(ordering="modular", fuse=True)
        )
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, fused_stats = benchmark(run_fused)

    start = time.perf_counter()
    unfused = CompositionalAnalyzer(
        tree, AnalysisOptions(ordering="modular", fuse=False)
    )
    unfused_value = unfused.unreliability(MISSION_TIME)
    unfused_elapsed = time.perf_counter() - start

    # Isolated composition step on the two largest community members: the
    # fused exploration must beat composing first and reducing afterwards.
    from repro.core import convert
    from repro.ioimc import (
        apply_maximal_progress,
        parallel,
        remove_internal_self_loops,
    )

    models = sorted(convert(tree).models(), key=lambda m: -m.num_states)
    left, right = models[0], models[1]

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - t0)
        return result, min(times)

    fused_model, fused_step = best_of(lambda: parallel(left, right, fuse=True))
    reduced_model, unfused_step = best_of(
        lambda: remove_internal_self_loops(
            apply_maximal_progress(parallel(left, right))
        ).restrict_to_reachable()
    )

    record(
        benchmark,
        experiment="E12 (fused compose+maximal-progress vs compose-then-reduce)",
        unreliability=value,
        fused_peak_product_states=fused_stats.peak_product_states,
        fused_peak_product_transitions=fused_stats.peak_product_transitions,
        unfused_peak_product_states=unfused.statistics.peak_product_states,
        unfused_peak_product_transitions=unfused.statistics.peak_product_transitions,
        unfused_pipeline_wall_seconds=unfused_elapsed,
        fused_step_wall_seconds=fused_step,
        compose_then_reduce_step_wall_seconds=unfused_step,
    )
    assert value == pytest.approx(unfused_value, abs=1e-9)
    assert fused_stats.peak_product_states <= unfused.statistics.peak_product_states
    assert (
        fused_stats.peak_product_transitions
        <= unfused.statistics.peak_product_transitions
    )
    assert fused_model.num_states == reduced_model.num_states
    # The wall-clock comparison (fused ~1.6-2.3x faster on the development
    # machine) is recorded above rather than asserted: timing assertions flake
    # on loaded CI runners, and the structural assertions already pin that the
    # fused route produces the identical, never-larger model.


@pytest.mark.benchmark(group="scalability-comparison")
def test_paper_instance_gap(benchmark):
    """The headline comparison on the paper's own instance (3 x 4)."""
    tree = cascaded_pand_family(3, 4)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        peak = analyzer.statistics.peak_product_states
        monolithic = MonolithicMarkovGenerator(tree).build()
        return peak, monolithic.num_states

    peak, monolithic_states = benchmark(run)
    record(
        benchmark,
        experiment="E9 (state-space gap on the CPS instance)",
        compositional_peak_states=peak,
        monolithic_states=monolithic_states,
        reduction_factor=monolithic_states / peak,
    )
    assert monolithic_states / peak > 20.0
