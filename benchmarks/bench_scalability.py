"""E9 — scalability sweep over the cascaded-PAND family (extends Section 5.2).

The paper makes its state-space argument on a single instance (3 modules of 4
basic events).  This benchmark sweeps the family and records, per instance,
the peak intermediate I/O-IMC of the compositional pipeline next to the size
of the monolithic DIFTree chain.  The expected shape: the monolithic chain
grows exponentially with the number of basic events while the compositional
peak stays small (the per-module chains lump to their failure-count skeleton).
"""

import pytest

from repro import CompositionalAnalyzer
from repro.baselines import MonolithicMarkovGenerator
from repro.systems import cascaded_pand_family

from conftest import record

MISSION_TIME = 1.0

#: (number of AND modules, basic events per module)
SWEEP = [(3, 2), (3, 3), (3, 4), (4, 3)]


@pytest.mark.benchmark(group="scalability-compositional")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_compositional_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, compositional)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        unreliability=value,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
    )
    assert 0.0 <= value <= 1.0
    # The compositional peak grows mildly with the module size, never
    # exponentially in the total number of basic events.
    assert statistics.peak_product_states < 60 * events_per_module * num_modules


@pytest.mark.benchmark(group="scalability-monolithic")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_monolithic_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        return MonolithicMarkovGenerator(tree).build()

    built = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, DIFTree monolithic)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        states=built.num_states,
        transitions=built.num_transitions,
    )
    # Exponential growth in the number of basic events: at least one state per
    # subset of basic events that can fail before the system does.
    assert built.num_states >= 2 ** (num_modules * (events_per_module - 1))


@pytest.mark.benchmark(group="scalability-comparison")
def test_paper_instance_gap(benchmark):
    """The headline comparison on the paper's own instance (3 x 4)."""
    tree = cascaded_pand_family(3, 4)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        peak = analyzer.statistics.peak_product_states
        monolithic = MonolithicMarkovGenerator(tree).build()
        return peak, monolithic.num_states

    peak, monolithic_states = benchmark(run)
    record(
        benchmark,
        experiment="E9 (state-space gap on the CPS instance)",
        compositional_peak_states=peak,
        monolithic_states=monolithic_states,
        reduction_factor=monolithic_states / peak,
    )
    assert monolithic_states / peak > 20.0
