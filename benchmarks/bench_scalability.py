"""E9 — scalability sweep over the cascaded-PAND family (extends Section 5.2).

The paper makes its state-space argument on a single instance (3 modules of 4
basic events).  This benchmark sweeps the family and records, per instance,
the peak intermediate I/O-IMC of the compositional pipeline next to the size
of the monolithic DIFTree chain.  The expected shape: the monolithic chain
grows exponentially with the number of basic events while the compositional
peak stays small (the per-module chains lump to their failure-count skeleton).
"""

import os
import resource
import time

import pytest

import numpy as np

from repro import (
    AnalysisOptions,
    CompositionalAnalyzer,
    RateSweep,
    SweepStudy,
    UnreliabilityBounds,
)
from repro.baselines import MonolithicMarkovGenerator
from repro.core import signals
from repro.core.sweep import with_rate_parameters
from repro.ioimc import minimize_strong, minimize_weak
from repro.systems import cascaded_pand_family, pand_race_bank

from conftest import record
from workloads import largest_minimisation_workload, tau_heavy_chain

MISSION_TIME = 1.0

#: (number of AND modules, basic events per module)
SWEEP = [(3, 2), (3, 3), (3, 4), (4, 3)]

#: Larger configurations (more modules, deeper per-module chains) that the
#: signature-refinement minimiser made impractical to sweep routinely; the
#: splitter engine runs the full pipeline on them in well under a second.
LARGE_SWEEP = [(4, 5), (5, 4), (5, 5), (6, 5)]

#: Isolated weak-minimisation workloads: (modules, events) pairs whose
#: largest tau-heavy intermediate product is minimised with both engines.
MINIMISATION_SWEEP = [(3, 5), (3, 6)]

#: The biggest tier (tens of thousands of product states) is skipped by
#: default — the signature reference needs minutes there.  Opt in with
#: ``RUN_BIG_BENCH=1 pytest benchmarks/bench_scalability.py``.
BIG_MINIMISATION_SWEEP = [(3, 7), (4, 6)]

#: Tau-heavy chain sizes for the growth tier: each size quadruples the
#: refinement work of the previous one (the chain quotient is the input
#: itself, so the engines split to singletons).  Grown until the *state
#: count* — not wall time — is the practical limit on a CI runner; peak RSS
#: is recorded alongside so the memory trajectory is tracked per PR.
GROWTH_SWEEP = [8_581, 20_000, 40_000]

big_tier = pytest.mark.skipif(
    os.environ.get("RUN_BIG_BENCH") != "1",
    reason="biggest scalability tier; set RUN_BIG_BENCH=1 to run",
)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


@pytest.mark.benchmark(group="scalability-compositional")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_compositional_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, compositional)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        unreliability=value,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
    )
    assert 0.0 <= value <= 1.0
    # The compositional peak grows mildly with the module size, never
    # exponentially in the total number of basic events.
    assert statistics.peak_product_states < 60 * events_per_module * num_modules


@pytest.mark.benchmark(group="scalability-monolithic")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_monolithic_scaling(benchmark, num_modules, events_per_module):
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        return MonolithicMarkovGenerator(tree).build()

    built = benchmark(run)
    record(
        benchmark,
        experiment="E9 (scalability, DIFTree monolithic)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        states=built.num_states,
        transitions=built.num_transitions,
    )
    # Exponential growth in the number of basic events: at least one state per
    # subset of basic events that can fail before the system does.
    assert built.num_states >= 2 ** (num_modules * (events_per_module - 1))


@pytest.mark.benchmark(group="scalability-ordering")
@pytest.mark.parametrize("num_modules,events_per_module", SWEEP)
def test_modular_plan_peak_not_worse_than_linked(
    benchmark, num_modules, events_per_module
):
    """The precomputed modular plan must not inflate the peak product."""
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree, AnalysisOptions(ordering="modular"))
        analyzer.final_ioimc
        return analyzer.statistics

    modular_stats = benchmark(run)
    linked = CompositionalAnalyzer(tree, AnalysisOptions(ordering="linked"))
    linked.final_ioimc
    linked_stats = linked.statistics
    record(
        benchmark,
        experiment="E11 (modular plan vs linked ordering)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        modular_peak_product_states=modular_stats.peak_product_states,
        linked_peak_product_states=linked_stats.peak_product_states,
        modular_peak_product_transitions=modular_stats.peak_product_transitions,
        linked_peak_product_transitions=linked_stats.peak_product_transitions,
    )
    assert modular_stats.peak_product_states <= linked_stats.peak_product_states


@pytest.mark.benchmark(group="scalability-fusion")
def test_fused_composition_faster_than_compose_then_reduce(benchmark):
    """Fusing maximal progress into the product exploration beats composing
    first and reducing afterwards, and never inflates the recorded peaks."""
    tree = cascaded_pand_family(3, 6)

    def run_fused():
        analyzer = CompositionalAnalyzer(
            tree, AnalysisOptions(ordering="modular", fuse=True)
        )
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, fused_stats = benchmark(run_fused)

    start = time.perf_counter()
    unfused = CompositionalAnalyzer(
        tree, AnalysisOptions(ordering="modular", fuse=False)
    )
    unfused_value = unfused.unreliability(MISSION_TIME)
    unfused_elapsed = time.perf_counter() - start

    # Isolated composition step on the two largest community members: the
    # fused exploration must beat composing first and reducing afterwards.
    from repro.core import convert
    from repro.ioimc import (
        apply_maximal_progress,
        parallel,
        remove_internal_self_loops,
    )

    models = sorted(convert(tree).models(), key=lambda m: -m.num_states)
    left, right = models[0], models[1]

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - t0)
        return result, min(times)

    fused_model, fused_step = best_of(lambda: parallel(left, right, fuse=True))
    reduced_model, unfused_step = best_of(
        lambda: remove_internal_self_loops(
            apply_maximal_progress(parallel(left, right))
        ).restrict_to_reachable()
    )

    record(
        benchmark,
        experiment="E12 (fused compose+maximal-progress vs compose-then-reduce)",
        unreliability=value,
        fused_peak_product_states=fused_stats.peak_product_states,
        fused_peak_product_transitions=fused_stats.peak_product_transitions,
        unfused_peak_product_states=unfused.statistics.peak_product_states,
        unfused_peak_product_transitions=unfused.statistics.peak_product_transitions,
        unfused_pipeline_wall_seconds=unfused_elapsed,
        fused_step_wall_seconds=fused_step,
        compose_then_reduce_step_wall_seconds=unfused_step,
    )
    assert value == pytest.approx(unfused_value, abs=1e-9)
    assert fused_stats.peak_product_states <= unfused.statistics.peak_product_states
    assert (
        fused_stats.peak_product_transitions
        <= unfused.statistics.peak_product_transitions
    )
    assert fused_model.num_states == reduced_model.num_states
    # The wall-clock comparison (fused ~1.6-2.3x faster on the development
    # machine) is recorded above rather than asserted: timing assertions flake
    # on loaded CI runners, and the structural assertions already pin that the
    # fused route produces the identical, never-larger model.


@pytest.mark.benchmark(group="scalability-large")
@pytest.mark.parametrize("num_modules,events_per_module", LARGE_SWEEP)
def test_large_configurations_full_pipeline(benchmark, num_modules, events_per_module):
    """Full pipeline on the configurations the splitter engine unlocked.

    Also records the wall time of the *peak* weak-minimisation step (the
    largest tau-heavy intermediate product of the instance) — the number the
    ROADMAP's "scale bench_scalability further" item tracks per PR.
    """
    tree = cascaded_pand_family(num_modules, events_per_module)

    def run():
        analyzer = CompositionalAnalyzer(tree, AnalysisOptions(ordering="modular"))
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)

    workload = largest_minimisation_workload(num_modules, events_per_module)
    start = time.perf_counter()
    minimised = minimize_weak(workload)
    peak_minimisation_seconds = time.perf_counter() - start

    record(
        benchmark,
        experiment="E13 (large configurations, splitter minimiser)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        basic_events=num_modules * events_per_module,
        unreliability=value,
        peak_product_states=statistics.peak_product_states,
        peak_reduced_states=statistics.peak_reduced_states,
        peak_minimisation_input_states=workload.num_states,
        peak_minimisation_output_states=minimised.num_states,
        peak_weak_minimisation_wall_seconds=peak_minimisation_seconds,
        peak_rss_kb=_peak_rss_kb(),
    )
    assert 0.0 <= value <= 1.0
    assert statistics.peak_product_states < 60 * events_per_module * num_modules


def _minimisation_comparison(benchmark, num_modules, events_per_module, repeats=3):
    workload = largest_minimisation_workload(num_modules, events_per_module)

    minimised = benchmark(lambda: minimize_weak(workload))

    # Same best-of-N policy on both sides: pytest-benchmark reports the min
    # over its rounds for the splitter, so take the min of `repeats` manual
    # runs for the signature reference (one slow outlier must not skew the
    # recorded speedup either way).
    reference = None
    signature_seconds = None
    for _ in range(repeats):
        start = time.perf_counter()
        reference = minimize_weak(workload, algorithm="signature")
        elapsed = time.perf_counter() - start
        signature_seconds = elapsed if signature_seconds is None else min(
            signature_seconds, elapsed
        )
    splitter_seconds = benchmark.stats.stats.min

    record(
        benchmark,
        experiment="E14 (weak minimisation: splitter vs signature engine)",
        num_modules=num_modules,
        events_per_module=events_per_module,
        input_states=workload.num_states,
        input_transitions=workload.num_transitions,
        minimised_states=minimised.num_states,
        timing_repeats=repeats,
        splitter_wall_seconds=splitter_seconds,
        signature_wall_seconds=signature_seconds,
        speedup=signature_seconds / splitter_seconds if splitter_seconds else None,
        peak_rss_kb=_peak_rss_kb(),
    )
    # Both engines must compute the identical quotient; the wall-clock gap is
    # recorded rather than asserted (timing assertions flake on loaded CI).
    assert minimised.num_states == reference.num_states
    assert minimised.num_transitions == reference.num_transitions


@pytest.mark.benchmark(group="scalability-minimisation")
@pytest.mark.parametrize("num_modules,events_per_module", MINIMISATION_SWEEP)
def test_weak_minimisation_splitter_vs_signature(benchmark, num_modules, events_per_module):
    """The isolated weak-minimisation step, both engines, mid-size tier."""
    _minimisation_comparison(benchmark, num_modules, events_per_module)


@big_tier
@pytest.mark.benchmark(group="scalability-minimisation-big")
@pytest.mark.parametrize("num_modules,events_per_module", BIG_MINIMISATION_SWEEP)
def test_weak_minimisation_biggest_tier(benchmark, num_modules, events_per_module):
    """The previously impractical tier (needs ``RUN_BIG_BENCH=1``)."""
    # The signature reference needs ~a minute per run here; two repeats keep
    # the opt-in tier under a few minutes while still discarding one outlier.
    _minimisation_comparison(benchmark, num_modules, events_per_module, repeats=2)


@big_tier
@pytest.mark.benchmark(group="scalability-minimisation-growth")
@pytest.mark.parametrize("num_states", GROWTH_SWEEP)
def test_strong_minimisation_growth(benchmark, num_states):
    """E15 — grow the chain until the state count is the limit.

    The strong smaller-half engine on the singleton-quotient tau chain: each
    state is a distinct distance from the sink, so refinement cannot stop
    early and the cost is a pure function of the state count.  One timed run
    per size (the workload is deterministic and seconds long — calibration
    rounds would only multiply the tier's runtime), with the process's peak
    RSS recorded next to the wall time.
    """
    chain = tau_heavy_chain(num_states)
    minimised = benchmark.pedantic(
        lambda: minimize_strong(chain), rounds=1, iterations=1
    )
    record(
        benchmark,
        experiment="E15 (strong minimisation growth, tau-heavy chain)",
        input_states=chain.num_states,
        input_transitions=chain.num_transitions,
        minimised_states=minimised.num_states,
        wall_seconds=benchmark.stats.stats.min,
        peak_rss_kb=_peak_rss_kb(),
    )
    # No two chain states are bisimilar: the quotient must be the input.
    assert minimised.num_states == chain.num_states


#: The million-state-tier rung: chain size, wall-clock gate (seconds) and
#: peak-RSS gate (kilobytes) of the 120k growth point below.
GROWTH_GATE_STATES = 120_000
GROWTH_GATE_WALL_SECONDS = 120.0
GROWTH_GATE_RSS_KB = 450_000

_GROWTH_GATE_CHILD = """
import json, resource, sys, time
sys.path.insert(0, {src!r}); sys.path.insert(0, {bench!r})
from workloads import tau_heavy_chain
from repro.ioimc import minimize_strong
chain = tau_heavy_chain({states})
start = time.perf_counter()
minimised = minimize_strong(chain)
wall = time.perf_counter() - start
print(json.dumps({{
    "wall_seconds": wall,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "minimised_states": minimised.num_states,
}}))
"""


@big_tier
@pytest.mark.benchmark(group="scalability-minimisation-growth")
def test_growth_chain_120k_gated(benchmark):
    """The 120k-state growth point, gated: < 120 s wall, < 450 MB peak RSS.

    Runs in a fresh subprocess so the RSS high-water mark belongs to this
    point alone — ``ru_maxrss`` is a process-lifetime peak, and the earlier
    growth points would otherwise leak into (or mask) the gate.
    """
    import json as _json
    import subprocess
    import sys as _sys
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent
    child = _GROWTH_GATE_CHILD.format(
        src=str(bench_dir.parent / "src"),
        bench=str(bench_dir),
        states=GROWTH_GATE_STATES,
    )

    def run():
        completed = subprocess.run(
            [_sys.executable, "-c", child],
            capture_output=True,
            text=True,
            timeout=GROWTH_GATE_WALL_SECONDS * 3,
        )
        assert completed.returncode == 0, completed.stderr
        return _json.loads(completed.stdout)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        experiment="E15 (120k growth point, gated)",
        input_states=GROWTH_GATE_STATES,
        minimised_states=outcome["minimised_states"],
        wall_seconds=outcome["wall_seconds"],
        peak_rss_kb=outcome["peak_rss_kb"],
        wall_gate_seconds=GROWTH_GATE_WALL_SECONDS,
        rss_gate_kb=GROWTH_GATE_RSS_KB,
    )
    # No two chain states are bisimilar: the quotient must be the input.
    assert outcome["minimised_states"] == GROWTH_GATE_STATES
    # Measured ~6 s / ~330 MB on the development machine: both gates leave a
    # wide margin for loaded CI runners while still catching a return to the
    # pre-smaller-half scaling (quadratic work would need ~15 minutes here).
    assert outcome["wall_seconds"] < GROWTH_GATE_WALL_SECONDS
    assert outcome["peak_rss_kb"] < GROWTH_GATE_RSS_KB


#: The opt-in CTMDP sweep configuration: (race-bank channels, samples).  Six
#: channels put the aggregated envelope around 1.4k states — big enough that
#: the legacy dense per-sample engine needs seconds per sample.
BIG_CTMDP_SWEEP = (6, 6)


@big_tier
@pytest.mark.benchmark(group="scalability-ctmdp-sweep")
def test_ctmdp_kernel_sweep_big_tier(benchmark):
    """One CTMDP bound-sweep configuration (needs ``RUN_BIG_BENCH=1``).

    The shared-structure ``CtmdpKernel`` sweep vs the legacy per-sample
    reference engine (full ``instantiate`` plus the dense round-robin
    backward sweep, both directions) on a six-channel FDEP/PAND race bank —
    a genuine CTMDP whose vanishing-choice count grows with the channels.
    Bounds must agree to 1e-9 on every row and the kernel must stay >= 10x
    faster (measured ~20x one tier down, and the gap widens with size).
    """
    channels, num_samples = BIG_CTMDP_SWEEP
    tree = with_rate_parameters(pand_race_bank(channels))
    times = (0.25, 0.5, 1.0, 2.0)
    scales = [0.35, 0.7, 1.0, 1.4, 2.0, 2.9][:num_samples]
    samples = [
        {
            name: max(0.05, min(5.0, nominal * scale))
            for name, nominal in tree.parameters.items()
        }
        for scale in scales
    ]
    study = SweepStudy(tree)
    skeleton = study.skeleton  # shared pipeline warmed outside the timing
    sweep = RateSweep(UnreliabilityBounds(times), samples)

    result = benchmark.pedantic(lambda: study.run(sweep), rounds=1, iterations=1)
    kernel_seconds = benchmark.stats.stats.min
    assert result.num_failed == 0

    legacy_start = time.perf_counter()
    legacy_rows = []
    for sample in samples:
        model = skeleton.instantiate(sample)
        legacy_rows.append(
            tuple(
                model.time_bounded_reachability_curve_reference(
                    signals.FAILED_LABEL, times, maximize=maximize
                )
                for maximize in (False, True)
            )
        )
    legacy_seconds = time.perf_counter() - legacy_start

    worst = 0.0
    for row, (low, high) in zip(result.rows, legacy_rows):
        bounds = row["unreliability_bounds"]
        worst = max(
            worst,
            float(np.max(np.abs(np.asarray(bounds.lower) - low))),
            float(np.max(np.abs(np.asarray(bounds.upper) - high))),
        )
    record(
        benchmark,
        experiment="CTMDP kernel sweep vs legacy reference (big tier)",
        channels=channels,
        states=skeleton.num_states,
        num_samples=num_samples,
        kernel_wall_seconds=kernel_seconds,
        legacy_wall_seconds=legacy_seconds,
        speedup=legacy_seconds / kernel_seconds if kernel_seconds else None,
        max_abs_difference=worst,
        peak_rss_kb=_peak_rss_kb(),
    )
    assert worst <= 1e-9
    assert legacy_seconds / kernel_seconds >= 10.0


@pytest.mark.benchmark(group="scalability-comparison")
def test_paper_instance_gap(benchmark):
    """The headline comparison on the paper's own instance (3 x 4)."""
    tree = cascaded_pand_family(3, 4)

    def run():
        analyzer = CompositionalAnalyzer(tree)
        peak = analyzer.statistics.peak_product_states
        monolithic = MonolithicMarkovGenerator(tree).build()
        return peak, monolithic.num_states

    peak, monolithic_states = benchmark(run)
    record(
        benchmark,
        experiment="E9 (state-space gap on the CPS instance)",
        compositional_peak_states=peak,
        monolithic_states=monolithic_states,
        reduction_factor=monolithic_states / peak,
    )
    assert monolithic_states / peak > 20.0
