"""E4 — inherent non-determinism (Section 4.4, Figure 6).

An FDEP trigger failing both inputs of a PAND gate makes the failure order —
and hence the system unreliability — genuinely non-deterministic.  The
framework detects this and reports CTMDP bounds (Figure 6a); the shared-spare
race of Figure 6b is non-deterministic as well, but with a symmetric top gate
the measure is insensitive to the resolution, so the bounds collapse.
"""

import pytest

from repro.baselines import monolithic_unreliability
from repro.core import detect_nondeterminism
from repro.systems import pand_race_system, shared_spare_race_system

from conftest import record

MISSION_TIME = 1.0


@pytest.mark.benchmark(group="nondeterminism")
def test_fdep_pand_race_bounds(benchmark):
    def run():
        return detect_nondeterminism(pand_race_system(), time=MISSION_TIME)

    report = benchmark(run)
    deterministic_baseline = monolithic_unreliability(pand_race_system(), MISSION_TIME)
    record(
        benchmark,
        experiment="E4 (Figure 6a, FDEP into PAND)",
        nondeterministic=report.nondeterministic,
        lower_bound=report.bounds[0],
        upper_bound=report.bounds[1],
        interval_width=report.spread,
        diftree_deterministic_resolution=deterministic_baseline,
        paper_claim="inherent non-determinism is detected and analysed as a CTMDP",
    )
    assert report.nondeterministic
    assert report.spread > 0.01
    assert report.bounds[0] - 1e-9 <= deterministic_baseline <= report.bounds[1] + 1e-9


@pytest.mark.benchmark(group="nondeterminism")
def test_shared_spare_race_bounds(benchmark):
    def run():
        return detect_nondeterminism(shared_spare_race_system(), time=MISSION_TIME)

    report = benchmark(run)
    record(
        benchmark,
        experiment="E4 (Figure 6b, FDEP into shared-spare gates)",
        nondeterministic=report.nondeterministic,
        lower_bound=report.bounds[0],
        upper_bound=report.bounds[1],
        interval_width=report.spread,
        paper_claim="the spare race is non-deterministic but measure-insensitive here",
    )
    assert report.spread == pytest.approx(0.0, abs=1e-6)
