"""Vendored PR 3 minimisation engine — benchmark baseline ONLY.

This module freezes the splitter engine exactly as it shipped in PR 3
(pure-Python refinable partition, per-predicate BFS tau-closures, no
composite codes, no Paige-Tarjan compound discipline), so the
"minimisation-v2" section of ``smoke_fig2`` can measure the current engine
against the genuine historical baseline on the same machine and Python
build.  Never import this from library code: ``repro.ioimc.bisimulation``
is the live implementation.
"""

from __future__ import annotations

import math
from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.ioimc.rates import ParametricRate

#: Default number of significant digits used when comparing aggregate
#: Markovian rates during bisimulation refinement.  Surfaced on
#: :class:`repro.ioimc.reduction.AggregationOptions` as ``rate_digits``.
DEFAULT_RATE_DIGITS = 10


def canonical_rate(value, digits: int = DEFAULT_RATE_DIGITS):
    """Canonical, hashable key of an aggregate rate for refinement.

    Plain floats are rounded to ``digits`` significant digits, so
    floating-point noise from rate aggregation cannot split blocks; both the
    splitter and the signature refinement engines share this tolerance.

    :class:`~repro.ioimc.rates.ParametricRate` forms are keyed *structurally*
    (each coefficient rounded the same way): two rates whose nominal values
    coincide but whose parameter dependencies differ stay in different rate
    classes.  This is what keeps the minimised quotient of a parametric model
    valid for every positive parameter assignment — the rate-sweep engine
    relies on it.
    """
    if isinstance(value, ParametricRate):
        return value.canonical_key(lambda v: _round_significant(v, digits))
    return _round_significant(value, digits)


def _round_significant(value: float, digits: int) -> float:
    if value == 0.0:
        return 0.0
    magnitude = int(math.floor(math.log10(abs(value))))
    return round(value, digits - magnitude)


class RefinablePartition:
    """A partition of ``0 .. num_elements - 1`` supporting cheap splits.

    Blocks are numbered ``0 .. num_blocks - 1``; new blocks produced by a
    split receive fresh ids (ids are never reused and member sets only ever
    shrink, which the refinement algorithms rely on).
    """

    __slots__ = ("_elems", "_loc", "_block_of", "_start", "_end", "_marked", "_touched")

    def __init__(self, num_elements: int):
        self._elems: List[int] = list(range(num_elements))
        self._loc: List[int] = list(range(num_elements))
        self._block_of: List[int] = [0] * num_elements
        self._start: List[int] = [0] if num_elements else []
        self._end: List[int] = [num_elements] if num_elements else []
        #: Per block: number of marked elements (they occupy the block prefix).
        self._marked: List[int] = [0] if num_elements else []
        #: Blocks currently holding at least one marked element.
        self._touched: List[int] = []

    # ---------------------------------------------------------------- queries
    @property
    def num_elements(self) -> int:
        return len(self._elems)

    @property
    def num_blocks(self) -> int:
        return len(self._start)

    def blocks(self) -> range:
        return range(len(self._start))

    def block_of(self, element: int) -> int:
        return self._block_of[element]

    def size(self, block: int) -> int:
        return self._end[block] - self._start[block]

    def members(self, block: int) -> List[int]:
        """The elements of ``block`` (a snapshot copy, safe across splits)."""
        return self._elems[self._start[block] : self._end[block]]

    def as_sets(self) -> List[FrozenSet[int]]:
        """The partition as frozensets, ordered by smallest member."""
        return sorted(
            (frozenset(self.members(block)) for block in self.blocks()),
            key=min,
        )

    # ----------------------------------------------------------------- splits
    def mark(self, element: int) -> None:
        """Move ``element`` into the marked prefix of its block (idempotent)."""
        block = self._block_of[element]
        position = self._loc[element]
        boundary = self._start[block] + self._marked[block]
        if position < boundary:
            return  # already marked
        if self._marked[block] == 0:
            self._touched.append(block)
        other = self._elems[boundary]
        self._elems[boundary] = element
        self._elems[position] = other
        self._loc[element] = boundary
        self._loc[other] = position
        self._marked[block] += 1

    def split_marked(self) -> List[Tuple[int, int]]:
        """Split every touched block into its marked and unmarked part.

        Returns one ``(marked_block, unmarked_block)`` pair per touched
        block.  The marked part receives a fresh block id and the original
        id keeps the unmarked remainder; a fully marked block is left whole
        and reported as ``(block, -1)``.  All marks are cleared.
        """
        result: List[Tuple[int, int]] = []
        for block in self._touched:
            marked = self._marked[block]
            self._marked[block] = 0
            start = self._start[block]
            if marked == self._end[block] - start:
                result.append((block, -1))
                continue
            new_block = len(self._start)
            self._start.append(start)
            self._end.append(start + marked)
            self._marked.append(0)
            for position in range(start, start + marked):
                self._block_of[self._elems[position]] = new_block
            self._start[block] = start + marked
            result.append((new_block, block))
        self._touched.clear()
        return result

    def split_by_key(self, block: int, key_of: Callable[[int], Hashable]) -> List[int]:
        """Split ``block`` into its groups of equal ``key_of(element)``.

        The first group (in first-seen key order) keeps the block id; the
        remaining groups receive fresh ids, which are returned.  Used for the
        multi-way Markovian rate splits (Valmari-Franceschinis) and for the
        initial label partition.
        """
        start, end = self._start[block], self._end[block]
        groups: Dict[Hashable, List[int]] = {}
        for position in range(start, end):
            element = self._elems[position]
            groups.setdefault(key_of(element), []).append(element)
        if len(groups) <= 1:
            return []
        new_blocks: List[int] = []
        position = start
        target = block
        for index, group in enumerate(groups.values()):
            if index > 0:
                target = len(self._start)
                self._start.append(position)
                self._end.append(position)
                self._marked.append(0)
                new_blocks.append(target)
            self._start[target] = position
            for element in group:
                self._elems[position] = element
                self._loc[element] = position
                self._block_of[element] = target
                position += 1
            self._end[target] = position
        return new_blocks


def refine(
    splitters: Iterable[Hashable],
    process: Callable[[Hashable, Callable[[Hashable], None]], None],
) -> None:
    """Run a worklist-of-splitters refinement loop until stable.

    ``process(splitter, push)`` performs the marking and splitting for one
    pending splitter and must ``push`` every splitter whose defining set
    changed (typically both halves of every split block).  Pushes of items
    already pending are dropped, so re-enqueueing liberally is cheap.  The
    loop terminates because blocks only ever split: the number of distinct
    splitter versions is finite.
    """
    queue: deque = deque()
    pending: Set[Hashable] = set()

    def push(item: Hashable) -> None:
        if item not in pending:
            pending.add(item)
            queue.append(item)

    for item in splitters:
        push(item)
    while queue:
        item = queue.popleft()
        pending.discard(item)
        process(item, push)


class TauCondensation:
    """Condensation of a model's internal-transition graph.

    Computed with an iterative Tarjan pass (explicit stack — the fused
    products this runs on routinely exceed Python's recursion limit).  SCC
    ids are assigned in reverse topological order: every tau successor of an
    SCC has a *smaller* id, so a single id-ordered sweep visits successors
    before their predecessors — the property the weak-bisimulation engine
    uses to share tau-closure information per SCC instead of materialising a
    closure frozenset per state.
    """

    __slots__ = ("scc_of", "members", "tau_succ", "tau_pred")

    def __init__(self, model) -> None:
        internal = model.signature.internal_ids
        num_states = model.num_states
        succ: List[List[int]] = [
            [target for aid, target in model.interactive_pairs(state) if aid in internal]
            for state in range(num_states)
        ]

        #: SCC id of every state.
        self.scc_of: List[int] = [-1] * num_states
        #: Member states of every SCC.
        self.members: List[List[int]] = []

        index = [-1] * num_states
        low = [0] * num_states
        on_stack = [False] * num_states
        tarjan_stack: List[int] = []
        counter = 0
        for root in range(num_states):
            if index[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                state, edge = work[-1]
                if edge == 0:
                    index[state] = low[state] = counter
                    counter += 1
                    tarjan_stack.append(state)
                    on_stack[state] = True
                descended = False
                edges = succ[state]
                while edge < len(edges):
                    target = edges[edge]
                    edge += 1
                    if index[target] == -1:
                        work[-1] = (state, edge)
                        work.append((target, 0))
                        descended = True
                        break
                    if on_stack[target] and index[target] < low[state]:
                        low[state] = index[target]
                if descended:
                    continue
                work.pop()
                if low[state] == index[state]:
                    scc = len(self.members)
                    group: List[int] = []
                    while True:
                        member = tarjan_stack.pop()
                        on_stack[member] = False
                        self.scc_of[member] = scc
                        group.append(member)
                        if member == state:
                            break
                    self.members.append(group)
                if work:
                    parent = work[-1][0]
                    if low[state] < low[parent]:
                        low[parent] = low[state]

        num_sccs = len(self.members)
        succ_sets: List[Set[int]] = [set() for _ in range(num_sccs)]
        for state in range(num_states):
            source = self.scc_of[state]
            for target in succ[state]:
                target_scc = self.scc_of[target]
                if target_scc != source:
                    succ_sets[source].add(target_scc)
        #: Condensed tau edges (deduplicated, no self edges).
        self.tau_succ: List[List[int]] = [sorted(targets) for targets in succ_sets]
        self.tau_pred: List[List[int]] = [[] for _ in range(num_sccs)]
        for source, targets in enumerate(self.tau_succ):
            for target in targets:
                self.tau_pred[target].append(source)

    @property
    def num_sccs(self) -> int:
        return len(self.members)

    def backward_closure(self, seeds: Iterable[int]) -> Set[int]:
        """All SCCs that tau-reach one of ``seeds`` (seeds included)."""
        seen: Set[int] = set(seeds)
        frontier: List[int] = list(seen)
        while frontier:
            scc = frontier.pop()
            for predecessor in self.tau_pred[scc]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        return seen


# ---------------------------------------------------------------------------
# PR 3 bisimulation engine (verbatim)
# ---------------------------------------------------------------------------

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ModelError
from repro.ioimc.actions import intern_action
from repro.ioimc.model import IOIMC

Partition = List[FrozenSet[int]]

#: The available refinement engines.
ALGORITHMS = ("splitter", "signature")


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in ALGORITHMS:
        raise ModelError(
            f"unknown bisimulation algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )


def _canonical_partition(blocks: Sequence[FrozenSet[int]]) -> Partition:
    """Blocks ordered by smallest member — one canonical form for both engines."""
    return sorted((frozenset(block) for block in blocks), key=min)


def _initial_blocks(model: IOIMC, respect_labels: bool) -> Dict[int, int]:
    """Initial partition map: states grouped by their label sets."""
    if not respect_labels:
        return {state: 0 for state in model.states()}
    block_ids: Dict[FrozenSet[str], int] = {}
    block_of: Dict[int, int] = {}
    for state in model.states():
        labels = model.labels(state)
        if labels not in block_ids:
            block_ids[labels] = len(block_ids)
        block_of[state] = block_ids[labels]
    return block_of


def _blocks_from_map(block_of: Dict[int, int]) -> Partition:
    grouped: Dict[int, set] = {}
    for state, block in block_of.items():
        grouped.setdefault(block, set()).add(state)
    return _canonical_partition([frozenset(states) for states in grouped.values()])


def _refine_by_signature(
    block_of: Dict[int, int], signatures: Dict[int, object]
) -> Tuple[Dict[int, int], bool]:
    """Split blocks by signature; return the new map and whether it changed."""
    next_ids: Dict[Tuple[int, object], int] = {}
    new_map: Dict[int, int] = {}
    for state, old_block in block_of.items():
        key = (old_block, signatures[state])
        if key not in next_ids:
            next_ids[key] = len(next_ids)
        new_map[state] = next_ids[key]
    changed = len(next_ids) != len(set(block_of.values()))
    return new_map, changed


# ---------------------------------------------------------------------------
# strong bisimulation
# ---------------------------------------------------------------------------

def strong_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest strong bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels) they enable the same
    actions into the same equivalence classes (implicit input self-loops
    included) and their aggregate Markovian rates into every *other* class
    coincide (ordinary lumpability).
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _strong_partition_signature(model, respect_labels, rate_digits)
    return _strong_partition_splitter(model, respect_labels, rate_digits)


def _strong_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    block_of = _initial_blocks(model, respect_labels)
    input_ids = model.signature.input_ids
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            interactive: Dict[int, set] = {}
            enabled = model.enabled_ids(state)
            for aid, target in model.interactive_pairs(state):
                interactive.setdefault(aid, set()).add(block_of[target])
            for aid in input_ids:
                if aid not in enabled:
                    interactive.setdefault(aid, set()).add(block_of[state])
            # Ordinary lumpability: rates into the state's own class are
            # irrelevant (movement inside the class does not change the class,
            # and the rates towards every other class are required to agree).
            rates: Dict[int, float] = {}
            own_block = block_of[state]
            for target, rate in model.markovian_dict(state).items():
                if block_of[target] == own_block:
                    continue
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            signatures[state] = (
                frozenset((aid, frozenset(blocks)) for aid, blocks in interactive.items()),
                frozenset(
                    (block, canonical_rate(total, rate_digits))
                    for block, total in rates.items()
                ),
            )
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


def _strong_partition_splitter(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Worklist-of-splitters refinement (Paige-Tarjan style on states)."""
    num_states = model.num_states
    if num_states == 0:
        return []
    part = RefinablePartition(num_states)
    if respect_labels:
        part.split_by_key(0, model.labels)

    # Reverse adjacencies: everything a splitter needs is reachable from its
    # member states' in-edges.
    interactive_pred: List[List[Tuple[int, int]]] = [[] for _ in range(num_states)]
    markovian_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
    input_ids = model.signature.input_ids
    input_gaps: List[Tuple[int, ...]] = [()] * num_states
    for state in range(num_states):
        for aid, target in model.interactive_pairs(state):
            interactive_pred[target].append((aid, state))
        for target, rate in model.markovian_dict(state).items():
            markovian_pred[target].append((state, rate))
        if input_ids:
            enabled = model.enabled_ids(state)
            input_gaps[state] = tuple(aid for aid in input_ids if aid not in enabled)

    def process(splitter: int, push) -> None:
        states = part.members(splitter)  # snapshot: valid across splits
        splitter_set = set(states)

        # Interactive: split every block by "has an a-transition into the
        # splitter", one action at a time.  Implicit input self-loops make a
        # splitter member without an explicit input transition its own
        # predecessor.
        buckets: Dict[int, List[int]] = {}
        for target in states:
            for aid, source in interactive_pred[target]:
                buckets.setdefault(aid, []).append(source)
            for aid in input_gaps[target]:
                buckets.setdefault(aid, []).append(target)
        for sources in buckets.values():
            for source in sources:
                part.mark(source)
            for marked, rest in part.split_marked():
                if rest >= 0:
                    push(marked)
                    push(rest)

        # Markovian: aggregate each predecessor's rate into the splitter and
        # split the touched blocks by the canonical rate value.  Rates from
        # states inside the splitter are skipped — ordinary lumpability does
        # not constrain movement within a class (the signature engine skips
        # the own-block rates for the same reason).
        weights: Dict[int, float] = {}
        for target in states:
            for source, rate in markovian_pred[target]:
                if source in splitter_set:
                    continue
                weights[source] = weights.get(source, 0.0) + rate
        if not weights:
            return
        for source in weights:
            part.mark(source)

        def rate_key(source: int) -> float:
            return canonical_rate(weights[source], rate_digits)

        for marked, rest in part.split_marked():
            # The marked part holds exactly the positive-weight states of one
            # former block; subdivide it further by rate value.  Only blocks
            # whose membership actually changed re-enter the worklist.
            created = part.split_by_key(marked, rate_key)
            if rest >= 0:
                push(rest)
            if rest >= 0 or created:
                push(marked)
            for block in created:
                push(block)

    refine(list(part.blocks()), process)
    return part.as_sets()


# ---------------------------------------------------------------------------
# weak bisimulation
# ---------------------------------------------------------------------------

def _internal_closure(model: IOIMC) -> List[FrozenSet[int]]:
    """Per-state tau-closure frozensets — **signature reference engine only**.

    The splitter engine never calls this: it shares closure information per
    tau-SCC via :class:`~repro.ioimc.partition.TauCondensation`, which keeps
    the weak path linear in states + transitions where these frozensets are
    quadratic on tau-chains.
    """
    closures: List[FrozenSet[int]] = []
    internal_succ = [model.internal_successors(state) for state in model.states()]
    for start in model.states():
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in internal_succ[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        closures.append(frozenset(seen))
    return closures


def _weak_visible_reach(
    model: IOIMC, closures: Sequence[FrozenSet[int]]
) -> List[Dict[int, FrozenSet[int]]]:
    """Per-state ``τ* a τ*`` reach sets — **signature reference engine only**.

    Implicit input self-loops are taken into account: a state that has no
    explicit transition for an input action can still (weakly) perform it and
    stay (modulo trailing internal moves).
    """
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    reach: List[Dict[int, FrozenSet[int]]] = []
    for state in model.states():
        per_action: Dict[int, set] = {}
        for mid in closures[state]:
            enabled = model.enabled_ids(mid)
            for aid, target in model.interactive_pairs(mid):
                if aid in internal_ids:
                    continue
                per_action.setdefault(aid, set()).update(closures[target])
            for aid in input_ids:
                if aid not in enabled:
                    per_action.setdefault(aid, set()).update(closures[mid])
        reach.append({aid: frozenset(states) for aid, states in per_action.items()})
    return reach


def weak_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest weak bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels)

    * for every visible action, the classes reachable via a weak move
      (``τ* a τ*``, implicit input self-loops included) coincide,
    * the classes reachable via internal moves alone coincide,
    * the sets of canonical Markovian rate vectors of the *stable* states
      reachable via internal moves coincide (maximal progress means only
      those states can let time pass).
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _weak_partition_signature(model, respect_labels, rate_digits)
    if _has_no_internal_transitions(model):
        # Without internal moves every tau-closure is a singleton and every
        # state is stable: weak and strong bisimulation coincide, and the
        # strong splitter avoids the condensation and rate-class machinery.
        return _strong_partition_splitter(model, respect_labels, rate_digits)
    return _WeakSplitterEngine(model, respect_labels, rate_digits).state_partition()


def _has_no_internal_transitions(model: IOIMC) -> bool:
    internal_mask = model.signature.internal_mask
    if not internal_mask:
        return True
    return not any(model.enabled_mask(state) & internal_mask for state in model.states())


def _weak_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    closures = _internal_closure(model)
    visible_reach = _weak_visible_reach(model, closures)
    stable = [model.is_stable(state) for state in model.states()]

    block_of = _initial_blocks(model, respect_labels)
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            visible_sig = frozenset(
                (action, frozenset(block_of[target] for target in targets))
                for action, targets in visible_reach[state].items()
            )
            tau_sig = frozenset(block_of[target] for target in closures[state])
            rate_vectors = set()
            for target in closures[state]:
                if not stable[target]:
                    continue
                rates: Dict[int, float] = {}
                own_block = block_of[target]
                for succ, rate in model.markovian_dict(target).items():
                    if block_of[succ] == own_block:
                        continue  # ordinary lumpability: ignore intra-class rates
                    rates[block_of[succ]] = rates.get(block_of[succ], 0.0) + rate
                rate_vectors.add(
                    frozenset(
                        (block, canonical_rate(total, rate_digits))
                        for block, total in rates.items()
                    )
                )
            signatures[state] = (visible_sig, tau_sig, frozenset(rate_vectors))
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


class _WeakSplitterEngine:
    """Worklist-of-splitters weak bisimulation on the tau-SCC condensation.

    The refinement works on *units* — the states of one tau-SCC sharing one
    label set.  All states of a unit are trivially weakly bisimilar (they
    tau-reach each other), so units are the finest granularity a split can
    ever need; on tau-heavy fused products they are far fewer than states.

    Splitters come in two kinds:

    * a partition block ``B``: split every block by "can tau-reach ``B``" and,
      per visible action ``a``, by "can weakly do ``a`` into ``B``" — both are
      backward tau-reachability sweeps over the condensation from the SCCs
      owning ``B`` (weak in-edges of the splitter only, never the whole
      model);
    * a Markovian *rate class* (stable states with equal canonical rate
      vectors): split every block by "can tau-reach a member of the class".

    When a block splits, the rate vectors of the stable states pointing into
    the moved states (and of the moved/remaining stable states themselves,
    whose own-class exclusion changed) are recomputed and re-bucketed; every
    class whose membership changed re-enters the worklist.  The fixpoint is
    stable under all three predicate families, which is exactly the signature
    engine's equivalence.
    """

    def __init__(self, model: IOIMC, respect_labels: bool, rate_digits: int):
        self.model = model
        self.rate_digits = rate_digits
        self.condensation = TauCondensation(model)
        cond = self.condensation
        num_states = model.num_states
        num_sccs = cond.num_sccs

        # ---- units: (SCC, label set) groups ------------------------------
        self.unit_of_state: List[int] = [0] * num_states
        self.unit_states: List[List[int]] = []
        self.unit_scc: List[int] = []
        self.unit_labels: List[FrozenSet[str]] = []
        self.scc_units: List[List[int]] = [[] for _ in range(num_sccs)]
        for scc in range(num_sccs):
            if respect_labels:
                groups: Dict[FrozenSet[str], List[int]] = {}
                for state in cond.members[scc]:
                    groups.setdefault(model.labels(state), []).append(state)
                ordered = sorted(groups.items(), key=lambda item: min(item[1]))
            else:
                members = cond.members[scc]
                ordered = [(model.labels(members[0]), list(members))]
            for labels, states in ordered:
                unit = len(self.unit_states)
                self.unit_states.append(states)
                self.unit_scc.append(scc)
                self.unit_labels.append(labels)
                self.scc_units[scc].append(unit)
                for state in states:
                    self.unit_of_state[state] = unit

        # ---- static per-SCC indexes --------------------------------------
        internal_ids = model.signature.internal_ids
        input_ids = model.signature.input_ids
        #: Visible in-edges per SCC: (action id, source SCC), deduplicated.
        self.visible_in: List[Set[Tuple[int, int]]] = [set() for _ in range(num_sccs)]
        #: Input actions some member of the SCC has no explicit transition for
        #: (those members carry an implicit weak self-loop).
        self.input_gaps: List[Set[int]] = [set() for _ in range(num_sccs)]
        #: Stable Markovian predecessors per state (only stable states carry
        #: rate vectors in the weak signature).
        self.stable_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
        self.unit_stable: List[bool] = [
            all(model.is_stable(state) for state in states)
            for states in self.unit_states
        ]
        for state in range(num_states):
            scc = cond.scc_of[state]
            for aid, target in model.interactive_pairs(state):
                if aid in internal_ids:
                    continue
                self.visible_in[cond.scc_of[target]].add((aid, scc))
            if input_ids:
                enabled = model.enabled_ids(state)
                for aid in input_ids:
                    if aid not in enabled:
                        self.input_gaps[scc].add(aid)
            if model.is_stable(state):
                for target, rate in model.markovian_dict(state).items():
                    self.stable_pred[target].append((state, rate))

        # ---- partition over units ----------------------------------------
        self.part = RefinablePartition(len(self.unit_states))
        if respect_labels and self.part.num_elements:
            self.part.split_by_key(0, lambda unit: self.unit_labels[unit])

        # ---- rate classes over stable units ------------------------------
        self.class_of: Dict[int, int] = {}
        self.class_members: List[Set[int]] = []
        self.class_by_key: Dict[FrozenSet[Tuple[int, float]], int] = {}
        #: Stable units whose rate vector may be stale (re-bucketed in batch
        #: when the next rate-class splitter is processed).
        self._dirty: Set[int] = set()
        for unit, stable in enumerate(self.unit_stable):
            if stable:
                self._assign_rate_class(unit)

        self._refined = False

    # ------------------------------------------------------------ rate classes
    def _vector_key(self, unit: int) -> FrozenSet[Tuple[int, float]]:
        """Canonical rate vector of a stable unit under the current partition."""
        state = self.unit_states[unit][0]  # stable units are singletons
        own_block = self.part.block_of(unit)
        rates: Dict[int, float] = {}
        for target, rate in self.model.markovian_dict(state).items():
            block = self.part.block_of(self.unit_of_state[target])
            if block == own_block:
                continue  # ordinary lumpability: ignore intra-class rates
            rates[block] = rates.get(block, 0.0) + rate
        return frozenset(
            (block, canonical_rate(total, self.rate_digits))
            for block, total in rates.items()
        )

    def _assign_rate_class(self, unit: int) -> Optional[Tuple[int, ...]]:
        """(Re)bucket a stable unit by rate vector; return the changed classes."""
        key = self._vector_key(unit)
        new_class = self.class_by_key.get(key)
        if new_class is None:
            new_class = len(self.class_members)
            self.class_members.append(set())
            self.class_by_key[key] = new_class
        old_class = self.class_of.get(unit)
        if old_class == new_class:
            return None
        self.class_of[unit] = new_class
        self.class_members[new_class].add(unit)
        if old_class is None:
            return (new_class,)
        self.class_members[old_class].discard(unit)
        return (old_class, new_class)

    # ---------------------------------------------------------------- refining
    def _mark_and_split(self, sccs: Set[int], push) -> None:
        """Split every block by membership in the given predicate SCC set."""
        part = self.part
        for scc in sccs:
            for unit in self.scc_units[scc]:
                part.mark(unit)
        dirty = self._dirty
        for marked, rest in part.split_marked():
            if rest < 0:
                continue  # the whole block satisfied the predicate
            push(("block", marked))
            push(("block", rest))
            # Exactly the rate vectors referencing the moved states change:
            # their stable Markovian predecessors (wherever those live — this
            # covers stable units left behind in `rest` with rates into the
            # moved half), plus the moved stable units themselves (their
            # own-class exclusion now ends at the new block boundary).  They
            # are re-bucketed lazily, in batch, when the next rate-class
            # splitter is dequeued.
            freshly_dirty = []
            for unit in part.members(marked):
                if self.unit_stable[unit] and unit not in dirty:
                    dirty.add(unit)
                    freshly_dirty.append(unit)
                for state in self.unit_states[unit]:
                    for source, _rate in self.stable_pred[state]:
                        source_unit = self.unit_of_state[source]
                        if source_unit not in dirty:
                            dirty.add(source_unit)
                            freshly_dirty.append(source_unit)
            for unit in freshly_dirty:
                push(("rates", self.class_of[unit]))

    def _flush_dirty(self, push) -> None:
        """Re-bucket every stale stable unit; re-enqueue the changed classes."""
        for unit in self._dirty:
            changed = self._assign_rate_class(unit)
            if changed:
                for rate_class in changed:
                    push(("rates", rate_class))
        self._dirty.clear()

    def _process(self, splitter, push) -> None:
        cond = self.condensation
        kind, index = splitter
        if kind == "rates":
            self._flush_dirty(push)
            members = self.class_members[index]
            if not members:
                return  # class emptied by re-bucketing
            seeds = {self.unit_scc[unit] for unit in members}
            self._mark_and_split(cond.backward_closure(seeds), push)
            return

        units = self.part.members(index)  # snapshot
        seeds = {self.unit_scc[unit] for unit in units}
        reach = cond.backward_closure(seeds)
        # tau predicate: can reach the splitter via internal moves alone.
        self._mark_and_split(set(reach), push)
        # visible predicates: a weak `a` move into the splitter is an `a`
        # transition whose target tau-reaches the splitter (reach), taken
        # from any state that tau-reaches the transition's source; implicit
        # input self-loops contribute the gap SCCs inside `reach` themselves.
        buckets: Dict[int, Set[int]] = {}
        for scc in reach:
            for aid, source in self.visible_in[scc]:
                buckets.setdefault(aid, set()).add(source)
            for aid in self.input_gaps[scc]:
                buckets.setdefault(aid, set()).add(scc)
        for sources in buckets.values():
            self._mark_and_split(cond.backward_closure(sources), push)

    def _run(self) -> None:
        if self._refined:
            return
        splitters = [("block", block) for block in self.part.blocks()]
        splitters.extend(("rates", index) for index in range(len(self.class_members)))
        refine(splitters, self._process)
        self._refined = True

    # ----------------------------------------------------------------- results
    def state_partition(self) -> Partition:
        self._run()
        blocks = [
            frozenset(
                state
                for unit in self.part.members(block)
                for state in self.unit_states[unit]
            )
            for block in self.part.blocks()
        ]
        return _canonical_partition(blocks)

    def quotient(self, name: Optional[str] = None) -> IOIMC:
        return _build_weak_quotient(
            self.model, self.condensation, self.state_partition(), name
        )


# ---------------------------------------------------------------------------
# quotient construction
# ---------------------------------------------------------------------------

def _block_map(partition: Partition) -> Dict[int, int]:
    block_of: Dict[int, int] = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    return block_of


def quotient_strong(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a strong bisimulation partition."""
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    quotient = IOIMC(name if name is not None else model.name, model.signature)
    representatives = [min(block) for block in partition]
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        for aid, target in model.interactive_pairs(rep):
            target_block = block_of[target]
            if target_block == block_id and aid in input_ids:
                continue  # implicit input self-loop
            quotient.add_interactive_id(block_id, aid, target_block)
        rates: Dict[int, float] = {}
        for target, rate in model.markovian_dict(rep).items():
            if block_of[target] == block_id:
                continue  # intra-class movement is invisible in the quotient
            rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
        for target_block, total in rates.items():
            quotient.add_markovian(block_id, total, target_block)
    quotient.set_initial(block_of[model.initial])
    return quotient


def _build_weak_quotient(
    model: IOIMC,
    condensation: TauCondensation,
    partition: Partition,
    name: str | None = None,
) -> IOIMC:
    """Weak quotient from a partition and the shared tau-SCC condensation.

    One id-ordered sweep over the condensation (tau successors first, see
    :class:`~repro.ioimc.partition.TauCondensation`) computes, per SCC, the
    blocks reachable via internal moves and via ``τ* a τ*`` per visible
    action.  The per-SCC sets contain block ids and are interned, so shared
    tails of tau-chains cost one object — no per-state closure frozensets.
    """
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    scc_of = condensation.scc_of

    interned: Dict[FrozenSet[int], FrozenSet[int]] = {}

    def intern(blocks: Set[int]) -> FrozenSet[int]:
        key = frozenset(blocks)
        return interned.setdefault(key, key)

    num_sccs = condensation.num_sccs
    # First pass, in id order (tau successors first): blocks reachable via
    # internal moves alone.  Visible targets may live in later SCCs, so the
    # visible reach needs a second pass once every tau closure is known.
    tau_blocks: List[FrozenSet[int]] = [frozenset()] * num_sccs
    for scc in range(num_sccs):
        reach: Set[int] = {block_of[state] for state in condensation.members[scc]}
        for successor in condensation.tau_succ[scc]:
            reach |= tau_blocks[successor]
        tau_blocks[scc] = intern(reach)
    visible: List[Dict[int, FrozenSet[int]]] = [{} for _ in range(num_sccs)]
    for scc in range(num_sccs):  # id order again: tau successors come first
        per_action: Dict[int, Set[int]] = {}
        for successor in condensation.tau_succ[scc]:
            for aid, blocks in visible[successor].items():
                per_action.setdefault(aid, set()).update(blocks)
        closure_blocks = tau_blocks[scc]
        for state in condensation.members[scc]:
            for aid, target in model.interactive_pairs(state):
                if aid in internal_ids:
                    continue
                per_action.setdefault(aid, set()).update(tau_blocks[scc_of[target]])
            if input_ids:
                enabled = model.enabled_ids(state)
                for aid in input_ids:
                    if aid not in enabled:
                        per_action.setdefault(aid, set()).update(closure_blocks)
        visible[scc] = {aid: intern(blocks) for aid, blocks in per_action.items()}

    stable = [model.is_stable(state) for state in model.states()]
    internal_actions = sorted(model.signature.internals)
    tau_id = intern_action(internal_actions[0]) if internal_actions else None

    quotient = IOIMC(name if name is not None else model.name, model.signature)
    for block_id, block in enumerate(partition):
        rep = min(block)
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")

    for block_id, block in enumerate(partition):
        rep = min(block)
        rep_scc = scc_of[rep]

        for aid, target_blocks in visible[rep_scc].items():
            is_input = aid in input_ids
            for target_block in sorted(target_blocks):
                if target_block == block_id and is_input:
                    continue  # implicit input self-loop
                quotient.add_interactive_id(block_id, aid, target_block)

        tau_targets = set(tau_blocks[rep_scc]) - {block_id}
        if tau_targets and tau_id is None:
            raise AssertionError(
                "internal moves present but the signature declares no internal action"
            )
        for target_block in sorted(tau_targets):
            quotient.add_interactive_id(block_id, tau_id, target_block)

        stable_member = next((state for state in sorted(block) if stable[state]), None)
        if stable_member is not None:
            rates: Dict[int, float] = {}
            for target, rate in model.markovian_dict(stable_member).items():
                if block_of[target] == block_id:
                    continue  # intra-class movement is invisible in the quotient
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            for target_block, total in rates.items():
                quotient.add_markovian(block_id, total, target_block)

    quotient.set_initial(block_of[model.initial])
    return quotient


def quotient_weak(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a weak bisimulation partition.

    Per block the construction uses a representative's *weak* transitions:

    * visible actions: one transition per block weakly reachable (input
      self-block loops stay implicit);
    * internal moves: one ``τ`` transition per distinct block reachable via
      internal moves (self-block loops are dropped — weak bisimulation is
      insensitive to them);
    * Markovian transitions: blocks containing a stable state carry that
      state's aggregate rate vector (all stable members of a block agree);
      blocks without stable states are vanishing and get no rates.

    The weak reach sets are derived from the tau-SCC condensation; prefer
    :func:`minimize_weak`, which shares one condensation between the
    partition refinement and this construction.
    """
    return _build_weak_quotient(model, TauCondensation(model), partition, name)


def minimize_strong(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> IOIMC:
    """Minimise ``model`` modulo strong bisimulation."""
    partition = strong_bisimulation_partition(
        model, respect_labels=respect_labels, algorithm=algorithm, rate_digits=rate_digits
    )
    return quotient_strong(model, partition).restrict_to_reachable(model.name)


def minimize_weak(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> IOIMC:
    """Minimise ``model`` modulo weak bisimulation.

    With the default splitter engine one tau-SCC condensation is shared
    between the partition refinement and the quotient construction, so the
    internal-closure work happens exactly once per minimisation.
    """
    _check_algorithm(algorithm)
    if algorithm == "splitter":
        if _has_no_internal_transitions(model):
            partition = _strong_partition_splitter(model, respect_labels, rate_digits)
            quotient = _build_weak_quotient(model, TauCondensation(model), partition)
        else:
            engine = _WeakSplitterEngine(model, respect_labels, rate_digits)
            quotient = engine.quotient()
    else:
        partition = _weak_partition_signature(model, respect_labels, rate_digits)
        quotient = quotient_weak(model, partition)
    return quotient.restrict_to_reachable(model.name)
