"""Batch smoke: a random-tree corpus through the ``repro batch`` CLI.

Generates a reproducible corpus of Galileo files with
:func:`repro.systems.generators.random_corpus`, runs the ``batch``
subcommand over a glob of them (text and JSON modes, serial and with two
worker processes) and fails on any per-tree error or schema violation.

Runs on a plain Python interpreter so CI can execute it as one cheap step::

    PYTHONPATH=src python benchmarks/smoke_batch.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.dft import galileo
from repro.systems import random_corpus

CORPUS_SIZE = 8
NUM_BASIC_EVENTS = 6


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        corpus = random_corpus(CORPUS_SIZE, num_basic_events=NUM_BASIC_EVENTS, seed=0)
        for index, tree in enumerate(corpus):
            galileo.write_file(tree, str(Path(tmp) / f"tree{index:02d}.dft"))
        pattern = str(Path(tmp) / "*.dft")

        # Text mode, serial.
        code = cli_main(["batch", pattern, "--time", "0.5", "1.0"])
        if code != 0:
            print("FAIL: serial text batch exited non-zero", file=sys.stderr)
            return 1

        # JSON mode with two worker processes; validate the schema.
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = cli_main(["batch", pattern, "--json", "--processes", "2"])
        if code != 0:
            print("FAIL: parallel JSON batch exited non-zero", file=sys.stderr)
            return 1
        payload = json.loads(buffer.getvalue())
        if payload.get("schema") != "repro.batch/1":
            print("FAIL: unexpected batch schema tag", file=sys.stderr)
            return 1
        aggregate = payload["aggregate"]
        if aggregate["trees"] != CORPUS_SIZE or aggregate["failed"] != 0:
            print("FAIL: batch aggregate reports missing or failing trees", file=sys.stderr)
            return 1
        print(
            f"batch smoke ok: {aggregate['trees']} trees, "
            f"{aggregate['wall_seconds']:.3f}s wall, "
            f"{aggregate['mean_tree_seconds']:.3f}s/tree"
        )
    return 0


if __name__ == "__main__":
    sys.exit(run())
