"""E5 — complex (gate-valued) spares and generalised activation (Section 6.1).

The paper's Figure 10a/10b systems use whole sub-trees as primary and spare of
a spare gate.  The benchmark checks the activation semantics end to end by
comparing the compositional result against the independent monolithic
generator, and records the closed-form cross-check for the symmetric AND-spare
system.
"""

import numpy as np
import pytest
from scipy import linalg

from repro import CompositionalAnalyzer
from repro.baselines import monolithic_unreliability
from repro.systems import and_spare_system, nested_spare_system

from conftest import record


def ctmc_transient_probability(generator, initial, goal, time):
    """Reference transient probability via a dense matrix exponential."""
    matrix = linalg.expm(np.asarray(generator, dtype=float) * time)
    return float(sum(matrix[initial, g] for g in goal))

MISSION_TIME = 1.0


@pytest.mark.benchmark(group="complex-spares")
def test_and_spare_system(benchmark):
    """Figure 10a: cold AND module as the spare of an AND module."""
    tree = and_spare_system()

    def run():
        return CompositionalAnalyzer(tree).unreliability(MISSION_TIME)

    value = benchmark(run)
    # Phase-type ground truth: two hot components must fail (rates 2,1), then
    # the freshly activated cold pair must fail (rates 2,1).
    generator = [
        [-2.0, 2.0, 0.0, 0.0, 0.0],
        [0.0, -1.0, 1.0, 0.0, 0.0],
        [0.0, 0.0, -2.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, -1.0, 1.0],
        [0.0, 0.0, 0.0, 0.0, 0.0],
    ]
    closed_form = ctmc_transient_probability(generator, 0, [4], MISSION_TIME)
    reference = monolithic_unreliability(tree, MISSION_TIME)
    record(
        benchmark,
        experiment="E5 (Figure 10a, AND modules as primary and spare)",
        unreliability=value,
        closed_form=closed_form,
        monolithic_reference=reference,
    )
    assert value == pytest.approx(closed_form, abs=1e-9)
    assert value == pytest.approx(reference, abs=1e-9)


@pytest.mark.benchmark(group="complex-spares")
def test_nested_spare_system(benchmark):
    """Figure 10b: a spare gate used as the spare of another spare gate.

    The inner spare D must stay dormant until the inner gate is both activated
    and has lost its primary."""
    tree = nested_spare_system()

    def run():
        return CompositionalAnalyzer(tree).unreliability(MISSION_TIME)

    value = benchmark(run)
    reference = monolithic_unreliability(tree, MISSION_TIME)
    record(
        benchmark,
        experiment="E5 (Figure 10b, nested spare gates)",
        unreliability=value,
        monolithic_reference=reference,
        paper_claim="activation is passed to the primary only",
    )
    assert value == pytest.approx(reference, abs=1e-7)
