"""E1 — Figure 2: composition, hiding and aggregation of two small I/O-IMC.

The paper uses Figure 2 to illustrate compositional aggregation: composing A
and B, hiding their shared signal ``a`` and aggregating with weak bisimulation
collapses the interleaving states.  The benchmark measures exactly that
pipeline and records the sizes of the intermediate models.
"""

import pytest

from repro.core import compositional_aggregate
from repro.ioimc import minimize_weak, parallel
from repro.systems import figure2_models

from conftest import record


def compose_hide_aggregate():
    model_a, model_b = figure2_models(rate=1.0)
    composed = parallel(model_a, model_b)
    hidden = composed.hide(["a"])
    aggregated = minimize_weak(hidden)
    return composed, aggregated


@pytest.mark.benchmark(group="figure2")
def test_fig2_compose_hide_aggregate(benchmark):
    composed, aggregated = benchmark(compose_hide_aggregate)
    record(
        benchmark,
        experiment="E1 (Figure 2)",
        composed_states=composed.num_states,
        composed_transitions=composed.num_transitions,
        aggregated_states=aggregated.num_states,
        aggregated_transitions=aggregated.num_transitions,
        paper_claim="interleaving states collapse under weak bisimulation",
    )
    assert aggregated.num_states < composed.num_states
    assert "b" in aggregated.signature.outputs


@pytest.mark.benchmark(group="figure2")
@pytest.mark.parametrize("ordering", ["linked", "modular"])
def test_fig2_engine_orderings(benchmark, ordering):
    """The aggregation engine on the Figure 2 pair, per ordering strategy.

    The two-model community has no fault tree, so ``modular`` exercises its
    index-driven degradation path; its peak must not exceed ``linked``.
    """

    def run():
        model_a, model_b = figure2_models(rate=1.0)
        return compositional_aggregate(
            [model_a, model_b], ordering=ordering, keep_visible=["b"]
        )

    final, statistics = benchmark(run)
    reference_final, reference_stats = run()
    record(
        benchmark,
        experiment="E1 (Figure 2, engine ordering)",
        ordering=ordering,
        final_states=final.num_states,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
    )
    assert final.num_states == reference_final.num_states
    if ordering == "modular":
        model_a, model_b = figure2_models(rate=1.0)
        _linked_final, linked_stats = compositional_aggregate(
            [model_a, model_b], ordering="linked", keep_visible=["b"]
        )
        assert statistics.peak_product_states <= linked_stats.peak_product_states
