"""E1 — Figure 2: composition, hiding and aggregation of two small I/O-IMC.

The paper uses Figure 2 to illustrate compositional aggregation: composing A
and B, hiding their shared signal ``a`` and aggregating with weak bisimulation
collapses the interleaving states.  The benchmark measures exactly that
pipeline and records the sizes of the intermediate models.
"""

import pytest

from repro.ioimc import minimize_weak, parallel
from repro.systems import figure2_models

from conftest import record


def compose_hide_aggregate():
    model_a, model_b = figure2_models(rate=1.0)
    composed = parallel(model_a, model_b)
    hidden = composed.hide(["a"])
    aggregated = minimize_weak(hidden)
    return composed, aggregated


@pytest.mark.benchmark(group="figure2")
def test_fig2_compose_hide_aggregate(benchmark):
    composed, aggregated = benchmark(compose_hide_aggregate)
    record(
        benchmark,
        experiment="E1 (Figure 2)",
        composed_states=composed.num_states,
        composed_transitions=composed.num_transitions,
        aggregated_states=aggregated.num_states,
        aggregated_transitions=aggregated.num_transitions,
        paper_claim="interleaving states collapse under weak bisimulation",
    )
    assert aggregated.num_states < composed.num_states
    assert "b" in aggregated.signature.outputs
