"""E7 — inhibition and mutually exclusive failure modes (Section 7.1, Figure 12).

A switch can fail open or fail closed, but never both.  The benchmark checks
the inhibition-auxiliary semantics against closed forms and measures the
pipeline on the mutually-exclusive-switch system.
"""

import math

import pytest

from repro import CompositionalAnalyzer
from repro.baselines import monolithic_unreliability
from repro.systems import inhibition_pair, mutually_exclusive_switch

from conftest import record

MISSION_TIME = 1.0


@pytest.mark.benchmark(group="mutex")
def test_inhibition_pair(benchmark):
    """Figure 12: A inhibits B, the system fails when B fires.

    Closed form: P(B before A, B before t) for independent exponentials."""
    rate_a, rate_b = 1.0, 1.0
    tree = inhibition_pair(inhibitor_rate=rate_a, target_rate=rate_b)

    def run():
        return CompositionalAnalyzer(tree).unreliability(MISSION_TIME)

    value = benchmark(run)
    combined = rate_a + rate_b
    closed_form = rate_b / combined * (1.0 - math.exp(-combined * MISSION_TIME))
    record(
        benchmark,
        experiment="E7 (Figure 12, inhibition auxiliary)",
        unreliability=value,
        closed_form=closed_form,
    )
    assert value == pytest.approx(closed_form, abs=1e-9)


@pytest.mark.benchmark(group="mutex")
def test_mutually_exclusive_switch(benchmark):
    """The fail-open / fail-closed switch: the two modes exclude each other."""
    tree = mutually_exclusive_switch(fail_open_rate=0.3, fail_closed_rate=0.7, pump_rate=1.0)

    def run():
        return CompositionalAnalyzer(tree).unreliability(MISSION_TIME)

    value = benchmark(run)
    reference = monolithic_unreliability(tree, MISSION_TIME)

    # Without mutual exclusion the double-failure mode SO&SC would be counted
    # as well, so the naive (independent) model must be more unreliable.
    from repro.dft import FaultTreeBuilder

    builder = FaultTreeBuilder("independent-modes")
    builder.basic_event("SO", 0.3)
    builder.basic_event("SC", 0.7)
    builder.basic_event("Pump", 1.0)
    builder.and_gate("OpenAndPump", ["SO", "Pump"])
    builder.or_gate("system", ["SC", "OpenAndPump"])
    independent = CompositionalAnalyzer(builder.build("system")).unreliability(MISSION_TIME)

    record(
        benchmark,
        experiment="E7 (mutually exclusive switch modes)",
        unreliability=value,
        monolithic_reference=reference,
        without_mutual_exclusion=independent,
    )
    assert value == pytest.approx(reference, abs=1e-7)
    assert value < independent
