"""Service smoke for CI: a real ``repro serve`` subprocess under load.

Starts ``python -m repro serve`` on an ephemeral port (``--port 0``), parses
the advertised URL from its stdout, fires mixed concurrent requests
(analyze / sweep / batch / healthz / metrics) from several client threads
and asserts every served response is bit-identical to the in-process
result on the same skeleton cache.  The server is torn down in a
``finally`` block — a failing assertion must not leave an orphan process::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, REPO_SRC)

from repro.core.measures import MTTF, Unreliability  # noqa: E402
from repro.core.study import Study, StudyOptions  # noqa: E402
from repro.core.sweep import RateSweep, SweepStudy  # noqa: E402
from repro.dft import galileo  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.store import SkeletonStore  # noqa: E402
from repro.systems import cardiac_assist_system  # noqa: E402

PARAM_TREE = """
param lam = 0.5;
toplevel "sys";
"sys" or "a" "b";
"a" lambda=lam;
"b" lambda=0.7;
"""

NUM_CLIENTS = 4
ROUNDS_PER_CLIENT = 3
STARTUP_TIMEOUT = 60.0


def _strip(response: dict) -> dict:
    slim = dict(response)
    slim.pop("timings", None)
    slim.pop("service", None)
    options = dict(slim.get("options", {}))
    options.pop("skeleton_cache", None)
    slim["options"] = options
    return slim


def _start_server(cache_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--cache-dir",
            cache_dir,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": REPO_SRC},
    )


def _read_url(process: subprocess.Popen) -> str:
    """Parse the advertised URL from the startup banner, with a watchdog."""
    banner = {}

    def reader():
        line = process.stdout.readline()
        if line.startswith("serving on "):
            banner["url"] = line.split()[2]
        else:
            banner["error"] = line

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(STARTUP_TIMEOUT)
    if "url" not in banner:
        raise RuntimeError(f"server did not start: {banner.get('error', 'timeout')}")
    return banner["url"]


def run() -> int:
    cas_text = galileo.write(cardiac_assist_system())
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as cache_dir:
        process = _start_server(cache_dir)
        try:
            url = _read_url(process)
            client = ServiceClient(url)

            def mixed_round(_):
                worker = ServiceClient(url)
                return (
                    worker.analyze(cas_text, times=[1.0, 2.0], mttf=True),
                    worker.sweep(PARAM_TREE, axes={"lam": [0.1, 0.5, 1.0]}),
                    worker.batch([cas_text, cas_text], times=[1.0]),
                    worker.healthz(),
                )

            with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
                rounds = list(
                    pool.map(mixed_round, range(NUM_CLIENTS * ROUNDS_PER_CLIENT))
                )

            # In-process references on the same (server-populated) cache.
            store = SkeletonStore(cache_dir)
            local_analyze = _strip(
                Study(
                    galileo.parse(cas_text, name="<request>"),
                    StudyOptions(),
                    skeleton_cache=store,
                )
                .evaluate(Unreliability([1.0, 2.0]) + MTTF(), on_error="record")
                .to_dict(include_steps=False)
            )
            local_sweep = SweepStudy(
                galileo.parse(PARAM_TREE, name="<request>"),
                StudyOptions(),
                skeleton_cache=store,
            ).run(RateSweep.grid(Unreliability([1.0]), lam=[0.1, 0.5, 1.0]))
            local_rows = local_sweep.to_dict()["rows"]
            local_batch_measures = (
                Study(
                    galileo.parse(cas_text, name="<request>"),
                    StudyOptions(),
                    skeleton_cache=store,
                )
                .evaluate(Unreliability([1.0]), on_error="record")
                .to_dict(include_steps=False)["measures"]
            )

            for analyze, sweep, batch, health in rounds:
                if _strip(analyze) != local_analyze:
                    print("FAIL: served analyze differs from in-process", file=sys.stderr)
                    return 1
                for mine, theirs in zip(sweep["rows"], local_rows):
                    if (
                        mine["sample"] != theirs["sample"]
                        or mine["measures"] != theirs["measures"]
                    ):
                        print(
                            "FAIL: served sweep row differs from in-process",
                            file=sys.stderr,
                        )
                        return 1
                if batch["aggregate"]["failed"] != 0:
                    print("FAIL: batch reported failures", file=sys.stderr)
                    return 1
                for row in batch["rows"]:
                    if row["result"]["measures"] != local_batch_measures:
                        print(
                            "FAIL: served batch row differs from in-process",
                            file=sys.stderr,
                        )
                        return 1
                if health["status"] != "ok":
                    print("FAIL: healthz not ok", file=sys.stderr)
                    return 1

            metrics = client.metrics()
            analyze_metrics = metrics["endpoints"]["/analyze"]
            print(
                f"service smoke ok: {len(rounds)} mixed rounds from "
                f"{NUM_CLIENTS} clients, {analyze_metrics['requests']} analyze "
                f"requests, p95 {analyze_metrics['p95_ms']:.1f} ms, "
                f"{metrics['store']['entries']} cache entries"
            )
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(run())
