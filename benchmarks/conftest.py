"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's quantitative results (see
DESIGN.md, experiment index) and attaches the reproduced numbers — next to the
value the paper reports — to the pytest-benchmark record via ``extra_info`` so
they show up in ``--benchmark-verbose``/JSON output.  Hard assertions keep the
benchmarks honest: if a reproduction drifts away from the paper's value the
benchmark fails rather than silently reporting a timing.
"""

from __future__ import annotations


def record(benchmark, **extra_info):
    """Attach reproduction metadata to a pytest-benchmark record."""
    for key, value in extra_info.items():
        benchmark.extra_info[key] = value
