"""E3 — the cascaded PAND system (Section 5.2, Figures 8-9).

Paper claims reproduced here:

* compositional aggregation keeps the largest intermediate I/O-IMC at ~156
  states / 490 transitions (our automated composition order peaks even lower),
* the DIFTree-style monolithic Markov chain has **4113 states and 24608
  transitions** (reproduced exactly),
* the system unreliability at mission time 1 is **0.00135** with both methods,
* the aggregated I/O-IMC of module A is the small chain of Figure 9.
"""

import pytest

from repro import CompositionalAnalyzer
from repro.baselines import MonolithicMarkovGenerator
from repro.core import compositional_aggregate, convert
from repro.ctmc.transient import probability_reach_label
from repro.dft import DynamicFaultTree
from repro.systems import (
    CPS_PAPER_UNRELIABILITY,
    PAPER_COMPOSITIONAL_PEAK_STATES,
    PAPER_COMPOSITIONAL_PEAK_TRANSITIONS,
    PAPER_DIFTREE_STATES,
    PAPER_DIFTREE_TRANSITIONS,
    cascaded_pand_system,
)

from conftest import record

MISSION_TIME = 1.0


@pytest.mark.benchmark(group="cps")
def test_cps_compositional_pipeline(benchmark):
    def run():
        analyzer = CompositionalAnalyzer(cascaded_pand_system())
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)
    record(
        benchmark,
        experiment="E3 (CPS, compositional)",
        unreliability=value,
        paper_unreliability=CPS_PAPER_UNRELIABILITY,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
        paper_peak_states=PAPER_COMPOSITIONAL_PEAK_STATES,
        paper_peak_transitions=PAPER_COMPOSITIONAL_PEAK_TRANSITIONS,
    )
    assert value == pytest.approx(CPS_PAPER_UNRELIABILITY, abs=5e-5)
    # The shape of the result: the peak stays in the same order of magnitude
    # as the paper's 156/490 and far below the monolithic chain.
    assert statistics.peak_product_states <= PAPER_COMPOSITIONAL_PEAK_STATES * 2
    assert statistics.peak_product_transitions <= PAPER_COMPOSITIONAL_PEAK_TRANSITIONS * 2


@pytest.mark.benchmark(group="cps")
def test_cps_monolithic_diftree_chain(benchmark):
    def run():
        generator = MonolithicMarkovGenerator(cascaded_pand_system())
        built = generator.build()
        value = probability_reach_label(built.ctmc, "failed", MISSION_TIME)
        return built, value

    built, value = benchmark(run)
    record(
        benchmark,
        experiment="E3 (CPS, DIFTree monolithic)",
        states=built.num_states,
        transitions=built.num_transitions,
        paper_states=PAPER_DIFTREE_STATES,
        paper_transitions=PAPER_DIFTREE_TRANSITIONS,
        unreliability=value,
        paper_unreliability=CPS_PAPER_UNRELIABILITY,
    )
    assert built.num_states == PAPER_DIFTREE_STATES
    assert built.num_transitions == PAPER_DIFTREE_TRANSITIONS
    assert value == pytest.approx(CPS_PAPER_UNRELIABILITY, abs=5e-5)


@pytest.mark.benchmark(group="cps")
def test_cps_module_a_aggregation(benchmark):
    """Figure 9: the AND module over four identical events aggregates to a
    six-state chain once its internal firing signals are hidden."""
    cps = cascaded_pand_system()

    def run():
        subtree = DynamicFaultTree("A")
        for name in ("A1", "A2", "A3", "A4", "A"):
            subtree.add(cps.element(name))
        subtree.set_top("A")
        community = convert(subtree)
        models = [m.model for m in community.members if m.kind != "monitor"]
        final, _stats = compositional_aggregate(models, keep_visible=["fail_A"])
        return final

    final = benchmark(run)
    record(
        benchmark,
        experiment="E3 (CPS, module A of Figure 9)",
        module_states=final.num_states,
        module_transitions=final.num_transitions,
        paper_claim="module A aggregates to a small chain (Figure 9)",
    )
    assert final.num_states == 6
