"""E2 — the cardiac assist system (Section 5.1, Figure 7).

Paper claims reproduced here:

* system unreliability at mission time 1 is **0.6579** (identical for the
  compositional pipeline and for Galileo/DIFTree);
* the aggregated I/O-IMC of each of the three units is tiny (the paper reports
  6 states each; Galileo's biggest per-unit CTMC, the pump unit, has 8 states).
"""

import pytest

from repro import CompositionalAnalyzer
from repro.baselines import DiftreeAnalyzer
from repro.systems import CAS_PAPER_UNRELIABILITY, cardiac_assist_system

from conftest import record

MISSION_TIME = 1.0


@pytest.mark.benchmark(group="cas")
def test_cas_compositional_unreliability(benchmark):
    def run():
        analyzer = CompositionalAnalyzer(cardiac_assist_system())
        return analyzer.unreliability(MISSION_TIME), analyzer.statistics

    value, statistics = benchmark(run)
    record(
        benchmark,
        experiment="E2 (CAS, compositional)",
        unreliability=value,
        paper_unreliability=CAS_PAPER_UNRELIABILITY,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
        peak_aggregated_states=statistics.peak_reduced_states,
    )
    assert value == pytest.approx(CAS_PAPER_UNRELIABILITY, abs=5e-5)


@pytest.mark.benchmark(group="cas")
def test_cas_diftree_baseline(benchmark):
    def run():
        return DiftreeAnalyzer(cardiac_assist_system()).analyze(MISSION_TIME)

    result = benchmark(run)
    module_sizes = {m.root: m.states for m in result.modules if m.dynamic}
    record(
        benchmark,
        experiment="E2 (CAS, DIFTree baseline)",
        unreliability=result.unreliability,
        paper_unreliability=CAS_PAPER_UNRELIABILITY,
        module_chain_states=module_sizes,
        paper_biggest_module_states=8,
    )
    assert result.unreliability == pytest.approx(CAS_PAPER_UNRELIABILITY, abs=5e-5)
    assert module_sizes["Pump_unit"] == 8  # "the biggest generated CTMC had 8 states"


@pytest.mark.benchmark(group="cas")
def test_cas_unit_models_aggregate_small(benchmark):
    """Each independent unit aggregates to a handful of states (paper: ~6)."""
    from repro.dft import DynamicFaultTree

    cas = cardiac_assist_system()

    def unit_tree(unit):
        members = set(cas.descendants(unit))
        if unit == "CPU_unit":
            members |= {"CPU_fdep", "Trigger", "CS", "SS"}
        subtree = DynamicFaultTree(unit)
        for name in cas.topological_order():
            if name in members:
                subtree.add(cas.element(name))
        subtree.set_top(unit)
        return subtree

    def run():
        return {
            unit: CompositionalAnalyzer(unit_tree(unit)).final_ioimc.num_states
            for unit in ("CPU_unit", "Motor_unit", "Pump_unit")
        }

    sizes = benchmark(run)
    record(
        benchmark,
        experiment="E2 (CAS, per-unit aggregated I/O-IMC)",
        aggregated_unit_states=sizes,
        paper_claim="each aggregated module I/O-IMC had 6 states",
    )
    assert all(size <= 8 for size in sizes.values())
