"""Smoke benchmark: the Figure 2 pipeline plus a scalability spot-check.

Writes ``BENCH_fig2.json`` (in the current directory, or the path given as
the first argument) recording the numbers the perf trajectory tracks:

* Figure 2 compose/hide/aggregate sizes and wall time,
* peak product sizes of the ``modular`` vs ``linked`` orderings on a
  cascaded-PAND family instance,
* wall time of the fused compose+maximal-progress path vs the unfused
  compose-then-reduce baseline,
* minimisation v2: the Paige-Tarjan smaller-half strong engine vs the
  vendored PR 3 baseline on a tau-heavy chain (gated >= 2x), the weak
  engine's non-regression on the largest fused product (gated >= 0.9x,
  identical quotients), a parallel modular-aggregation identity spot check,
  and the process's peak RSS,
* curve evaluation on the paper's cascaded-PAND CTMC: one vectorised
  100-point uniformisation sweep vs 100 per-point calls (the two must agree
  to 1e-9; the sweep must be faster),
* a batch/corpus spot-check over generated random trees,
* a 50-sample failure-rate sweep on the CPS: the sweep engine (one
  aggregation, per-sample CTMC instantiation) vs 50 naive full-pipeline
  evaluations — results must agree to 1e-9 and CI gates the speedup at
  >= 5x,
* design-space optimisation on the seeded CAS spares scenario: the pruned
  Russian-doll branch-and-bound vs the exhaustive reference — identical
  optimum gated exactly, leaf evaluations gated at <= 50% of the feasible
  designs.

Runs on a plain Python interpreter — no pytest-benchmark required — so CI can
execute it as a single cheap step::

    PYTHONPATH=src python benchmarks/smoke_fig2.py
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time

import numpy as np

from repro import (
    AnalysisOptions,
    BatchStudy,
    CompositionalAnalyzer,
    RateSweep,
    SweepStudy,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
)
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.core import compositional_aggregate, convert, signals
from repro.ioimc import (
    apply_maximal_progress,
    minimize_strong,
    minimize_weak,
    parallel,
    remove_internal_self_loops,
)
from repro.systems import (
    cascaded_pand_family,
    cascaded_pand_system,
    figure2_models,
    pand_race_bank,
    random_corpus,
)

import legacy_splitter
from workloads import largest_minimisation_workload, tau_heavy_chain

MISSION_TIME = 1.0
FAMILY_INSTANCE = (3, 5)  # (AND modules, basic events per module)


def _timed(fn, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def bench_figure2() -> dict:
    def run():
        model_a, model_b = figure2_models(rate=1.0)
        composed = parallel(model_a, model_b)
        hidden = composed.hide(["a"])
        aggregated = minimize_weak(hidden)
        return composed, aggregated

    (composed, aggregated), seconds = _timed(run)
    return {
        "composed_states": composed.num_states,
        "composed_transitions": composed.num_transitions,
        "aggregated_states": aggregated.num_states,
        "aggregated_transitions": aggregated.num_transitions,
        "wall_seconds": seconds,
    }


def bench_orderings(num_modules: int, events_per_module: int) -> dict:
    tree = cascaded_pand_family(num_modules, events_per_module)
    result = {"num_modules": num_modules, "events_per_module": events_per_module}
    for ordering in ("linked", "modular"):
        def run():
            analyzer = CompositionalAnalyzer(tree, AnalysisOptions(ordering=ordering))
            value = analyzer.unreliability(MISSION_TIME)
            return value, analyzer.statistics

        (value, statistics), seconds = _timed(run)
        result[ordering] = {
            "unreliability": value,
            "peak_product_states": statistics.peak_product_states,
            "peak_product_transitions": statistics.peak_product_transitions,
            "peak_reduced_states": statistics.peak_reduced_states,
            "wall_seconds": seconds,
        }
    return result


def bench_fusion(num_modules: int, events_per_module: int) -> dict:
    tree = cascaded_pand_family(num_modules, events_per_module)
    result = {"num_modules": num_modules, "events_per_module": events_per_module}
    for label, fuse in (("fused", True), ("compose_then_reduce", False)):
        def run():
            analyzer = CompositionalAnalyzer(
                tree, AnalysisOptions(ordering="modular", fuse=fuse)
            )
            value = analyzer.unreliability(MISSION_TIME)
            return value, analyzer.statistics

        (value, statistics), seconds = _timed(run)
        result[label] = {
            "unreliability": value,
            "peak_product_states": statistics.peak_product_states,
            "peak_product_transitions": statistics.peak_product_transitions,
            "wall_seconds": seconds,
        }
    return result


def bench_fusion_step(num_modules: int, events_per_module: int) -> dict:
    """Isolated composition step: fused exploration vs compose-then-reduce.

    Composes the two largest community members both ways; the results are
    state-for-state identical, only the route differs.
    """
    tree = cascaded_pand_family(num_modules, events_per_module)
    models = sorted(convert(tree).models(), key=lambda m: -m.num_states)
    left, right = models[0], models[1]

    def fused():
        return parallel(left, right, fuse=True)

    def compose_then_reduce():
        product = parallel(left, right)
        product = apply_maximal_progress(product)
        product = remove_internal_self_loops(product)
        return product.restrict_to_reachable()

    fused_model, fused_seconds = _timed(fused, repeats=5)
    reduced_model, unfused_seconds = _timed(compose_then_reduce, repeats=5)
    assert fused_model.num_states == reduced_model.num_states
    return {
        "left_states": left.num_states,
        "right_states": right.num_states,
        "result_states": fused_model.num_states,
        "result_transitions": fused_model.num_transitions,
        "fused_wall_seconds": fused_seconds,
        "compose_then_reduce_wall_seconds": unfused_seconds,
        "speedup": unfused_seconds / fused_seconds if fused_seconds else None,
    }


def bench_minimisation(num_modules: int = 3, events_per_module: int = 6) -> dict:
    """Weak minimisation on a mid-size fused product: splitter vs signature.

    Builds the largest tau-heavy intermediate the family instance produces —
    the two biggest module chains, each fused with a consumer, composed, and
    all outputs nobody else listens to hidden (exactly the shape the
    aggregation engine hands the minimiser) — and minimises it with both
    engines.  This is the perf-trajectory number of the splitter-refinement
    PR: the largest CI-tier ``bench_scalability`` configuration must show the
    splitter engine >= 3x faster while producing the identical quotient.
    """
    workload = largest_minimisation_workload(num_modules, events_per_module)

    # Identical best-of-3 policy for both engines — the gated speedup must
    # not be skewed by a one-off stall on either side.  The splitter engine
    # is requested explicitly: the default is the closure engine since PR 8
    # (see the minimisation_v3 section) and this row tracks the PR 6 pair.
    splitter_model, splitter_seconds = _timed(
        lambda: minimize_weak(workload, algorithm="splitter")
    )
    signature_model, signature_seconds = _timed(
        lambda: minimize_weak(workload, algorithm="signature")
    )
    strong_model, strong_seconds = _timed(lambda: minimize_strong(workload))
    return {
        "num_modules": num_modules,
        "events_per_module": events_per_module,
        "input_states": workload.num_states,
        "input_transitions": workload.num_transitions,
        "splitter_states": splitter_model.num_states,
        "signature_states": signature_model.num_states,
        "splitter_transitions": splitter_model.num_transitions,
        "signature_transitions": signature_model.num_transitions,
        "strong_states": strong_model.num_states,
        "splitter_wall_seconds": splitter_seconds,
        "signature_wall_seconds": signature_seconds,
        "strong_splitter_wall_seconds": strong_seconds,
        "speedup": signature_seconds / splitter_seconds if splitter_seconds else None,
    }


def bench_minimisation_v2(chain_states: int = 8581) -> dict:
    """Minimisation v2: current engines vs the vendored PR 3 baseline.

    Two workloads, both sized at 8581 states so the numbers line up with the
    ``bench_minimisation`` row above:

    * a tau-heavy interactive chain whose quotient is the input itself —
      the strong engine's refinement loop splits down to singletons, where
      the Paige-Tarjan smaller-half discipline beats the PR 3 splitter
      scheduling asymptotically (measured ~5x; CI gates >= 2x);
    * the largest tau-heavy fused product of the (3, 6) cascaded-PAND
      family on the weak path.  The weak engine's cost is dominated by
      tau-closure saturation, which the smaller-half discipline cannot
      bypass, so the gate is a non-regression bound (>= 0.9x the PR 3
      baseline; measured ~1.1x) with identical quotients.

    Also spot-checks parallel modular aggregation (``processes=2``) against
    the serial plan: the quotient must be structurally identical; the
    speedup is recorded, not gated (single-core CI runners make it < 1).
    Peak RSS is recorded so the memory trajectory is tracked per PR.
    """
    chain = tau_heavy_chain(chain_states)
    strong_model, strong_seconds = _timed(lambda: minimize_strong(chain))
    legacy_strong_model, legacy_strong_seconds = _timed(
        lambda: legacy_splitter.minimize_strong(chain)
    )
    assert strong_model.num_states == legacy_strong_model.num_states
    assert strong_model.num_transitions == legacy_strong_model.num_transitions

    workload = largest_minimisation_workload(3, 6)
    # Pinned to the splitter engine: this row tracks the PR 6 engine against
    # the PR 3 baseline; the closure engine gets its own v3 section.
    weak_model, weak_seconds = _timed(
        lambda: minimize_weak(workload, algorithm="splitter")
    )
    legacy_weak_model, legacy_weak_seconds = _timed(
        lambda: legacy_splitter.minimize_weak(workload)
    )
    assert weak_model.num_states == legacy_weak_model.num_states
    assert weak_model.num_transitions == legacy_weak_model.num_transitions

    community = convert(cascaded_pand_family(3, 5))

    def aggregate(processes):
        model, _ = compositional_aggregate(
            community.models(),
            ordering="modular",
            community=community,
            processes=processes,
        )
        return model

    serial_model, serial_seconds = _timed(lambda: aggregate(1))
    parallel_model, parallel_seconds = _timed(lambda: aggregate(2))

    return {
        "chain": {
            "input_states": chain.num_states,
            "quotient_states": strong_model.num_states,
            "strong_wall_seconds": strong_seconds,
            "legacy_strong_wall_seconds": legacy_strong_seconds,
            "strong_speedup": (
                legacy_strong_seconds / strong_seconds if strong_seconds else None
            ),
        },
        "product": {
            "input_states": workload.num_states,
            "quotient_states": weak_model.num_states,
            "weak_wall_seconds": weak_seconds,
            "legacy_weak_wall_seconds": legacy_weak_seconds,
            "weak_ratio": (
                legacy_weak_seconds / weak_seconds if weak_seconds else None
            ),
        },
        "parallel_aggregation": {
            "processes": 2,
            "serial_wall_seconds": serial_seconds,
            "parallel_wall_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds if parallel_seconds else None,
            "identical_to_serial": parallel_model.to_dot() == serial_model.to_dot(),
        },
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def bench_minimisation_v3(num_modules: int = 3, events_per_module: int = 6) -> dict:
    """Minimisation v3: the closure-then-strong weak engine vs the PR 6
    splitter engine (kept in-tree as ``algorithm="splitter"`` precisely so
    this comparison and the differential tests stay honest).

    One workload, the 8581-state tau-heavy fused product of the (3, 6)
    cascaded-PAND family — the same weak path the v2 section could only gate
    as a non-regression.  The closure engine saturates the weak relation once
    at construction and refines in batched frontier rounds, so this time the
    target is a real speedup: >= 3x measured on an idle machine, gated >= 2x
    in CI (loaded-runner margin).  The quotients must be byte-identical.

    Also records the saturation fallback: a deep pure-tau chain blows the
    closure cap (saturating it is inherently quadratic), the engine falls
    back to the splitter, and both routes agree on the quotient.
    """
    from repro.ioimc import IOIMC, signature

    workload = largest_minimisation_workload(num_modules, events_per_module)
    closure_model, closure_seconds = _timed(lambda: minimize_weak(workload))
    splitter_model, splitter_seconds = _timed(
        lambda: minimize_weak(workload, algorithm="splitter")
    )

    chain = IOIMC("deep-tau-chain", signature(internals=("tick",)))
    for _ in range(3000):
        chain.add_state()
    for state in range(chain.num_states - 1):
        chain.add_interactive(state, "tick", state + 1)
    chain.set_labels(chain.num_states - 1, {"failed"})
    chain.set_initial(0)
    fallback_model = minimize_weak(chain)  # closure default, cap trips
    fallback_reference = minimize_weak(chain, algorithm="splitter")

    return {
        "input_states": workload.num_states,
        "input_transitions": workload.num_transitions,
        "quotient_states": closure_model.num_states,
        "closure_wall_seconds": closure_seconds,
        "splitter_wall_seconds": splitter_seconds,
        "closure_speedup": (
            splitter_seconds / closure_seconds if closure_seconds else None
        ),
        "identical_quotients": closure_model.to_dot() == splitter_model.to_dot(),
        "saturation_fallback": {
            "chain_states": chain.num_states,
            "identical_quotients": (
                fallback_model.to_dot() == fallback_reference.to_dot()
            ),
        },
    }


def bench_curve(num_points: int = 100, horizon: float = 5.0) -> dict:
    """100-point unreliability curve: one vectorised sweep vs per-point calls.

    This is the PR's acceptance check: on the paper's cascaded-PAND system
    the shared ``pi(0)·P^k`` series must reproduce per-point uniformisation
    to 1e-9 while being measurably faster.
    """
    analyzer = CompositionalAnalyzer(cascaded_pand_system())
    model = analyzer.markov_model
    times = np.linspace(0.0, horizon, num_points)

    def vectorised():
        return model.probability_of_label_curve(signals.FAILED_LABEL, times)

    def per_point():
        return np.array(
            [model.probability_of_label(signals.FAILED_LABEL, float(t)) for t in times]
        )

    curve, vectorised_seconds = _timed(vectorised)
    reference, per_point_seconds = _timed(per_point)
    return {
        "num_points": num_points,
        "states": model.num_states,
        "vectorised_wall_seconds": vectorised_seconds,
        "per_point_wall_seconds": per_point_seconds,
        "speedup": per_point_seconds / vectorised_seconds if vectorised_seconds else None,
        "max_abs_difference": float(np.max(np.abs(curve - reference))),
    }


def bench_batch(corpus_size: int = 6, num_basic_events: int = 6) -> dict:
    """Corpus throughput spot-check over generated random trees."""
    trees = random_corpus(corpus_size, num_basic_events=num_basic_events, seed=0)
    batch = BatchStudy(trees, Unreliability([1.0]))
    result, seconds = _timed(lambda: batch.run(), repeats=1)
    return {
        "corpus_size": corpus_size,
        "num_basic_events": num_basic_events,
        "failed": result.num_failed,
        "wall_seconds": seconds,
        "mean_tree_seconds": result.tree_seconds / len(result),
    }


def bench_sweep(num_samples: int = 50, mission_time: float = 1.0) -> dict:
    """50-sample CPS rate sweep: shared-structure kernel vs PR 4 vs naive.

    Three engines on identical samples:

    * the shared-structure kernel (one CSR pattern, per-sample data refills),
    * the PR 4 per-sample path (full CTMC instantiation per sample,
      ``use_kernel=False``) — the kernel must beat its per-sample cost by
      >= 1.5x (gated in CI),
    * ``num_samples`` naive full-pipeline evaluations — the sweep must beat
      them by >= 20x while agreeing to 1e-9 on every sample (gated in CI).

    Also records the kernel's instantiate-vs-solve per-sample split and a
    parallel-scaling spot check (``processes=2`` must reproduce the serial
    rows bit-for-bit).
    """
    events = {f"{m}{i}": "lam" for m in ("A", "C", "D") for i in range(1, 5)}
    tree = with_rate_parameters(cascaded_pand_system(), events)
    samples = [{"lam": 0.1 + 0.04 * index} for index in range(num_samples)]
    query = Unreliability([mission_time])

    def swept():
        return SweepStudy(tree).run(RateSweep(query, samples))

    def naive():
        return [
            evaluate(substitute_parameters(tree, sample), query) for sample in samples
        ]

    # Best-of-3 for the sweep (a fresh SweepStudy each repeat keeps the
    # shared pipeline honestly inside the measurement; min-of discards
    # one-off cold-cache stalls); the naive side runs 50 pipelines per
    # repeat and is self-averaging.
    result, sweep_seconds = _timed(swept)
    references, naive_seconds = _timed(naive, repeats=1)
    worst = max(
        abs(row["unreliability"].values[0] - ref["unreliability"].values[0])
        for row, ref in zip(result.rows, references)
    )

    # Kernel vs PR 4 per-sample cost, on one warm study (pipeline excluded,
    # best-of-3 so a one-off stall cannot skew the gated ratio either way).
    warm = SweepStudy(tree)
    warm.skeleton
    kernel_result, kernel_samples_seconds = _timed(
        lambda: warm.run(RateSweep(query, samples))
    )
    legacy_result, legacy_samples_seconds = _timed(
        lambda: warm.run(RateSweep(query, samples), use_kernel=False)
    )
    kernel_vs_legacy_difference = max(
        abs(a - b)
        for mine, theirs in zip(kernel_result.rows, legacy_result.rows)
        for a, b in zip(mine["unreliability"].values, theirs["unreliability"].values)
    )

    # Parallel scaling spot check: rows must be bit-identical to serial.
    parallel_result, parallel_seconds = _timed(
        lambda: warm.run(RateSweep(query, samples), processes=2), repeats=1
    )
    rows_identical = all(
        mine.sample == theirs.sample and mine.measures == theirs.measures
        for mine, theirs in zip(kernel_result.rows, parallel_result.rows)
    )

    return {
        "num_samples": num_samples,
        "failed_rows": result.num_failed,
        "shared_pipeline_seconds": result.timings["shared"],
        "per_sample_seconds": result.timings["samples"] / num_samples,
        "instantiate_seconds_per_sample": result.timings["instantiate"] / num_samples,
        "solve_seconds_per_sample": result.timings["solve"] / num_samples,
        "kernel_samples_seconds": kernel_samples_seconds,
        "legacy_samples_seconds": legacy_samples_seconds,
        "kernel_vs_legacy_difference": kernel_vs_legacy_difference,
        "structure_speedup": (
            legacy_samples_seconds / kernel_samples_seconds
            if kernel_samples_seconds
            else None
        ),
        "parallel": {
            "processes": 2,
            "samples_wall_seconds": parallel_seconds,
            "rows_identical_to_serial": rows_identical,
        },
        "sweep_wall_seconds": sweep_seconds,
        "naive_wall_seconds": naive_seconds,
        "speedup": naive_seconds / sweep_seconds if sweep_seconds else None,
        "max_abs_difference": worst,
    }


def bench_ctmdp_kernel(channels: int = 5, num_samples: int = 8) -> dict:
    """CTMDP bound sweep: shared-structure kernel vs legacy per-sample engine.

    The workload is a ``pand_race_bank`` instance — an AND of five FDEP/PAND
    simultaneity races whose aggregated model stays a genuine CTMDP (455
    states, rates staggered so no two channels are symmetric).  Three engines
    on identical samples and mission times:

    * the ``CtmdpKernel`` sweep path (one CSR pattern + vanishing-resolver
      shared across samples, per-sample data refills),
    * the same sweep with ``use_kernel=False`` (per-sample ``instantiate``
      feeding the kernel-backed CTMDP curve) — bounds must agree to 1e-12,
    * the legacy pre-kernel engine (per-sample ``instantiate`` plus
      ``time_bounded_reachability_curve_reference`` in both directions, i.e.
      the dense per-step round-robin code path) — bounds must agree to 1e-9
      and the kernel sweep must beat it by >= 10x (measured ~20x).
    """
    tree = with_rate_parameters(pand_race_bank(channels))
    times = (0.25, 0.5, 1.0, 2.0)
    query = UnreliabilityBounds(times)
    scales = [0.35, 0.6, 0.85, 1.0, 1.3, 1.7, 2.2, 2.9][:num_samples]
    samples = [
        {
            name: max(0.05, min(5.0, nominal * scale))
            for name, nominal in tree.parameters.items()
        }
        for scale in scales
    ]

    study = SweepStudy(tree)
    skeleton = study.skeleton  # warm the shared pipeline outside the timing
    kernel_result, kernel_seconds = _timed(
        lambda: study.run(RateSweep(query, samples))
    )
    per_sample_result, _ = _timed(
        lambda: study.run(RateSweep(query, samples), use_kernel=False), repeats=1
    )

    def legacy():
        rows = []
        for sample in samples:
            model = skeleton.instantiate(sample)
            low = model.time_bounded_reachability_curve_reference(
                signals.FAILED_LABEL, times, maximize=False
            )
            high = model.time_bounded_reachability_curve_reference(
                signals.FAILED_LABEL, times, maximize=True
            )
            rows.append((low, high))
        return rows

    legacy_rows, legacy_seconds = _timed(legacy, repeats=1)

    def worst_row_difference(reference_rows):
        worst = 0.0
        for row, (low, high) in zip(kernel_result.rows, reference_rows):
            bounds = row["unreliability_bounds"]
            worst = max(
                worst,
                float(np.max(np.abs(np.asarray(bounds.lower) - low))),
                float(np.max(np.abs(np.asarray(bounds.upper) - high))),
            )
        return worst

    per_sample_rows = [
        (
            np.asarray(row["unreliability_bounds"].lower),
            np.asarray(row["unreliability_bounds"].upper),
        )
        for row in per_sample_result.rows
    ]
    return {
        "channels": channels,
        "states": skeleton.num_states,
        "num_samples": num_samples,
        "num_times": len(times),
        "failed_rows": kernel_result.num_failed,
        "kernel_wall_seconds": kernel_seconds,
        "legacy_wall_seconds": legacy_seconds,
        "speedup": legacy_seconds / kernel_seconds if kernel_seconds else None,
        "kernel_vs_per_sample_difference": worst_row_difference(per_sample_rows),
        "kernel_vs_reference_difference": worst_row_difference(legacy_rows),
    }


def bench_optimize() -> dict:
    """Design-space optimisation on the seeded CAS spares scenario.

    Runs the Russian-doll branch-and-bound and the exhaustive reference on
    the same 72-design (36 feasible) problem.  CI gates that the pruned
    search returns the *identical* optimal design and value while evaluating
    at most 50% of the feasible leaves (measured ~22%); the recorded
    pruning ratio is what the trajectory tracks.
    """
    from repro import optimize
    from repro.systems import cas_spares_scenario

    pruned, pruned_seconds = _timed(
        lambda: optimize(cas_spares_scenario()), repeats=1
    )
    exhaustive, exhaustive_seconds = _timed(
        lambda: optimize(cas_spares_scenario(), exhaustive=True), repeats=1
    )
    return {
        "space_size": cas_spares_scenario().space_size,
        "leaves_feasible": pruned.leaves_feasible,
        "leaves_evaluated": pruned.leaves_evaluated,
        "bound_evaluations": pruned.bound_evaluations,
        "pruned_by_cost": pruned.pruned_by_cost,
        "pruned_by_table": pruned.pruned_by_table,
        "pruned_by_envelope": pruned.pruned_by_envelope,
        "pruning_ratio": pruned.pruning_ratio,
        "best_value": pruned.best_value,
        "best_design": [choice.option_index for choice in pruned.best_design],
        "exhaustive_value": exhaustive.best_value,
        "exhaustive_design": [
            choice.option_index for choice in exhaustive.best_design
        ],
        "pruned_wall_seconds": pruned_seconds,
        "exhaustive_wall_seconds": exhaustive_seconds,
        "speedup": (
            exhaustive_seconds / pruned_seconds if pruned_seconds else None
        ),
    }


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_fig2.json"
    report = {
        "python": platform.python_version(),
        "figure2": bench_figure2(),
        "orderings": bench_orderings(*FAMILY_INSTANCE),
        "fusion": bench_fusion(*FAMILY_INSTANCE),
        "fusion_step": bench_fusion_step(3, 6),
        "minimisation": bench_minimisation(3, 6),
        "minimisation_v2": bench_minimisation_v2(),
        "minimisation_v3": bench_minimisation_v3(),
        "curve": bench_curve(),
        "batch": bench_batch(),
        "sweep": bench_sweep(),
        "ctmdp_kernel": bench_ctmdp_kernel(),
        "optimize": bench_optimize(),
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    orderings = report["orderings"]
    if orderings["modular"]["peak_product_states"] > orderings["linked"]["peak_product_states"]:
        print("FAIL: modular ordering exceeded the linked peak", file=sys.stderr)
        return 1
    minimisation = report["minimisation"]
    if minimisation["splitter_states"] != minimisation["signature_states"] or (
        minimisation["splitter_transitions"] != minimisation["signature_transitions"]
    ):
        print("FAIL: splitter and signature minimisers disagree", file=sys.stderr)
        return 1
    # Perf-trajectory target: >= 3x on this workload (measured ~6-7x on the
    # development machine).  The hard CI gate sits at 2x so that CPU steal on
    # a loaded shared runner cannot fail an unrelated PR, while any real
    # regression of the splitter engine still trips it; the recorded
    # `speedup` value is what the trajectory tracks.
    if minimisation["speedup"] is None or minimisation["speedup"] < 2.0:
        print(
            "FAIL: splitter weak minimisation is not clearly faster than the "
            "signature engine (>= 3x expected, 2x gated)",
            file=sys.stderr,
        )
        return 1
    v2 = report["minimisation_v2"]
    # Minimisation-v2 gate, strong path: the Paige-Tarjan smaller-half
    # engine must beat the vendored PR 3 splitter >= 2x on the tau-heavy
    # chain (measured ~5x; the margin absorbs loaded shared runners).
    if v2["chain"]["strong_speedup"] is None or v2["chain"]["strong_speedup"] < 2.0:
        print(
            "FAIL: strong smaller-half engine is not >= 2x faster than the "
            f"PR 3 baseline on the tau-heavy chain (got {v2['chain']['strong_speedup']})",
            file=sys.stderr,
        )
        return 1
    # Weak path: tau-closure saturation dominates, so the honest bound is a
    # non-regression gate against the PR 3 baseline (measured ~1.1x).
    if v2["product"]["weak_ratio"] is None or v2["product"]["weak_ratio"] < 0.9:
        print(
            "FAIL: weak minimisation regressed below 0.9x of the PR 3 "
            f"baseline on the 8581-state product (got {v2['product']['weak_ratio']})",
            file=sys.stderr,
        )
        return 1
    if not v2["parallel_aggregation"]["identical_to_serial"]:
        print(
            "FAIL: parallel modular aggregation changed the final quotient",
            file=sys.stderr,
        )
        return 1
    v3 = report["minimisation_v3"]
    if not v3["identical_quotients"]:
        print(
            "FAIL: closure and splitter weak engines disagree on the quotient",
            file=sys.stderr,
        )
        return 1
    if not v3["saturation_fallback"]["identical_quotients"]:
        print(
            "FAIL: the saturation fallback produced a different quotient",
            file=sys.stderr,
        )
        return 1
    # Minimisation-v3 gate: the closure engine must beat the PR 6 splitter
    # engine >= 2x on the 8581-state weak workload (measured ~2.7-2.9x on
    # the development machine; the margin absorbs loaded shared runners).
    if v3["closure_speedup"] is None or v3["closure_speedup"] < 2.0:
        print(
            "FAIL: closure weak minimisation is not >= 2x faster than the "
            f"PR 6 splitter engine (got {v3['closure_speedup']})",
            file=sys.stderr,
        )
        return 1
    curve = report["curve"]
    if curve["max_abs_difference"] > 1e-9:
        print("FAIL: vectorised curve deviates from per-point evaluation", file=sys.stderr)
        return 1
    if curve["vectorised_wall_seconds"] >= curve["per_point_wall_seconds"]:
        print("FAIL: vectorised curve evaluation is not faster", file=sys.stderr)
        return 1
    if report["batch"]["failed"]:
        print("FAIL: batch corpus run had failing trees", file=sys.stderr)
        return 1
    sweep = report["sweep"]
    if sweep["failed_rows"]:
        print("FAIL: rate sweep had failing sample rows", file=sys.stderr)
        return 1
    if sweep["max_abs_difference"] > 1e-9:
        print("FAIL: rate sweep deviates from naive per-sample re-runs", file=sys.stderr)
        return 1
    if sweep["kernel_vs_legacy_difference"] > 1e-9:
        print(
            "FAIL: the shared-structure kernel deviates from per-sample "
            "instantiation",
            file=sys.stderr,
        )
        return 1
    # Acceptance gate of the shared-structure kernel PR: aggregate-once plus
    # in-place CSR refills must beat 50 naive pipeline runs by >= 20x
    # (measured ~30x; PR 4's per-sample instantiation managed ~12x).
    if sweep["speedup"] is None or sweep["speedup"] < 20.0:
        print(
            "FAIL: the rate-sweep engine is not >= 20x faster than naive "
            f"per-sample re-runs (got {sweep['speedup']})",
            file=sys.stderr,
        )
        return 1
    # The kernel itself must beat PR 4's per-sample cost by >= 1.5x
    # (measured ~4-6x; the gate has margin for loaded shared runners).
    if sweep["structure_speedup"] is None or sweep["structure_speedup"] < 1.5:
        print(
            "FAIL: the shared-structure kernel is not >= 1.5x faster per "
            f"sample than full instantiation (got {sweep['structure_speedup']})",
            file=sys.stderr,
        )
        return 1
    if not sweep["parallel"]["rows_identical_to_serial"]:
        print(
            "FAIL: parallel sweep rows differ from the serial rows",
            file=sys.stderr,
        )
        return 1
    ctmdp = report["ctmdp_kernel"]
    if ctmdp["failed_rows"]:
        print("FAIL: CTMDP bound sweep had failing sample rows", file=sys.stderr)
        return 1
    # Bound identity: the kernel sweep and the per-sample instantiation path
    # share the uniformised backward sweep, so their rows must agree to
    # 1e-12 (measured exactly 0.0).
    if ctmdp["kernel_vs_per_sample_difference"] > 1e-12:
        print(
            "FAIL: CTMDP kernel bounds deviate from per-sample instantiation "
            f"(got {ctmdp['kernel_vs_per_sample_difference']})",
            file=sys.stderr,
        )
        return 1
    if ctmdp["kernel_vs_reference_difference"] > 1e-9:
        print(
            "FAIL: CTMDP kernel bounds deviate from the legacy reference "
            f"engine (got {ctmdp['kernel_vs_reference_difference']})",
            file=sys.stderr,
        )
        return 1
    # Acceptance gate of the CTMDP-kernel PR: the shared-structure backward
    # sweep must beat the legacy dense per-sample engine >= 10x on the
    # 455-state race bank (measured ~20x; the margin absorbs loaded runners).
    if ctmdp["speedup"] is None or ctmdp["speedup"] < 10.0:
        print(
            "FAIL: the CTMDP kernel sweep is not >= 10x faster than the "
            f"legacy per-sample engine (got {ctmdp['speedup']})",
            file=sys.stderr,
        )
        return 1
    opt = report["optimize"]
    # Acceptance gates of the design-space optimisation PR: the pruned
    # branch-and-bound must return exactly the brute-force optimum...
    if opt["best_design"] != opt["exhaustive_design"]:
        print(
            "FAIL: pruned optimisation picked a different design than the "
            f"exhaustive reference ({opt['best_design']} vs "
            f"{opt['exhaustive_design']})",
            file=sys.stderr,
        )
        return 1
    if abs(opt["best_value"] - opt["exhaustive_value"]) > 1e-12:
        print(
            "FAIL: pruned optimisation value deviates from the exhaustive "
            f"reference ({opt['best_value']} vs {opt['exhaustive_value']})",
            file=sys.stderr,
        )
        return 1
    # ...while evaluating at most half the feasible leaves (measured ~22%
    # on the seeded CAS scenario — 8 of 36).
    if opt["leaves_evaluated"] > 0.5 * opt["leaves_feasible"]:
        print(
            "FAIL: the branch-and-bound evaluated more than 50% of the "
            f"feasible leaves ({opt['leaves_evaluated']} of "
            f"{opt['leaves_feasible']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
