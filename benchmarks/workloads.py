"""Shared benchmark workload builders.

Importable both from the pytest benchmarks (``bench_scalability.py``) and the
dependency-free CI smoke script (``smoke_fig2.py``), so the two always
measure the *same* workload — only :mod:`repro` imports allowed here.
"""

from repro.core import convert
from repro.ioimc import IOIMC, parallel, signature
from repro.systems import cascaded_pand_family


def largest_minimisation_workload(num_modules: int, events_per_module: int):
    """The biggest weak-minimisation input the family instance can produce.

    Mirrors the aggregation engine: the two largest module chains are each
    fused with a consumer they communicate with, the two composites are
    composed, and every output no remaining community member listens to is
    hidden — a large, tau-heavy intermediate exactly like the products the
    weak minimiser sees mid-aggregation.
    """
    tree = cascaded_pand_family(num_modules, events_per_module)
    members = sorted(convert(tree).models(), key=lambda m: -m.num_states)
    chains = members[:2]
    used = set(chains)
    composites = []
    for chain in chains:
        partner = next(
            m
            for m in members
            if m not in used and (m.signature.inputs & chain.signature.outputs)
        )
        used.add(partner)
        composites.append(parallel(chain, partner, fuse=True))
    product = parallel(composites[0], composites[1], fuse=True)
    external = set()
    for other in members:
        if other not in used:
            external |= other.signature.inputs
    hideable = product.signature.outputs - external
    return product.hide(hideable) if hideable else product


def tau_heavy_chain(num_states: int) -> IOIMC:
    """A long interactive chain, two internal steps for every visible one.

    Every state sits at a distinct distance from the chain's end, so no two
    states are bisimilar and the quotient equals the input — the refinement
    loop must split all the way down to singletons.  That makes the chain the
    adversarial case for splitter scheduling: the PR 3 engine reprocesses
    ever-larger blocks (quadratic splitter work) where the Paige-Tarjan
    smaller-half discipline only ever queues the lighter side.
    """
    model = IOIMC(
        "tau-chain", signature(outputs=("observe",), internals=("tick",))
    )
    for _ in range(num_states):
        model.add_state()
    for state in range(num_states - 1):
        model.add_interactive(state, "tick" if state % 3 else "observe", state + 1)
    model.set_initial(0)
    return model
