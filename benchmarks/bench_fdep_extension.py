"""E6 — FDEP gates triggering arbitrary gates (Section 6.2, Figure 10c).

The trigger fails the *gate* ``A`` but none of the basic events below it; the
shared component ``C`` keeps working inside the second sub-system.  The
benchmark verifies that semantic point quantitatively (against the monolithic
baseline and against a hand-derived bound) and measures the pipeline.
"""

import pytest

from repro import CompositionalAnalyzer
from repro.baselines import monolithic_unreliability
from repro.dft import FaultTreeBuilder
from repro.systems import fdep_gate_trigger_system

from conftest import record

MISSION_TIME = 1.0


def event_level_variant():
    """The same system, but with the FDEP pointed at the basic events.

    The paper's point (Section 6.2) is that triggering the *gate* leaves the
    components below it untouched; this variant triggers the components
    instead, which also drags the second sub-system (sharing ``C``) down and
    must therefore be strictly more unreliable.
    """
    builder = FaultTreeBuilder("fdep-into-events")
    builder.basic_event("T", 0.5)
    builder.basic_event("B", 1.0)
    builder.basic_event("C", 1.0)
    builder.basic_event("E", 1.0)
    builder.and_gate("A", ["B", "C"])
    builder.and_gate("CE", ["C", "E"])
    builder.fdep("F", trigger="T", dependents=["B", "C"])
    builder.and_gate("system", ["A", "CE"])
    return builder.build("system")


@pytest.mark.benchmark(group="fdep-extension")
def test_fdep_gate_dependent(benchmark):
    tree = fdep_gate_trigger_system(trigger_rate=0.5, component_rate=1.0)

    def run():
        return CompositionalAnalyzer(tree).unreliability(MISSION_TIME)

    value = benchmark(run)
    reference = monolithic_unreliability(tree, MISSION_TIME)
    event_level = CompositionalAnalyzer(event_level_variant()).unreliability(MISSION_TIME)
    record(
        benchmark,
        experiment="E6 (Figure 10c, FDEP triggering a gate)",
        unreliability=value,
        monolithic_reference=reference,
        event_level_variant=event_level,
        paper_claim="the trigger fails the gate, not the components below it",
    )
    assert value == pytest.approx(reference, abs=1e-7)
    # Failing the components (instead of the gate) also takes down the second
    # sub-system via the shared component C, so it is strictly worse.
    assert event_level > value + 1e-3
