"""E10 — ablation of the engine's design choices (composition order, equivalence).

The paper's algorithm leaves the composition order open ("pick two I/O-IMC").
This benchmark quantifies how much the order matters — the linked/smallest
heuristics versus a naive sequential fold — and how much weak bisimulation
buys over strong bisimulation during aggregation.  All variants must agree on
the computed unreliability; the interesting outputs are the peak intermediate
sizes.
"""

import pytest

from repro import AnalysisOptions, CompositionalAnalyzer
from repro.ioimc import AggregationOptions
from repro.systems import cardiac_assist_system, cascaded_pand_system

from conftest import record

MISSION_TIME = 1.0
ORDERINGS = ["linked", "smallest", "sequential"]


def run_variant(tree, ordering="linked", method="weak"):
    options = AnalysisOptions(
        ordering=ordering, aggregation=AggregationOptions(method=method)
    )
    analyzer = CompositionalAnalyzer(tree, options)
    bounds = analyzer.unreliability_bounds(MISSION_TIME)
    return bounds, analyzer.statistics


@pytest.mark.benchmark(group="ordering-ablation")
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_cps_composition_ordering(benchmark, ordering):
    tree = cascaded_pand_system()

    def run():
        return run_variant(tree, ordering=ordering)

    (low, high), statistics = benchmark(run)
    reference, _ = run_variant(tree, ordering="linked")
    record(
        benchmark,
        experiment="E10 (composition-order ablation, CPS)",
        ordering=ordering,
        unreliability=low,
        peak_product_states=statistics.peak_product_states,
        peak_product_transitions=statistics.peak_product_transitions,
    )
    assert low == pytest.approx(high, abs=1e-9)
    assert low == pytest.approx(reference[0], abs=1e-9)


@pytest.mark.benchmark(group="equivalence-ablation")
@pytest.mark.parametrize("method", ["weak", "strong"])
def test_cas_aggregation_equivalence(benchmark, method):
    tree = cardiac_assist_system()

    def run():
        return run_variant(tree, method=method)

    (low, high), statistics = benchmark(run)
    record(
        benchmark,
        experiment="E10 (weak vs strong aggregation, CAS)",
        method=method,
        unreliability_low=low,
        unreliability_high=high,
        peak_aggregated_states=statistics.peak_reduced_states,
        peak_product_states=statistics.peak_product_states,
    )
    assert low == pytest.approx(high, abs=1e-6)
    assert low == pytest.approx(0.6579, abs=5e-5)
