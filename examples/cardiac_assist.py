"""The cardiac assist system (paper Section 5.1, Figure 7).

Reproduces the CAS case study end to end:

* compositional I/O-IMC analysis (unreliability at mission time 1 = 0.6579),
* the DIFTree-style modular baseline for comparison (same number, and the
  per-module Markov-chain sizes: the pump unit is the biggest with 8 states),
* an unreliability curve over mission times.

Run with::

    python examples/cardiac_assist.py
"""

from __future__ import annotations

from repro import CompositionalAnalyzer
from repro.baselines import DiftreeAnalyzer
from repro.systems import CAS_PAPER_UNRELIABILITY, cardiac_assist_system


def main() -> None:
    tree = cardiac_assist_system()
    print("Fault tree:", tree.summary())
    print()

    analyzer = CompositionalAnalyzer(tree)
    unreliability = analyzer.unreliability(1.0)
    print("Compositional I/O-IMC analysis")
    print("------------------------------")
    print("Community   :", analyzer.community.summary())
    print("Aggregation :", analyzer.statistics.summary())
    print(f"Unreliability(t=1) = {unreliability:.6f}   (paper: {CAS_PAPER_UNRELIABILITY})")
    print()

    print("DIFTree baseline (modular: BDD for static, Markov chain per dynamic module)")
    print("---------------------------------------------------------------------------")
    diftree = DiftreeAnalyzer(tree).analyze(1.0)
    for module in diftree.modules:
        print("  ", module.summary())
    print(diftree.summary())
    print()

    print("Unreliability curve")
    print("-------------------")
    times = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0]
    values = analyzer.unreliability_curve(times)
    for time, value in zip(times, values):
        bar = "#" * int(round(value * 50))
        print(f"  t={time:>5}: {value:.6f} {bar}")


if __name__ == "__main__":
    main()
