"""Analysis as a service: skeleton cache, HTTP server, warm-cache sweeps.

Walks the serving layer end to end:

* warm a content-addressed skeleton cache from the CAS fault tree,
* start the HTTP server on an ephemeral port (in a background thread),
* analyze over HTTP — the first request of a structural class pays for the
  full pipeline (conversion, aggregation, minimisation), every later
  request of the same class is served from the cache,
* run a parameter sweep with one shared uniformisation rate for the whole
  grid, and
* read the server's request metrics and cache statistics.

Run with::

    python examples/analysis_service.py
"""

from __future__ import annotations

import tempfile
import threading
import time

from repro.dft import galileo
from repro.service import ServiceClient, SkeletonStore, serve
from repro.systems import cardiac_assist_system

PARAM_TREE = """
param lam = 0.5;
toplevel "sys";
"sys" or "pumps" "cpu";
"pumps" and "p1" "p2";
"p1" lambda=lam;
"p2" lambda=lam;
"cpu" lambda=0.2;
"""


def main() -> None:
    tree = cardiac_assist_system()
    with tempfile.TemporaryDirectory(prefix="repro-service-") as cache_dir:
        # 1. Warm the cache before the server takes traffic (the CLI
        #    equivalent is `repro cache warm trees/*.dft --cache-dir DIR`).
        #    Here we pre-warm the sweep tree; the CAS tree stays cold so the
        #    first analyze below shows the miss -> hit transition.
        store = SkeletonStore(cache_dir)
        counters = store.warm([galileo.parse(PARAM_TREE, name="sweep-tree")])
        print(f"warmed cache: {counters}")

        # 2. Start the server (ephemeral port) in a background thread.
        #    From a shell: `repro serve --cache-dir DIR --port 8357`.
        server = serve(cache_dir, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"serving on {server.url}")

        try:
            client = ServiceClient(server.url)

            # 3. Analyze over HTTP: cold (pipeline) vs warm (cache).
            text = galileo.write(tree)
            start = time.perf_counter()
            cold_response = client.analyze(text, times=[1.0], mttf=True)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            response = client.analyze(text, times=[1.0], mttf=True)
            warm = time.perf_counter() - start
            unreliability = response["measures"][0]["values"][0]
            print(f"Unreliability(t=1) = {unreliability:.6f}  (paper: 0.6579)")
            print(
                f"cold {cold * 1e3:.1f} ms (cache "
                f"{cold_response['service']['cache']}) -> warm "
                f"{warm * 1e3:.1f} ms (cache {response['service']['cache']}, "
                f"{cold / warm:.0f}x)"
            )

            # 4. A sweep over the cached skeleton with one shared
            #    uniformisation rate for the whole grid.
            sweep = client.sweep(
                PARAM_TREE,
                axes={"lam": [0.1, 0.5, 1.0, 2.0]},
                share_uniformisation=True,
            )
            print("sweep over lam (shared uniformisation rate "
                  f"{sweep['options']['shared_uniformisation_rate']:.3f}):")
            for row in sweep["rows"]:
                value = row["measures"][0]["values"][0]
                print(f"  lam={row['sample']['lam']:<4} -> U(t=1) = {value:.6f}")

            # 5. Server-side request metrics and cache statistics.
            metrics = client.metrics()
            analyze_stats = metrics["endpoints"]["/analyze"]
            print(
                f"metrics: {analyze_stats['requests']} analyze requests, "
                f"p95 {analyze_stats['p95_ms']:.1f} ms; "
                f"{metrics['store']['entries']} cache entries, "
                f"{metrics['store']['hits']} hits"
            )
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()
