"""Non-determinism detection and the Section 7 extensions.

Three short studies on the paper's "extensibility" claims:

1. **Inherent non-determinism** (Section 4.4, Figure 6a): an FDEP trigger that
   fails both inputs of a PAND gate.  The framework detects the
   non-determinism and reports an interval of possible unreliabilities instead
   of silently picking a resolution.
2. **Mutually exclusive failure modes** (Section 7.1, Figure 12): a switch that
   can fail open or fail closed, but never both.
3. **Complex spares** (Section 6.1, Figure 10): whole sub-trees acting as
   primary and spare units, with the generalised activation semantics.

Run with::

    python examples/nondeterminism_and_extensions.py
"""

from __future__ import annotations

from repro import CompositionalAnalyzer, detect_nondeterminism
from repro.baselines import monolithic_unreliability
from repro.systems import (
    and_spare_system,
    mutually_exclusive_switch,
    nested_spare_system,
    pand_race_system,
)


def study_nondeterminism() -> None:
    print("1. FDEP trigger racing a PAND gate (Figure 6a)")
    print("----------------------------------------------")
    tree = pand_race_system()
    report = detect_nondeterminism(tree, time=1.0)
    print("  ", report.summary())
    deterministic = monolithic_unreliability(tree, 1.0)
    print(
        f"   A deterministic left-to-right resolution (as in classical tools) "
        f"gives {deterministic:.6f}, inside the reported interval."
    )
    print()


def study_mutual_exclusion() -> None:
    print("2. Mutually exclusive switch failure modes (Figure 12)")
    print("------------------------------------------------------")
    tree = mutually_exclusive_switch()
    analyzer = CompositionalAnalyzer(tree)
    print(f"   Unreliability(t=1) with mutual exclusion   : {analyzer.unreliability(1.0):.6f}")
    print()


def study_complex_spares() -> None:
    print("3. Complex spare modules (Figure 10)")
    print("------------------------------------")
    for tree in (and_spare_system(), nested_spare_system()):
        analyzer = CompositionalAnalyzer(tree)
        print(
            f"   {tree.name:<25} unreliability(t=1) = {analyzer.unreliability(1.0):.6f}  "
            f"({analyzer.statistics.summary()})"
        )
    print()


def main() -> None:
    study_nondeterminism()
    study_mutual_exclusion()
    study_complex_spares()


if __name__ == "__main__":
    main()
