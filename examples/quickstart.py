"""Quickstart: build a small dynamic fault tree and analyse it.

The system: two pumps run in parallel and share a single cold spare pump; the
system fails once all pumping capability is gone.  This is the shared-spare
pattern of the paper's pump unit (Figure 7, right branch).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CompositionalAnalyzer
from repro.dft import FaultTreeBuilder, galileo


def build_tree():
    builder = FaultTreeBuilder("two-pumps-with-shared-spare")
    builder.basic_event("PA", failure_rate=1.0)
    builder.basic_event("PB", failure_rate=1.0)
    builder.basic_event("PS", failure_rate=1.0, dormancy=0.0)  # cold spare
    builder.spare_gate("PumpA", primary="PA", spares=["PS"])
    builder.spare_gate("PumpB", primary="PB", spares=["PS"])
    builder.and_gate("System", ["PumpA", "PumpB"])
    return builder.build(top="System")


def main() -> None:
    tree = build_tree()
    print("Fault tree:", tree.summary())
    print()
    print("Galileo representation:")
    print(galileo.write(tree))

    analyzer = CompositionalAnalyzer(tree)

    print("I/O-IMC community:", analyzer.community.summary())
    print("Aggregation      :", analyzer.statistics.summary())
    print()

    for time in (0.5, 1.0, 2.0, 5.0):
        print(f"Unreliability at t={time:>4}: {analyzer.unreliability(time):.6f}")
    print(f"Mean time to failure  : {analyzer.mean_time_to_failure():.6f}")
    print()
    print("Full report")
    print("-----------")
    print(analyzer.report(time=1.0))


if __name__ == "__main__":
    main()
