"""Quickstart: build a small dynamic fault tree and analyse it.

The system: two pumps run in parallel and share a single cold spare pump; the
system fails once all pumping capability is gone.  This is the shared-spare
pattern of the paper's pump unit (Figure 7, right branch).

Analysis goes through the declarative query API: bundle every measure you
want into one :class:`~repro.core.measures.Query`, evaluate it once, and read
values (plus provenance and timings) off the structured result.  All mission
times share a single vectorised uniformisation sweep.  (The older
``CompositionalAnalyzer`` facade still works, but is legacy.)

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MTTF, Study, Unreliability
from repro.dft import FaultTreeBuilder, galileo


def build_tree():
    builder = FaultTreeBuilder("two-pumps-with-shared-spare")
    builder.basic_event("PA", failure_rate=1.0)
    builder.basic_event("PB", failure_rate=1.0)
    builder.basic_event("PS", failure_rate=1.0, dormancy=0.0)  # cold spare
    builder.spare_gate("PumpA", primary="PA", spares=["PS"])
    builder.spare_gate("PumpB", primary="PB", spares=["PS"])
    builder.and_gate("System", ["PumpA", "PumpB"])
    return builder.build(top="System")


def main() -> None:
    tree = build_tree()
    print("Fault tree:", tree.summary())
    print()
    print("Galileo representation:")
    print(galileo.write(tree))

    # One query = one conversion, one aggregation, one transient sweep.
    query = Unreliability([0.5, 1.0, 2.0, 5.0]) + MTTF()
    study = Study(tree)
    result = study.evaluate(query)

    print("I/O-IMC community:", study.community.summary())
    print("Aggregation      :", study.statistics.summary())
    print()

    unreliability = result["unreliability"]
    for time, value in zip(unreliability.times, unreliability.values):
        print(f"Unreliability at t={time:>4}: {value:.6f}")
    print(f"Mean time to failure  : {result['mttf'].value:.6f}")
    print()
    print("Structured result (what `repro analyze --json` prints)")
    print("-------------------------------------------------------")
    print(result.to_json(indent=2, include_steps=False))


if __name__ == "__main__":
    main()
