"""Working with Galileo DFT files (the paper's input format, Section 5.1).

The example writes the cardiac assist system to a Galileo file, reads it back,
analyses the parsed tree and shows how to analyse any user-supplied ``.dft``
file from the command line::

    python examples/galileo_files.py                # demo on the bundled CAS
    python examples/galileo_files.py my_system.dft  # analyse your own file
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import CompositionalAnalyzer
from repro.dft import galileo
from repro.systems import cardiac_assist_system


def analyse(path: Path, mission_time: float = 1.0) -> None:
    tree = galileo.parse_file(str(path))
    print(f"Parsed {path}: {tree.summary()}")
    analyzer = CompositionalAnalyzer(tree)
    if analyzer.is_nondeterministic:
        low, high = analyzer.unreliability_bounds(mission_time)
        print(f"Unreliability(t={mission_time:g}) in [{low:.6f}, {high:.6f}]")
    else:
        print(f"Unreliability(t={mission_time:g}) = {analyzer.unreliability(mission_time):.6f}")
    print("Aggregation:", analyzer.statistics.summary())


def demo() -> None:
    tree = cardiac_assist_system()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cardiac_assist.dft"
        galileo.write_file(tree, str(path))
        print("Wrote the cardiac assist system in Galileo format:")
        print(path.read_text())
        analyse(path)


def main() -> None:
    if len(sys.argv) > 1:
        analyse(Path(sys.argv[1]))
    else:
        demo()


if __name__ == "__main__":
    main()
