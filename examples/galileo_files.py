"""Working with Galileo DFT files (the paper's input format, Section 5.1).

The example writes the cardiac assist system to a Galileo file, reads it back,
analyses the parsed tree with the declarative query API and shows how to
analyse any user-supplied ``.dft`` file from the command line::

    python examples/galileo_files.py                # demo on the bundled CAS
    python examples/galileo_files.py my_system.dft  # analyse your own file

``UnreliabilityBounds`` is used as the measure because it is safe for *any*
tree: on a deterministic model the bounds coincide with the unreliability,
and on a non-deterministic one they are the (min, max) envelope.  (The legacy
``CompositionalAnalyzer`` facade offers the same numbers one call at a time.)
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import UnreliabilityBounds, evaluate
from repro.dft import galileo
from repro.systems import cardiac_assist_system


def analyse(path: Path, mission_time: float = 1.0) -> None:
    tree = galileo.parse_file(str(path))
    print(f"Parsed {path}: {tree.summary()}")
    result = evaluate(tree, UnreliabilityBounds([mission_time]))
    low, high = result["unreliability_bounds"].bounds
    if low == high:
        print(f"Unreliability(t={mission_time:g}) = {low:.6f}")
    else:
        print(f"Unreliability(t={mission_time:g}) in [{low:.6f}, {high:.6f}]")
    print(f"Model: {result.model.kind} with {result.model.states} states")
    print("Aggregation:", result.statistics.summary())


def demo() -> None:
    tree = cardiac_assist_system()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cardiac_assist.dft"
        galileo.write_file(tree, str(path))
        print("Wrote the cardiac assist system in Galileo format:")
        print(path.read_text())
        analyse(path)


def main() -> None:
    if len(sys.argv) > 1:
        analyse(Path(sys.argv[1]))
    else:
        demo()


if __name__ == "__main__":
    main()
