"""Defining a brand-new DFT element (paper Section 7).

The paper argues that extending the DFT language only requires a new
elementary I/O-IMC — composition, aggregation and analysis stay untouched.
This example demonstrates exactly that workflow below the public DFT API:

* we define a **two-phase basic event** whose failure rate increases after an
  exponentially distributed "wear-in" period (a tiny phase-type distribution —
  the paper's future-work item (3) suggests phase-type failure times),
* we wire it, by hand, into a community with an ordinary AND gate and the
  analysis monitor,
* we run the standard compositional aggregation and compute the unreliability,
  cross-checking against a direct CTMC solution of the same phase-type model.

Run with::

    python examples/extending_the_framework.py
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.core import compositional_aggregate, signals
from repro.core.semantics import MonitorBehavior, StaticGateBehavior
from repro.ctmc import ctmc_from_ioimc
from repro.ioimc import ActionSignature, ElementBehavior


class TwoPhaseBasicEvent(ElementBehavior):
    """A basic event that wears in: rate ``early`` first, ``late`` afterwards.

    States: ``early`` --wear--> ``late`` --late_rate--> ``firing`` --f!--> ``fired``
    (and the early phase can also fail directly with ``early_rate``).
    """

    def __init__(self, name: str, early_rate: float, late_rate: float, wear_rate: float):
        self.name = f"TwoPhaseBE({name})"
        self.element_name = name
        self.early_rate = early_rate
        self.late_rate = late_rate
        self.wear_rate = wear_rate
        self.fire_action = signals.fire(name)

    def signature(self) -> ActionSignature:
        return ActionSignature(outputs=frozenset({self.fire_action}))

    def initial_state(self):
        return "early"

    def on_input(self, state, action):
        return state

    def urgent(self, state):
        if state == "firing":
            return ((self.fire_action, "fired"),)
        return ()

    def markovian(self, state):
        if state == "early":
            return ((self.wear_rate, "late"), (self.early_rate, "firing"))
        if state == "late":
            return ((self.late_rate, "firing"),)
        return ()


def phase_type_cdf(early, late, wear, time):
    """Ground truth for a single two-phase component."""
    generator = np.array(
        [
            [-(early + wear), wear, early],
            [0.0, -late, late],
            [0.0, 0.0, 0.0],
        ]
    )
    return float(linalg.expm(generator * time)[0, 2])


def main() -> None:
    print("A new element: the two-phase (wear-in) basic event")
    print("---------------------------------------------------")
    component_a = TwoPhaseBasicEvent("A", early_rate=0.2, late_rate=2.0, wear_rate=1.0)
    component_b = TwoPhaseBasicEvent("B", early_rate=0.5, late_rate=1.5, wear_rate=0.7)
    and_gate = StaticGateBehavior(
        "Top",
        input_fire_actions=[signals.fire("A"), signals.fire("B")],
        threshold=2,
        fire_action=signals.fire("Top"),
    )
    monitor = MonitorBehavior("Top", fire_action=signals.fire("Top"))

    community = [behavior.to_ioimc() for behavior in (component_a, component_b, and_gate, monitor)]
    for model in community:
        print("  elementary model:", model.summary())

    final, stats = compositional_aggregate(community)
    print("  aggregation     :", stats.summary())

    ctmc = ctmc_from_ioimc(final)
    for time in (0.5, 1.0, 2.0):
        value = ctmc.probability_of_label("failed", time)
        expected = phase_type_cdf(0.2, 2.0, 1.0, time) * phase_type_cdf(0.5, 1.5, 0.7, time)
        print(
            f"  t={time}: unreliability = {value:.6f} "
            f"(independent phase-type product: {expected:.6f})"
        )
    print()
    print(
        "The new element needed ~30 lines; composition, aggregation and the\n"
        "CTMC analysis were reused unchanged — the extensibility the paper\n"
        "claims in Section 7."
    )


if __name__ == "__main__":
    main()
