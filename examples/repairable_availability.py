"""Repairable systems and unavailability (paper Section 7.2, Figures 13-15).

The repairable extension only changes the elementary I/O-IMC models; the
composition, aggregation and analysis machinery stays the same.  This example

* reproduces the paper's repairable AND over two repairable basic events and
  compares the steady-state unavailability against the closed form
  ``(lambda / (lambda + mu))^2``,
* analyses a slightly larger repairable plant (two production lines with pumps
  and a power feed) for both transient and long-run unavailability.

Run with::

    python examples/repairable_availability.py
"""

from __future__ import annotations

from repro import CompositionalAnalyzer
from repro.systems import repairable_and_system, repairable_plant


def main() -> None:
    failure_rate, repair_rate = 1.0, 2.0
    tree = repairable_and_system(failure_rate=failure_rate, repair_rate=repair_rate)
    print("Repairable AND (Figure 15)")
    print("--------------------------")
    analyzer = CompositionalAnalyzer(tree)
    print("Final aggregated model:", analyzer.final_ioimc.summary())
    steady = analyzer.unavailability()
    closed_form = (failure_rate / (failure_rate + repair_rate)) ** 2
    print(f"Steady-state unavailability = {steady:.6f} (closed form {closed_form:.6f})")
    for time in (0.25, 0.5, 1.0, 2.0, 5.0):
        print(f"  unavailability at t={time:>4}: {analyzer.unavailability(time):.6f}")
    print()

    print("Repairable production plant")
    print("---------------------------")
    plant = repairable_plant()
    print("Fault tree:", plant.summary())
    plant_analyzer = CompositionalAnalyzer(plant)
    print("Aggregation:", plant_analyzer.statistics.summary())
    print(f"Steady-state unavailability = {plant_analyzer.unavailability():.6f}")
    for time in (1.0, 5.0, 20.0):
        print(f"  unavailability at t={time:>4}: {plant_analyzer.unavailability(time):.6f}")


if __name__ == "__main__":
    main()
