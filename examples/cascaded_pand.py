"""The cascaded PAND system (paper Section 5.2, Figures 8-9).

This example reproduces the paper's modular-analysis argument:

* the compositional pipeline keeps every intermediate I/O-IMC tiny because the
  three AND modules are aggregated before they meet the PAND gates,
* the DIFTree-style monolithic conversion of the very same tree produces a
  Markov chain with 4113 states and 24608 transitions,
* both agree that the system unreliability at mission time 1 is 0.00135.

Run with::

    python examples/cascaded_pand.py
"""

from __future__ import annotations

from repro import CompositionalAnalyzer
from repro.baselines import MonolithicMarkovGenerator
from repro.ctmc.transient import probability_reach_label
from repro.systems import (
    CPS_PAPER_UNRELIABILITY,
    PAPER_DIFTREE_STATES,
    PAPER_DIFTREE_TRANSITIONS,
    cascaded_pand_system,
)


def main() -> None:
    tree = cascaded_pand_system()
    print("Fault tree:", tree.summary())
    print()

    print("Compositional aggregation (per composition step)")
    print("-------------------------------------------------")
    analyzer = CompositionalAnalyzer(tree)
    value = analyzer.unreliability(1.0)
    for step in analyzer.statistics.steps:
        print(
            f"  {step.left:<55} + {step.right:<20} "
            f"product {step.product_states:>4} states -> aggregated {step.reduced_states:>3}"
        )
    print()
    print("Peak intermediate:", analyzer.statistics.peak_product_states, "states /",
          analyzer.statistics.peak_product_transitions, "transitions")
    print(f"Unreliability(t=1) = {value:.6f}   (paper: {CPS_PAPER_UNRELIABILITY})")
    print()

    print("DIFTree monolithic conversion of the same tree")
    print("-----------------------------------------------")
    monolithic = MonolithicMarkovGenerator(tree).build()
    mono_value = probability_reach_label(monolithic.ctmc, "failed", 1.0)
    print(f"  {monolithic.summary()}")
    print(f"  (paper: {PAPER_DIFTREE_STATES} states / {PAPER_DIFTREE_TRANSITIONS} transitions)")
    print(f"  Unreliability(t=1) = {mono_value:.6f}")
    print()

    factor_states = monolithic.num_states / analyzer.statistics.peak_product_states
    print(
        f"State-space reduction of the compositional approach: "
        f"{factor_states:.1f}x fewer states at the peak"
    )


if __name__ == "__main__":
    main()
