"""Strong and weak bisimulation minimisation for I/O-IMC.

Aggregation — replacing an I/O-IMC by its bisimulation quotient — is what makes
the compositional approach of the paper scale: after every composition step the
intermediate model is minimised, so the state space of the product never comes
close to the monolithic Markov chain built by DIFTree.

Two equivalences are implemented:

* **Strong bisimulation** — interactive transitions must be matched step by
  step and the aggregate Markovian rate into every equivalence class must
  coincide (ordinary lumpability).  Simple, always applicable.
* **Weak bisimulation** — internal (hidden) actions are abstracted away: weak
  interactive moves (``τ* a τ*``) must be matched, and only *stable* states
  (states without internal transitions) reached via internal moves need to
  agree on their Markovian rate classes.  This is the equivalence used in the
  paper; it merges the interleaving diamonds created by hiding synchronised
  failure/activation signals and therefore reduces much more aggressively.

Three refinement engines compute each partition:

``algorithm="closure"`` (default)
    Saturation-free weak refinement: the backward tau-closure of the tau-SCC
    condensation is computed ONCE into CSR index rows (one descending-id
    sweep over the condensation DAG — tau predecessors carry larger ids, so
    every predecessor row is final when its successors fold it in), the
    saturated weak-visible in-edge relation (``τ* a τ*`` sources per target
    SCC, implicit input self-loops included) is derived from it by the same
    sweep, and the refinement then runs a *strong*-style loop over the
    precomputed predicates — no per-splitter re-closure.  Splitters are
    processed in **batched frontiers**: every round pops all currently-dirty
    blocks and rate classes, gathers their predicate rows as stacked CSR
    slices, folds them into composite codes and splits every touched block
    with vectorised :class:`~repro.ioimc.partition.RefinablePartition`
    calls.  The retained closure entries are capped linear in the number of
    SCCs (:data:`SATURATION_FACTOR`); deep tau-chains whose saturation would
    be quadratic fall back to the splitter engine (identical partitions).
    The strong path has no tau structure to saturate, so
    ``algorithm="closure"`` delegates to the splitter engine there.
``algorithm="splitter"``
    Worklist-of-splitters partition refinement on the refinable partition of
    :mod:`repro.ioimc.partition` (Paige-Tarjan / Valmari-Franceschinis style):
    one refinement step touches only the splitter block's (weak) in-edges
    instead of recomputing every state's signature.  The strong variant runs
    the full Paige-Tarjan smaller-half discipline — compound splitter
    families with per-(compound, action, state) edge counts, so only the
    smaller extracted sub-block's in-edges are ever scanned and the
    interactive refinement is O(m log n).  The weak variant first condenses
    the internal-transition graph into its tau-SCCs
    (:class:`~repro.ioimc.partition.TauCondensation`) and runs entirely on
    the condensation — tau-closures are shared per SCC, never materialised
    per state, re-derived per splitter from a bit-packed ancestor matrix
    (or a memoised BFS above :data:`_DENSE_REACH_LIMIT` SCCs).
``algorithm="signature"``
    The seed implementation: every round recomputes every state's full
    signature and splits blocks by signature equality.  Kept as the reference
    for differential testing; asymptotically slower (O(rounds × states ×
    transitions)) and, on the weak path, quadratic in memory on tau-chains
    (per-state closure frozensets).

All engines compute the *same* coarsest partition — the property tests pin
this on the paper's systems and on random DFT corpora.  The quotient
constructions preserve state labels and the analysed reliability measures;
the weak quotient is built from the tau-SCC condensation directly, so
minimise-then-quotient does the closure work exactly once.

Maximal progress should be applied *before* minimisation (the reduction
pipeline in :mod:`repro.ioimc.reduction` does so); the algorithms here work on
the transitions they are given.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ModelError
from .actions import intern_action
from .model import IOIMC
from .partition import (
    DEFAULT_RATE_DIGITS,
    RefinablePartition,
    TauCondensation,
    canonical_rate,
    refine,
)

Partition = List[FrozenSet[int]]

#: The available refinement engines.
ALGORITHMS = ("closure", "splitter", "signature")

#: The closure engine keeps at most ``max(SATURATION_FLOOR,
#: SATURATION_FACTOR * num_sccs)`` retained closure-matrix entries
#: (backward-closure rows plus saturated weak-edge rows).  The cap keeps the
#: engine's memory linear in the condensation size: saturating a deep
#: tau-chain is inherently quadratic, so models that trip the cap fall back
#: to the splitter engine (same partition, per-splitter closures).
SATURATION_FACTOR = 64
SATURATION_FLOOR = 2_000_000

#: Up to this many tau-SCCs the weak engine precomputes a bit-packed
#: backward-reachability matrix over the condensation (num_sccs^2 bits,
#: 32 MiB at the limit); larger condensations fall back to the memoised
#: per-query BFS of :class:`~repro.ioimc.partition.TauCondensation`.
_DENSE_REACH_LIMIT = 16384

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Bit masks of the MSB-first packed rows: mask of bit ``i`` within a byte.
_BIT_MASK = np.array([128, 64, 32, 16, 8, 4, 2, 1], dtype=np.uint8)

#: Per-predicate weights of the composite codes (bit per predicate).
_CODE_WEIGHTS = np.left_shift(np.int64(1), np.arange(62, dtype=np.int64))

#: Bit offsets set in each byte value, MSB-first (mirrors ``np.unpackbits``):
#: decoding a sparse packed row walks only its non-zero bytes through this
#: table instead of unpacking all ``num_sccs`` bits.
_BYTE_BITS = tuple(
    tuple(offset for offset in range(8) if byte & (0x80 >> offset))
    for byte in range(256)
)


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an int64 array.

    Replaces ``np.unique`` on the refinement hot paths: recent numpy routes
    integer ``unique`` through a hash table, which measures ~50x slower than
    an explicit sort + adjacent-dedup on the multi-hundred-k key streams of
    the batched frontier rounds (and loses the sortedness the group-boundary
    decoding needs anyway).
    """
    if values.size <= 1:
        return values
    values = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _csr_flat(offsets: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Flat positions of the CSR rows ``idx``: ``concat(range(off[i], off[i+1]))``.

    The standard repeat/cumsum trick — one vectorised expression, no Python
    loop over rows.
    """
    counts = offsets[idx + 1] - offsets[idx]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64
    cum = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) + np.repeat(
        offsets[idx] - cum + counts, counts
    )


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in ALGORITHMS:
        raise ModelError(
            f"unknown bisimulation algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )


def _canonical_partition(blocks: Sequence[FrozenSet[int]]) -> Partition:
    """Blocks ordered by smallest member — one canonical form for both engines."""
    return sorted((frozenset(block) for block in blocks), key=min)


def _initial_blocks(model: IOIMC, respect_labels: bool) -> Dict[int, int]:
    """Initial partition map: states grouped by their label sets."""
    if not respect_labels:
        return {state: 0 for state in model.states()}
    block_ids: Dict[FrozenSet[str], int] = {}
    block_of: Dict[int, int] = {}
    for state in model.states():
        labels = model.labels(state)
        if labels not in block_ids:
            block_ids[labels] = len(block_ids)
        block_of[state] = block_ids[labels]
    return block_of


def _blocks_from_map(block_of: Dict[int, int]) -> Partition:
    grouped: Dict[int, set] = {}
    for state, block in block_of.items():
        grouped.setdefault(block, set()).add(state)
    return _canonical_partition([frozenset(states) for states in grouped.values()])


def _refine_by_signature(
    block_of: Dict[int, int], signatures: Dict[int, object]
) -> Tuple[Dict[int, int], bool]:
    """Split blocks by signature; return the new map and whether it changed."""
    next_ids: Dict[Tuple[int, object], int] = {}
    new_map: Dict[int, int] = {}
    for state, old_block in block_of.items():
        key = (old_block, signatures[state])
        if key not in next_ids:
            next_ids[key] = len(next_ids)
        new_map[state] = next_ids[key]
    changed = len(next_ids) != len(set(block_of.values()))
    return new_map, changed


# ---------------------------------------------------------------------------
# strong bisimulation
# ---------------------------------------------------------------------------

def strong_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "closure",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest strong bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels) they enable the same
    actions into the same equivalence classes (implicit input self-loops
    included) and their aggregate Markovian rates into every *other* class
    coincide (ordinary lumpability).

    The strong relation has no tau structure to saturate, so
    ``algorithm="closure"`` delegates to the splitter engine.
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _strong_partition_signature(model, respect_labels, rate_digits)
    return _strong_partition_splitter(model, respect_labels, rate_digits)


def _strong_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    block_of = _initial_blocks(model, respect_labels)
    input_ids = model.signature.input_ids
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            interactive: Dict[int, set] = {}
            enabled = model.enabled_ids(state)
            for aid, target in model.interactive_pairs(state):
                interactive.setdefault(aid, set()).add(block_of[target])
            for aid in input_ids:
                if aid not in enabled:
                    interactive.setdefault(aid, set()).add(block_of[state])
            # Ordinary lumpability: rates into the state's own class are
            # irrelevant (movement inside the class does not change the class,
            # and the rates towards every other class are required to agree).
            rates: Dict[int, float] = {}
            own_block = block_of[state]
            for target, rate in model.markovian_dict(state).items():
                if block_of[target] == own_block:
                    continue
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            signatures[state] = (
                frozenset((aid, frozenset(blocks)) for aid, blocks in interactive.items()),
                frozenset(
                    (block, canonical_rate(total, rate_digits))
                    for block, total in rates.items()
                ),
            )
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


def _strong_partition_splitter(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Paige-Tarjan three-way smaller-half refinement (on states).

    The interactive relation runs the textbook Paige-Tarjan discipline: past
    splitters are grouped into *compound* families (unions of current
    blocks), and processing a compound extracts one sub-block ``B`` of at
    most half the family's size, scans **only** ``B``'s in-edges, and splits
    every predecessor block three ways — into ``B`` only, into the remainder
    ``C - B`` only, or into both.  The third way is funded by per
    ``(compound, action, state)`` edge counts (implicit input self-loops
    count as edges): a state marked for ``B`` still has an edge into the
    remainder iff its count in ``C`` exceeds its count in ``B``, so the
    larger half's in-edges are never walked.  Every state's in-edges are
    scanned only when its block is the extracted half, whose size at least
    halves each time — the O(m log n) bound of Paige and Tarjan.

    Markovian rates keep the simpler per-block worklist (both halves of a
    split re-enter): the rate predicate is function-valued and a rate round
    costs only the splitter's Markovian in-edges, which profiling shows is
    a small fraction of the interactive work on composition intermediates.
    The fixpoint — every current block processed as a rate splitter in its
    final membership, the partition stable under every compound family —
    is exactly the signature engine's equivalence.
    """
    num_states = model.num_states
    if num_states == 0:
        return []
    part = RefinablePartition(num_states)
    if respect_labels:
        part.split_by_key(0, model.labels)

    # Reverse adjacencies: everything a splitter needs is reachable from its
    # member states' in-edges.
    interactive_pred: List[List[Tuple[int, int]]] = [[] for _ in range(num_states)]
    markovian_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
    input_ids = model.signature.input_ids
    input_gaps: List[Tuple[int, ...]] = [()] * num_states
    for state in range(num_states):
        for aid, target in model.interactive_pairs(state):
            interactive_pred[target].append((aid, state))
        for target, rate in model.markovian_dict(state).items():
            markovian_pred[target].append((state, rate))
        if input_ids:
            enabled = model.enabled_ids(state)
            input_gaps[state] = tuple(aid for aid in input_ids if aid not in enabled)

    # Stability w.r.t. the universe family: states must agree on which
    # actions they can take at all.  Every state weakly has every *input*
    # action (explicitly or as an implicit self-loop), so only the enabled
    # non-input actions distinguish at this level.
    def universe_key(state: int) -> FrozenSet[int]:
        return frozenset(aid for aid in model.enabled_ids(state) if aid not in input_ids)

    for block in list(part.blocks()):
        part.split_by_key(block, universe_key)

    # Rate splitters only matter for blocks containing *targets* of Markovian
    # transitions.  Tracking that count per block (updated on every split in
    # O(moved), funded by the same edge scans that funded the split) lets
    # `register_split` skip the rate worklist entirely for rate-free blocks —
    # without it a purely interactive chain re-enqueues its O(n) remainder
    # block as a rate splitter after each of its O(n) splits and
    # `process_rates` snapshots the whole block every time, the measured
    # quadratic term on singleton-quotient chains.
    has_mpred = np.fromiter(
        (bool(markovian_pred[state]) for state in range(num_states)),
        dtype=bool,
        count=num_states,
    )
    m_count: Dict[int, int] = {}
    for block in part.blocks():
        m_count[block] = int(np.count_nonzero(has_mpred[part.member_array(block)]))

    # counts[(compound, action)][state] = number of `action`-edges from
    # `state` into the compound family (implicit input self-loops included).
    # Keyed by compound, not block: Q-splits inside a family leave them
    # valid.  The two-level layout keeps the per-edge work of a compound
    # round to plain int-keyed dict hits instead of 3-tuple hashing.
    counts: Dict[Tuple[int, int], Dict[int, int]] = {}
    for state in range(num_states):
        for aid, _target in model.interactive_pairs(state):
            per_state = counts.get((0, aid))
            if per_state is None:
                per_state = counts[(0, aid)] = {}
            per_state[state] = per_state.get(state, 0) + 1
        for aid in input_gaps[state]:
            per_state = counts.get((0, aid))
            if per_state is None:
                per_state = counts[(0, aid)] = {}
            per_state[state] = per_state.get(state, 0) + 1

    compound_of: Dict[int, int] = {block: 0 for block in part.blocks()}
    compound_blocks: List[Set[int]] = [set(part.blocks())]

    def register_split(parent: int, new_block: int, push) -> None:
        """Bookkeeping for one Q-split: compound membership + rate worklist."""
        cid = compound_of[parent]
        compound_of[new_block] = cid
        family = compound_blocks[cid]
        family.add(new_block)
        if len(family) == 2:
            push(("compound", cid))
        parent_targets = m_count[parent]
        if not parent_targets:
            # Neither half contains a Markovian target: no rate vector can
            # reference this split, skip the rate worklist.
            m_count[new_block] = 0
            return
        if part.size(new_block) < 32:
            moved = sum(1 for state in part.members(new_block) if has_mpred[state])
        else:
            moved = int(np.count_nonzero(has_mpred[part.member_array(new_block)]))
        m_count[new_block] = moved
        m_count[parent] = parent_targets - moved
        if parent_targets > moved:
            push(("rates", parent))
        if moved:
            push(("rates", new_block))

    def process_compound(cid: int, push) -> None:
        family = compound_blocks[cid]
        if len(family) < 2:
            return  # family already drained by earlier processings
        iterator = iter(family)
        first, second = next(iterator), next(iterator)
        small = first if part.size(first) <= part.size(second) else second
        family.discard(small)
        new_cid = len(compound_blocks)
        compound_blocks.append({small})
        compound_of[small] = new_cid
        if len(family) >= 2:
            push(("compound", cid))

        # Scan only the extracted half's in-edges, bucketing per action.
        buckets: Dict[int, Dict[int, int]] = {}
        for target in part.members(small):
            for aid, source in interactive_pred[target]:
                per_source = buckets.setdefault(aid, {})
                per_source[source] = per_source.get(source, 0) + 1
            for aid in input_gaps[target]:
                per_source = buckets.setdefault(aid, {})
                per_source[target] = per_source.get(target, 0) + 1
        for aid, into_small in buckets.items():
            # Move the scanned edges' counts from the old family to the new
            # singleton family; what remains keyed on `cid` counts edges into
            # the remainder.
            counts[(new_cid, aid)] = into_small
            remainder = counts[(cid, aid)]
            for source, edge_count in into_small.items():
                remaining = remainder.pop(source) - edge_count
                if remaining:
                    remainder[source] = remaining
            if not remainder:
                # Every counted edge went into `small`: nothing points at
                # the remainder, so the three-way key below is constant.
                del counts[(cid, aid)]

            part.mark_all(list(into_small), assume_unique=True)
            if not remainder:
                for marked, rest in part.split_marked():
                    if rest >= 0:
                        register_split(rest, marked, push)
                continue
            for marked, rest in part.split_marked():
                if rest >= 0:
                    register_split(rest, marked, push)
                # Three-way: the marked part (edges into `small`) still
                # splits by "also has edges into the remainder".
                created = part.split_by_key(
                    marked, lambda source: source in remainder
                )
                for block in created:
                    register_split(marked, block, push)

    def process_rates(splitter: int, push) -> None:
        # Aggregate each predecessor's rate into the splitter and split the
        # touched blocks by the canonical rate value.  Rates from states
        # inside the splitter are skipped — ordinary lumpability does not
        # constrain movement within a class (the signature engine skips the
        # own-block rates for the same reason).
        states = part.members(splitter)  # snapshot: valid across splits
        splitter_set = set(states)
        weights: Dict[int, float] = {}
        for target in states:
            for source, rate in markovian_pred[target]:
                if source in splitter_set:
                    continue
                weights[source] = weights.get(source, 0.0) + rate
        if not weights:
            return
        part.mark_all(list(weights), assume_unique=True)

        def rate_key(source: int) -> float:
            return canonical_rate(weights[source], rate_digits)

        for marked, rest in part.split_marked():
            # The marked part holds exactly the positive-weight states of one
            # former block; subdivide it further by rate value.
            if rest >= 0:
                register_split(rest, marked, push)
            created = part.split_by_key(marked, rate_key)
            for block in created:
                register_split(marked, block, push)

    def process(splitter, push) -> None:
        kind, index = splitter
        if kind == "compound":
            process_compound(index, push)
        else:
            process_rates(index, push)

    seeds: List[Tuple[str, int]] = []
    if len(compound_blocks[0]) >= 2:
        seeds.append(("compound", 0))
    seeds.extend(("rates", block) for block in part.blocks() if m_count[block])
    refine(seeds, process)
    return part.as_sets()


# ---------------------------------------------------------------------------
# weak bisimulation
# ---------------------------------------------------------------------------

def _internal_closure(model: IOIMC) -> List[FrozenSet[int]]:
    """Per-state tau-closure frozensets — **signature reference engine only**.

    The splitter engine never calls this: it shares closure information per
    tau-SCC via :class:`~repro.ioimc.partition.TauCondensation`, which keeps
    the weak path linear in states + transitions where these frozensets are
    quadratic on tau-chains.
    """
    closures: List[FrozenSet[int]] = []
    internal_succ = [model.internal_successors(state) for state in model.states()]
    for start in model.states():
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in internal_succ[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        closures.append(frozenset(seen))
    return closures


def _weak_visible_reach(
    model: IOIMC, closures: Sequence[FrozenSet[int]]
) -> List[Dict[int, FrozenSet[int]]]:
    """Per-state ``τ* a τ*`` reach sets — **signature reference engine only**.

    Implicit input self-loops are taken into account: a state that has no
    explicit transition for an input action can still (weakly) perform it and
    stay (modulo trailing internal moves).
    """
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    reach: List[Dict[int, FrozenSet[int]]] = []
    for state in model.states():
        per_action: Dict[int, set] = {}
        for mid in closures[state]:
            enabled = model.enabled_ids(mid)
            for aid, target in model.interactive_pairs(mid):
                if aid in internal_ids:
                    continue
                per_action.setdefault(aid, set()).update(closures[target])
            for aid in input_ids:
                if aid not in enabled:
                    per_action.setdefault(aid, set()).update(closures[mid])
        reach.append({aid: frozenset(states) for aid, states in per_action.items()})
    return reach


def weak_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "closure",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest weak bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels)

    * for every visible action, the classes reachable via a weak move
      (``τ* a τ*``, implicit input self-loops included) coincide,
    * the classes reachable via internal moves alone coincide,
    * the sets of canonical Markovian rate vectors of the *stable* states
      reachable via internal moves coincide (maximal progress means only
      those states can let time pass).
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _weak_partition_signature(model, respect_labels, rate_digits)
    if _has_no_internal_transitions(model):
        # Without internal moves every tau-closure is a singleton and every
        # state is stable: weak and strong bisimulation coincide, and the
        # strong splitter avoids the condensation and rate-class machinery.
        return _strong_partition_splitter(model, respect_labels, rate_digits)
    return _weak_engine(model, respect_labels, rate_digits, algorithm).state_partition()


def _weak_engine(
    model: IOIMC, respect_labels: bool, rate_digits: int, algorithm: str
) -> "_WeakEngineBase":
    """The weak engine for ``algorithm`` (never ``"signature"``).

    The closure engine refuses models whose saturated weak relation would be
    superlinear in the condensation size (deep tau-chains); those fall back
    to the splitter engine, which computes the identical partition from
    per-splitter closures.
    """
    if algorithm == "closure":
        try:
            return _WeakClosureEngine(model, respect_labels, rate_digits)
        except _SaturationOverflow:
            pass
    return _WeakSplitterEngine(model, respect_labels, rate_digits)


def _has_no_internal_transitions(model: IOIMC) -> bool:
    internal_mask = model.signature.internal_mask
    if not internal_mask:
        return True
    return not any(model.enabled_mask(state) & internal_mask for state in model.states())


def _weak_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    closures = _internal_closure(model)
    visible_reach = _weak_visible_reach(model, closures)
    stable = [model.is_stable(state) for state in model.states()]

    block_of = _initial_blocks(model, respect_labels)
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            visible_sig = frozenset(
                (action, frozenset(block_of[target] for target in targets))
                for action, targets in visible_reach[state].items()
            )
            tau_sig = frozenset(block_of[target] for target in closures[state])
            rate_vectors = set()
            for target in closures[state]:
                if not stable[target]:
                    continue
                rates: Dict[int, float] = {}
                own_block = block_of[target]
                for succ, rate in model.markovian_dict(target).items():
                    if block_of[succ] == own_block:
                        continue  # ordinary lumpability: ignore intra-class rates
                    rates[block_of[succ]] = rates.get(block_of[succ], 0.0) + rate
                rate_vectors.add(
                    frozenset(
                        (block, canonical_rate(total, rate_digits))
                        for block, total in rates.items()
                    )
                )
            signatures[state] = (visible_sig, tau_sig, frozenset(rate_vectors))
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


class _WeakEngineBase:
    """Shared structure of the splitter- and closure-based weak engines.

    The refinement works on *units* — the states of one tau-SCC sharing one
    label set.  All states of a unit are trivially weakly bisimilar (they
    tau-reach each other), so units are the finest granularity a split can
    ever need; on tau-heavy fused products they are far fewer than states.

    Splitters come in two kinds:

    * a partition block ``B``: split every block by "can tau-reach ``B``"
      and, per visible action ``a``, by "can weakly do ``a`` into ``B``"
      (implicit input self-loops included);
    * a Markovian *rate class* (stable states with equal canonical rate
      vectors): split every block by "can tau-reach a member of the class".

    When a block splits, the rate vectors of the stable states pointing into
    the moved states (and of the moved/remaining stable states themselves,
    whose own-class exclusion changed) are recomputed and re-bucketed; every
    class whose membership changed re-enters the worklist.  The fixpoint is
    stable under all three predicate families, which is exactly the
    signature engine's equivalence.  Subclasses implement :meth:`_run`; how
    the splitter predicates are derived and scheduled is what distinguishes
    the engines (per-splitter closure sweeps vs precomputed saturation with
    batched frontier rounds).
    """

    def __init__(self, model: IOIMC, respect_labels: bool, rate_digits: int):
        self.model = model
        self.rate_digits = rate_digits
        self.condensation = TauCondensation(model)
        cond = self.condensation
        num_states = model.num_states
        num_sccs = cond.num_sccs

        # ---- units: (SCC, label set) groups ------------------------------
        self.unit_of_state: List[int] = [0] * num_states
        self.unit_states: List[List[int]] = []
        self.unit_scc: List[int] = []
        self.unit_labels: List[FrozenSet[str]] = []
        self.scc_units: List[List[int]] = [[] for _ in range(num_sccs)]
        model_labels = model._labels
        for scc in range(num_sccs):
            members = cond.members[scc]
            if not respect_labels:
                ordered = [(model_labels[members[0]], list(members))]
            elif len(members) == 1:
                # Singleton SCC (the common case on bushy products): exactly
                # one unit, no grouping dict needed.
                ordered = [(model_labels[members[0]], list(members))]
            else:
                groups: Dict[FrozenSet[str], List[int]] = {}
                for state in members:
                    groups.setdefault(model_labels[state], []).append(state)
                ordered = sorted(groups.items(), key=lambda item: min(item[1]))
            for labels, states in ordered:
                unit = len(self.unit_states)
                self.unit_states.append(states)
                self.unit_scc.append(scc)
                self.unit_labels.append(labels)
                self.scc_units[scc].append(unit)
                for state in states:
                    self.unit_of_state[state] = unit

        # ---- static per-SCC indexes --------------------------------------
        input_ids = model.signature.input_ids
        #: Stable Markovian predecessors per state (only stable states carry
        #: rate vectors in the weak signature).
        self.stable_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
        scc_of = cond.scc_of
        input_id_list = sorted(input_ids)
        internal_mask = model.signature.internal_mask
        enabled_mask = model.enabled_mask
        itrans = model._itrans
        mtrans = model._mtrans
        input_mask = model.signature.input_mask
        vec_gaps = bool(input_id_list) and input_id_list[-1] < 63
        vis_dst: List[int] = []
        vis_aid: List[int] = []
        vis_src: List[int] = []
        imask_vals: List[int] = []
        gap_keys: List[int] = []
        aid_bound = input_id_list[-1] + 1 if input_id_list else 1
        stable_flags = bytearray(num_states)
        for state in range(num_states):
            scc = scc_of[state]
            for aid, target in itrans[state]:
                if (internal_mask >> aid) & 1:
                    continue
                vis_dst.append(scc_of[target])
                vis_aid.append(aid)
                vis_src.append(scc)
            mask = enabled_mask(state)
            if vec_gaps:
                imask_vals.append(mask & input_mask)
            else:
                for aid in input_id_list:
                    if not (mask >> aid) & 1:
                        gap_keys.append(scc * aid_bound + aid)
            if not mask & internal_mask:  # stable state
                stable_flags[state] = 1
                for target, rate in mtrans[state].items():
                    self.stable_pred[target].append((state, rate))
        self.unit_stable: List[bool] = [
            all(stable_flags[state] for state in states)
            for states in self.unit_states
        ]
        #: Per-state stability flags, handed to the quotient builder so it
        #: skips its own transition walk.
        self._stable_flags = stable_flags

        # Input gaps — input actions some member of the SCC has no explicit
        # transition for (those members carry an implicit weak self-loop) —
        # are detected with one vectorised bit-test per input action over
        # the states' input-restricted masks and kept as one (scc, action)
        # CSR sorted by (SCC, action id).
        scc_arr = np.fromiter(scc_of, dtype=np.int64, count=num_states)
        gap_parts: List[np.ndarray] = []
        if vec_gaps:
            imask_arr = np.fromiter(imask_vals, dtype=np.int64, count=num_states)
            for aid in input_id_list:
                missing = np.flatnonzero(~(imask_arr >> aid) & 1)
                if missing.size:
                    gap_parts.append(scc_arr[missing] * aid_bound + aid)
        elif gap_keys:
            gap_parts.append(np.asarray(gap_keys, dtype=np.int64))
        #: Per-SCC tuples of gap action ids (ascending), plus the same data
        #: as flat CSR arrays for the vectorised engines.
        self.input_gaps: List[Tuple[int, ...]] = [()] * num_sccs
        if gap_parts:
            keys = _sorted_unique(np.concatenate(gap_parts))
            self._gap_scc = keys // aid_bound
            self._gap_aid = keys - self._gap_scc * aid_bound
            gap_counts = np.bincount(self._gap_scc, minlength=num_sccs)
            self._gap_off = np.concatenate(([0], np.cumsum(gap_counts)))
            gap_aid_l = self._gap_aid.tolist()
            gap_off_l = self._gap_off.tolist()
            for scc in np.flatnonzero(gap_counts).tolist():
                self.input_gaps[scc] = tuple(
                    gap_aid_l[gap_off_l[scc] : gap_off_l[scc + 1]]
                )
        else:
            self._gap_scc = _EMPTY_I64
            self._gap_aid = _EMPTY_I64
            self._gap_off = np.zeros(num_sccs + 1, dtype=np.int64)

        # Visible in-edges as one flat CSR keyed by target SCC, deduplicated
        # by (target, source, action) with a lexsort — both engines consume
        # stacked row gathers of this, so the per-SCC tuple sets of the
        # original design never materialise.
        if vis_dst:
            dst = np.asarray(vis_dst, dtype=np.int64)
            aid = np.asarray(vis_aid, dtype=np.int64)
            src = np.asarray(vis_src, dtype=np.int64)
            order = np.lexsort((aid, src, dst))
            dst, aid, src = dst[order], aid[order], src[order]
            keep = np.ones(dst.size, dtype=bool)
            keep[1:] = (
                (dst[1:] != dst[:-1]) | (src[1:] != src[:-1]) | (aid[1:] != aid[:-1])
            )
            dst, aid, src = dst[keep], aid[keep], src[keep]
            counts = np.bincount(dst, minlength=num_sccs)
        else:
            aid = src = _EMPTY_I64
            counts = np.zeros(num_sccs, dtype=np.int64)
        #: Flat visible in-edge arrays: the in-edges of SCC ``t`` are the
        #: ``(action, source SCC)`` pairs in rows ``_vis_off[t]:_vis_off[t+1]``.
        self._vis_aid = aid
        self._vis_src = src
        self._vis_off = np.concatenate(([0], np.cumsum(counts)))

        # Units are created in ascending-SCC order, so the units of SCC `s`
        # are exactly the contiguous id range [_unit_off[s], _unit_off[s+1]).
        unit_counts = np.zeros(num_sccs + 1, dtype=np.int64)
        for scc, units in enumerate(self.scc_units):
            unit_counts[scc + 1] = len(units)
        self._unit_off = np.cumsum(unit_counts)
        self._unit_scc_arr = np.asarray(self.unit_scc, dtype=np.int64)
        #: Scratch: composite predicate code per unit, valid for the units
        #: scattered during the current mark/split round only.
        self._unit_code = np.zeros(len(self.unit_states), dtype=np.int64)

        # ---- partition over units ----------------------------------------
        self.part = RefinablePartition(len(self.unit_states))
        if respect_labels and self.part.num_elements:
            self.part.split_by_key(0, lambda unit: self.unit_labels[unit])

        # ---- rate classes over stable units ------------------------------
        self.class_of: Dict[int, int] = {}
        self.class_members: List[Set[int]] = []
        self.class_by_key: Dict[FrozenSet[Tuple[int, float]], int] = {}
        #: Stable units whose rate vector may be stale (re-bucketed in batch
        #: when the next rate-class splitter is processed).
        self._dirty: Set[int] = set()
        for unit, stable in enumerate(self.unit_stable):
            if stable:
                self._assign_rate_class(unit)

        self._refined = False

    # ------------------------------------------------------------ rate classes
    def _vector_key(self, unit: int) -> FrozenSet[Tuple[int, float]]:
        """Canonical rate vector of a stable unit under the current partition."""
        state = self.unit_states[unit][0]  # stable units are singletons
        own_block = self.part.block_of(unit)
        rates: Dict[int, float] = {}
        for target, rate in self.model.markovian_dict(state).items():
            block = self.part.block_of(self.unit_of_state[target])
            if block == own_block:
                continue  # ordinary lumpability: ignore intra-class rates
            rates[block] = rates.get(block, 0.0) + rate
        return frozenset(
            (block, canonical_rate(total, self.rate_digits))
            for block, total in rates.items()
        )

    def _assign_rate_class(self, unit: int) -> Optional[Tuple[int, ...]]:
        """(Re)bucket a stable unit by rate vector; return the changed classes."""
        key = self._vector_key(unit)
        new_class = self.class_by_key.get(key)
        if new_class is None:
            new_class = len(self.class_members)
            self.class_members.append(set())
            self.class_by_key[key] = new_class
        old_class = self.class_of.get(unit)
        if old_class == new_class:
            return None
        self.class_of[unit] = new_class
        self.class_members[new_class].add(unit)
        if old_class is None:
            return (new_class,)
        self.class_members[old_class].discard(unit)
        return (old_class, new_class)

    # ---------------------------------------------------------------- refining
    def _track_dirty(self, moved: List[int], push) -> None:
        """Queue rate-vector re-bucketing after the pieces in ``moved`` split off.

        Exactly the rate vectors referencing the moved states change: their
        stable Markovian predecessors (wherever those live — this covers
        stable units left behind in the id-keeping remainder with rates into
        a moved piece), plus the moved stable units themselves (their
        own-class exclusion now ends at the new block boundary).  They are
        re-bucketed lazily, in batch, when the next rate-class splitter is
        dequeued.
        """
        part = self.part
        dirty = self._dirty
        freshly_dirty = []
        for piece in moved:
            for unit in part.members(piece):
                if self.unit_stable[unit] and unit not in dirty:
                    dirty.add(unit)
                    freshly_dirty.append(unit)
                for state in self.unit_states[unit]:
                    for source, _rate in self.stable_pred[state]:
                        source_unit = self.unit_of_state[source]
                        if source_unit not in dirty:
                            dirty.add(source_unit)
                            freshly_dirty.append(source_unit)
        for unit in freshly_dirty:
            push(("rates", self.class_of[unit]))

    #: Composite codes carry one predicate per bit of an int64 scatter
    #: buffer; splitters with more predicates fall back to sequential
    #: chunks (equivalent refinement, one extra mark/split round per chunk).
    _CODE_BITS = 62

    #: A splitter whose packed tau-closure has at most this many non-zero
    #: bytes takes the scalar path: dict/set bookkeeping beats the
    #: vectorised gather pipeline's fixed per-call numpy overhead on the
    #: small closures that dominate refinement of bushy products, while
    #: deep tau-chains (large closures) keep the vectorised path.
    _SPARSE_BYTES = 48

    def _finish_binary(self, push) -> None:
        """Split every touched block into marked/unmarked and re-enqueue."""
        for marked, rest in self.part.split_marked():
            if rest < 0:
                continue  # the whole block satisfied the predicate
            push(("block", marked))
            push(("block", rest))
            self._track_dirty([marked], push)

    def _finish_codes(self, key_of, push) -> None:
        """Split every touched block by its members' codes and re-enqueue.

        Splitting each dirty block by its members' composite codes is
        equivalent to splitting by each predicate in sequence — both reach
        the common refinement and every created piece is re-enqueued — but
        costs a single mark/split cycle per splitter instead of one per
        predicate.
        """
        part = self.part
        for marked, rest in part.split_marked():
            created = part.split_by_key(marked, key_of)
            if rest < 0:
                if not created:
                    continue  # uniform codes across the whole block
                pieces = [marked, *created]
                moved = created
            else:
                pieces = [rest, marked, *created]
                moved = [marked, *created]
            for piece in pieces:
                push(("block", piece))
            self._track_dirty(moved, push)

    def _apply_binary(self, sccs: np.ndarray, push) -> None:
        """Split every block by membership in the single predicate ``sccs``."""
        units = _csr_flat(self._unit_off, sccs)
        if units.size:
            self.part.mark_all(units, assume_unique=True)
            self._finish_binary(push)

    def _scatter_and_split(self, sccs: np.ndarray, codes: np.ndarray, push) -> None:
        """One vectorised mark/split round over the touched SCCs and codes."""
        part = self.part
        unit_off = self._unit_off
        units = _csr_flat(unit_off, sccs)
        if not units.size:
            return
        counts = unit_off[sccs + 1] - unit_off[sccs]
        unit_code = self._unit_code
        unit_code[units] = np.repeat(codes, counts)
        part.mark_all(units, assume_unique=True)
        self._finish_codes(unit_code.__getitem__, push)

    def _apply_codes(self, predicates: List[np.ndarray], push) -> None:
        """Fold closure index-array ``predicates`` into codes and split."""
        for begin in range(0, len(predicates), self._CODE_BITS):
            chunk = predicates[begin : begin + self._CODE_BITS]
            if len(chunk) == 1:
                self._apply_binary(chunk[0], push)
                continue
            idx = np.concatenate(chunk)
            if not idx.size:
                continue
            bits = np.concatenate(
                [
                    np.full(pred.size, 1 << position, dtype=np.int64)
                    for position, pred in enumerate(chunk)
                ]
            )
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            bits = bits[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(idx[1:] != idx[:-1]) + 1)
            )
            self._scatter_and_split(
                idx[starts], np.bitwise_or.reduceat(bits, starts), push
            )

    def _flush_dirty(self, push) -> None:
        """Re-bucket every stale stable unit; re-enqueue the changed classes."""
        for unit in self._dirty:
            changed = self._assign_rate_class(unit)
            if changed:
                for rate_class in changed:
                    push(("rates", rate_class))
        self._dirty.clear()

    def _run(self) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    # ----------------------------------------------------------------- results
    def state_partition(self) -> Partition:
        self._run()
        blocks = [
            frozenset(
                state
                for unit in self.part.members(block)
                for state in self.unit_states[unit]
            )
            for block in self.part.blocks()
        ]
        return _canonical_partition(blocks)

    def quotient(self, name: Optional[str] = None) -> IOIMC:
        return _build_weak_quotient(
            self.model,
            self.condensation,
            self.state_partition(),
            name,
            precomputed=(
                self._vis_src,
                self._vis_aid,
                self._vis_off,
                self._gap_scc,
                self._gap_aid,
                self._stable_flags,
            ),
        )


class _WeakSplitterEngine(_WeakEngineBase):
    """Worklist-of-splitters weak engine (the PR 6 design).

    One splitter is processed per worklist iteration; its predicates — the
    backward tau-closure of the splitter's SCCs and, per visible action, the
    weak in-edge sources of that closure — are re-derived on every round
    from a bit-packed backward-reachability matrix over the condensation
    (``num_sccs^2`` bits, built once; above :data:`_DENSE_REACH_LIMIT` SCCs
    a memoised per-query BFS takes over).  Kept both as the fallback for
    models whose saturated weak relation would be superlinear (the closure
    engine's cap) and for differential testing against the closure engine.
    """

    def __init__(self, model: IOIMC, respect_labels: bool, rate_digits: int):
        super().__init__(model, respect_labels, rate_digits)
        cond = self.condensation
        num_sccs = cond.num_sccs
        # Visible in-edges grouped by target SCC: the base class already
        # keeps them as one deduplicated flat (aid, source) CSR, so "all
        # in-edges of a closure" is a single repeat/cumsum gather instead of
        # a Python loop over SCCs.  The scalar sparse path below walks plain
        # Python lists of the same rows — no numpy scalar boxing.
        self._edge_aid = self._vis_aid
        self._edge_src = self._vis_src
        self._edge_off = self._vis_off
        self._edge_aid_l = self._vis_aid.tolist()
        self._edge_src_l = self._vis_src.tolist()
        self._edge_off_l = self._vis_off.tolist()
        # Input gaps arrive from the base class in the same layout (the
        # "source" of a gap edge is the SCC itself — the implicit input
        # self-loop): ``_gap_aid``/``_gap_scc``/``_gap_off``.
        # Exclusive upper bound on the action ids above (the boolean
        # dedup/group scatter of the vectorised path is (bound, num_sccs)).
        top = 0
        if self._edge_aid.size:
            top = int(self._edge_aid.max()) + 1
        if self._gap_aid.size:
            top = max(top, int(self._gap_aid.max()) + 1)
        self._aid_bound = top
        # Dense backward tau-reachability: bit-packed row `s` holds the SCCs
        # that tau-reach `s` (uint8 words, MSB-first to match `unpackbits`).
        # One descending-id sweep (predecessors carry larger ids) ORs each
        # predecessor row in place, so every later closure query is a word-OR
        # reduction plus one `unpackbits` instead of a Python BFS.  Memory is
        # num_sccs^2 *bits*; above the limit the engine falls back to the
        # memoised BFS on the condensation.
        self._ancestors: Optional[np.ndarray] = None
        if 0 < num_sccs <= _DENSE_REACH_LIMIT:
            width = (num_sccs + 7) >> 3
            ancestors = np.zeros((num_sccs, width), dtype=np.uint8)
            for scc in range(num_sccs - 1, -1, -1):
                row = ancestors[scc]
                row[scc >> 3] |= 0x80 >> (scc & 7)
                for predecessor in cond.tau_pred[scc]:
                    row |= ancestors[predecessor]
            self._ancestors = ancestors

    #: A splitter whose packed tau-closure has at most this many non-zero
    #: bytes takes the scalar path: dict/set bookkeeping beats the
    #: vectorised gather pipeline's fixed per-call numpy overhead on the
    #: small closures that dominate refinement of bushy products, while
    #: deep tau-chains (large closures) keep the vectorised path.
    _SPARSE_BYTES = 48

    def _closure_idx(self, seeds) -> np.ndarray:
        """Backward tau-closure of the seed SCCs as an index array."""
        ancestors = self._ancestors
        if ancestors is not None:
            seed_list = seeds if isinstance(seeds, np.ndarray) else list(seeds)
            if len(seed_list) == 1:
                packed = ancestors[int(seed_list[0])]
            else:
                packed = np.bitwise_or.reduce(ancestors[seed_list], axis=0)
            bits = np.unpackbits(packed, count=self.condensation.num_sccs)
            return np.flatnonzero(bits)
        closure = self.condensation.backward_closure_cached(
            seeds if isinstance(seeds, frozenset) else frozenset(int(s) for s in seeds)
        )
        return np.fromiter(closure, dtype=np.int64, count=len(closure))

    def _or_rows(self, ids: List[int]) -> np.ndarray:
        """OR of the packed ancestor rows ``ids`` (chained ``|`` for small
        sets — ``ufunc.reduce`` carries ~10x the fixed overhead there)."""
        ancestors = self._ancestors
        if len(ids) == 1:
            return ancestors[ids[0]]
        if len(ids) <= 8:
            acc = ancestors[ids[0]] | ancestors[ids[1]]
            for scc in ids[2:]:
                acc |= ancestors[scc]
            return acc
        return np.bitwise_or.reduce(ancestors[ids], axis=0)

    @staticmethod
    def _decode(packed: np.ndarray, nzb: np.ndarray) -> List[int]:
        """Set bits of a packed row as a sorted id list (sparse byte walk)."""
        out: List[int] = []
        extend = out.extend
        for base, byte in zip((nzb << 3).tolist(), packed[nzb].tolist()):
            extend(base + offset for offset in _BYTE_BITS[byte])
        return out

    def _apply_binary_seq(self, reach, push) -> None:
        """Binary split by a small iterable of closure SCCs (scalar marks)."""
        mark = self.part.mark
        scc_units = self.scc_units
        for scc in reach:
            for unit in scc_units[scc]:
                mark(unit)
        self._finish_binary(push)

    def _process_sparse(self, reach: List[int], push) -> None:
        """Scalar path for splitters with small tau-closures.

        Builds the visible-action predicates with dict/set bookkeeping and
        marks units one by one — on the ~tens-of-SCCs closures that dominate
        refinement this beats the vectorised pipeline's fixed numpy call
        overhead — then runs the same composite-code mark/split rounds as
        the dense path.
        """
        edge_aid = self._edge_aid_l
        edge_src = self._edge_src_l
        edge_off = self._edge_off_l
        input_gaps = self.input_gaps
        buckets: Dict[int, Set[int]] = {}
        for scc in reach:
            for position in range(edge_off[scc], edge_off[scc + 1]):
                aid = edge_aid[position]
                source = edge_src[position]
                bucket = buckets.get(aid)
                if bucket is None:
                    buckets[aid] = {source}
                else:
                    bucket.add(source)
            for aid in input_gaps[scc]:
                bucket = buckets.get(aid)
                if bucket is None:
                    buckets[aid] = {scc}
                else:
                    bucket.add(scc)
        if not buckets:
            self._apply_binary_seq(reach, push)
            return
        predicates: List[List[int]] = [reach]
        for sources in buckets.values():
            packed = self._or_rows(list(sources))
            predicates.append(self._decode(packed, packed.nonzero()[0]))
        mark = self.part.mark
        scc_units = self.scc_units
        for begin in range(0, len(predicates), self._CODE_BITS):
            chunk = predicates[begin : begin + self._CODE_BITS]
            if len(chunk) == 1:
                self._apply_binary_seq(chunk[0], push)
                continue
            codes: Dict[int, int] = {}
            get = codes.get
            bit = 1
            for predicate in chunk:
                for scc in predicate:
                    codes[scc] = get(scc, 0) | bit
                bit <<= 1
            unit_code: Dict[int, int] = {}
            for scc, value in codes.items():
                for unit in scc_units[scc]:
                    mark(unit)
                    unit_code[unit] = value
            self._finish_codes(unit_code.__getitem__, push)

    def _process(self, splitter, push) -> None:
        kind, index = splitter
        ancestors = self._ancestors
        if kind == "rates":
            self._flush_dirty(push)
            members = self.class_members[index]
            if not members:
                return  # class emptied by re-bucketing
            seeds = {self.unit_scc[unit] for unit in members}
            if ancestors is None:
                self._apply_binary(self._closure_idx(frozenset(seeds)), push)
                return
            packed = self._or_rows(list(seeds))
            nzb = packed.nonzero()[0]
            if nzb.size <= self._SPARSE_BYTES:
                self._apply_binary_seq(self._decode(packed, nzb), push)
            else:
                self._apply_binary(
                    np.flatnonzero(
                        np.unpackbits(packed, count=self.condensation.num_sccs)
                    ),
                    push,
                )
            return

        units = self.part.members(index)  # snapshot
        # tau predicate (first entry): can reach the splitter via internal
        # moves alone.  Visible predicates (one per action): a weak `a` move
        # into the splitter is an `a` transition whose target tau-reaches the
        # splitter, taken from any state that tau-reaches the transition's
        # source; implicit input self-loops contribute the gap SCCs inside
        # the reach themselves.
        num_sccs = self.condensation.num_sccs
        if ancestors is None:
            self._process_fallback(units, push)
            return
        if len(units) == 1:
            tau_packed = ancestors[self.unit_scc[units[0]]]
        elif len(units) <= 8:
            tau_packed = self._or_rows([self.unit_scc[unit] for unit in units])
        else:
            tau_packed = np.bitwise_or.reduce(
                ancestors[self._unit_scc_arr[units]], axis=0
            )
        nzb = tau_packed.nonzero()[0]
        if nzb.size <= self._SPARSE_BYTES:
            self._process_sparse(self._decode(tau_packed, nzb), push)
            return
        # Vectorised path for large closures (deep tau structure): the CSR
        # gathers pull every in-edge of the closure in one shot, a stable
        # argsort groups them by action, and the packed ancestor rows are
        # OR-reduced per group (2-D ``reduceat`` is pathologically slow
        # here, a per-group ``reduce`` over the contiguous gather is not);
        # membership is then tested only on the SCCs of the union, so no
        # predicate pays an O(num_sccs) scan of its own.
        reach = np.flatnonzero(np.unpackbits(tau_packed, count=num_sccs))
        flat = _csr_flat(self._edge_off, reach)
        aids = self._edge_aid[flat]
        sources = self._edge_src[flat]
        gap_flat = _csr_flat(self._gap_off, reach)
        if gap_flat.size:
            aids = np.concatenate([aids, self._gap_aid[gap_flat]])
            sources = np.concatenate([sources, self._gap_scc[gap_flat]])
        if not aids.size:
            self._apply_binary(reach, push)
            return
        # Dedup + group by action via one boolean scatter — a hash-based
        # `np.unique` on a combined key is far slower on the big splitters
        # that reach this path, and the same source feeds many closure
        # targets, so every duplicate would gather a full ancestor row in
        # the per-group OR below.
        seen = np.zeros((self._aid_bound, num_sccs), dtype=bool)
        seen[aids, sources] = True
        groups = np.flatnonzero(seen.any(axis=1))
        group_packed = np.empty((groups.size, ancestors.shape[1]), dtype=np.uint8)
        for position, aid in enumerate(groups.tolist()):
            srcs = seen[aid].nonzero()[0]
            if srcs.size == 1:
                group_packed[position] = ancestors[srcs[0]]
            else:
                np.bitwise_or.reduce(
                    ancestors[srcs], axis=0, out=group_packed[position]
                )
        all_packed = np.concatenate([tau_packed[None, :], group_packed], axis=0)
        for begin in range(0, all_packed.shape[0], self._CODE_BITS):
            chunk = all_packed[begin : begin + self._CODE_BITS]
            if chunk.shape[0] == 1:
                self._apply_binary(
                    np.flatnonzero(np.unpackbits(chunk[0], count=num_sccs)), push
                )
                continue
            union = np.bitwise_or.reduce(chunk, axis=0)
            touched = np.flatnonzero(np.unpackbits(union, count=num_sccs))
            membership = (chunk[:, touched >> 3] & _BIT_MASK[touched & 7]) != 0
            codes = _CODE_WEIGHTS[: chunk.shape[0]] @ membership
            self._scatter_and_split(touched, codes, push)

    def _process_fallback(self, units: List[int], push) -> None:
        """Block-splitter path when the packed reach matrix is unavailable
        (models above ``_DENSE_REACH_LIMIT``): memoised BFS closures per
        (action, sources) group, folded into composite codes."""
        num_sccs = self.condensation.num_sccs
        seeds = frozenset(self.unit_scc[unit] for unit in units)
        reach = self._closure_idx(seeds)
        flat = _csr_flat(self._edge_off, reach)
        aids = self._edge_aid[flat]
        sources = self._edge_src[flat]
        gap_flat = _csr_flat(self._gap_off, reach)
        if gap_flat.size:
            aids = np.concatenate([aids, self._gap_aid[gap_flat]])
            sources = np.concatenate([sources, self._gap_scc[gap_flat]])
        if not aids.size:
            self._apply_binary(reach, push)
            return
        key = np.unique(aids * num_sccs + sources)
        group_src = key % num_sccs
        group_aid = key // num_sccs
        starts = np.concatenate(
            ([0], np.flatnonzero(group_aid[1:] != group_aid[:-1]) + 1)
        )
        predicates = [reach]
        bounds = [*starts.tolist(), key.size]
        for position in range(len(bounds) - 1):
            group = group_src[bounds[position] : bounds[position + 1]]
            predicates.append(self._closure_idx(group))
        self._apply_codes(predicates, push)

    def _run(self) -> None:
        if self._refined:
            return
        splitters = [("block", block) for block in self.part.blocks()]
        splitters.extend(("rates", index) for index in range(len(self.class_members)))
        refine(splitters, self._process)
        self._refined = True


class _SaturationOverflow(Exception):
    """The saturated weak relation exceeded the closure engine's linear cap."""


class _WeakClosureEngine(_WeakEngineBase):
    """Closure-then-strong weak engine with batched-frontier refinement.

    Saturation happens exactly once, at construction: a descending-id sweep
    over the condensation DAG (tau predecessors carry larger SCC ids, so
    every predecessor row is final when a successor folds it in)
    materialises, per SCC,

    * its backward tau-closure — the SCCs that tau-reach it — and
    * its saturated weak-visible in-edges: every ``(action, source SCC)``
      pair whose source weakly performs the action into the SCC
      (``τ* a τ*``: direct in-edges with backward-closed sources, implicit
      input self-loops as the gap SCC's backward closure, everything the
      tau predecessors accumulated), encoded
      ``action_slot * num_sccs + source``.

    Both live in flat CSR arrays, so a splitter's predicates are plain
    stacked row gathers — no per-splitter closure re-derivation, which is
    what the splitter engine spends most of its refinement time on.
    Refinement then runs in **batched frontier rounds**: every round pops
    all pending blocks and rate classes together, gathers their predicate
    rows in bulk, folds them into composite codes (one bit per predicate,
    :data:`_WeakEngineBase._CODE_BITS` per chunk) and applies them with the
    vectorised mark/split machinery — one round costs O(frontier weak
    in-edges) instead of one Python worklist iteration per splitter.

    Construction raises :class:`_SaturationOverflow` once the retained
    entries exceed ``max(SATURATION_FLOOR, SATURATION_FACTOR * num_sccs)``
    — saturating a deep tau-chain is inherently quadratic — and the caller
    falls back to the splitter engine, which computes the identical
    partition from per-splitter closures.
    """

    def __init__(self, model: IOIMC, respect_labels: bool, rate_digits: int):
        super().__init__(model, respect_labels, rate_digits)
        cond = self.condensation
        num_sccs = cond.num_sccs
        tau_pred = cond.tau_pred
        budget = max(SATURATION_FLOOR, SATURATION_FACTOR * num_sccs)
        total = 0

        # Backward tau-closure rows (sorted, self included).  SCCs with no
        # tau predecessors — the vast majority on bushy products — get a
        # zero-copy view into one shared arange instead of a fresh array.
        arange = np.arange(num_sccs, dtype=np.int64)
        bck: List[np.ndarray] = [_EMPTY_I64] * num_sccs
        nontrivial = False
        for scc in range(num_sccs - 1, -1, -1):
            preds = tau_pred[scc]
            if not preds:
                bck[scc] = arange[scc : scc + 1]
                total += 1
                continue
            nontrivial = True
            row = _sorted_unique(
                np.concatenate([arange[scc : scc + 1], *(bck[p] for p in preds)])
            )
            bck[scc] = row
            total += row.size
            if total > budget:
                raise _SaturationOverflow(total)
        sizes = np.fromiter((row.size for row in bck), dtype=np.int64, count=num_sccs)
        self._bck_off = np.concatenate(([0], np.cumsum(sizes)))
        if not num_sccs:
            self._bck_val = _EMPTY_I64
        elif nontrivial:
            self._bck_val = np.concatenate(bck)
        else:
            self._bck_val = arange

        # Compact action table: only actions occurring as weak-visible moves
        # (or input gaps) get a code slot, keeping the packed keys small.
        gap_scc = self._gap_scc
        gap_aid = self._gap_aid
        sat = _sorted_unique(np.concatenate([self._vis_aid, gap_aid]))
        #: Action id of each saturated-edge slot (sorted for determinism).
        self.sat_actions: List[int] = sat.tolist()
        num_actions = sat.size
        if num_actions and num_actions * num_sccs * num_sccs >= 2**62:
            # The packed (target, action, source) keys of the vectorised
            # direct-edge build would overflow int64; treat like a blown
            # saturation cap and let the splitter engine take over.
            raise _SaturationOverflow(total)

        # Direct weak-visible arrivals, globally vectorised: every explicit
        # in-edge (and input gap, whose "source" is the SCC itself)
        # contributes ``slot * num_sccs + c`` for each SCC ``c`` backward-
        # closing into its source, keyed by target SCC — one sort over the
        # expanded edge set replaces the per-edge array arithmetic of the
        # original per-SCC build.
        aid_all = np.concatenate([self._vis_aid, gap_aid])
        src_all = np.concatenate([self._vis_src, gap_scc])
        dst_all = np.concatenate(
            [np.repeat(arange, np.diff(self._vis_off)), gap_scc]
        )
        direct: List[np.ndarray] = [_EMPTY_I64] * num_sccs
        if aid_all.size:
            cnt = self._bck_off[src_all + 1] - self._bck_off[src_all]
            expanded = int(cnt.sum())
            if expanded > 8 * budget:
                raise _SaturationOverflow(expanded)
            slot_all = np.searchsorted(sat, aid_all)
            codes = np.repeat(slot_all, cnt) * num_sccs + self._bck_val[
                _csr_flat(self._bck_off, src_all)
            ]
            span = num_actions * num_sccs
            keys = _sorted_unique(np.repeat(dst_all, cnt) * span + codes)
            dsts = keys // span
            sorted_codes = keys - dsts * span
            bounds = np.concatenate(
                ([0], np.flatnonzero(dsts[1:] != dsts[:-1]) + 1, [keys.size])
            )
            lows = bounds[:-1]
            for target, low, high in zip(
                dsts[lows].tolist(), lows.tolist(), bounds[1:].tolist()
            ):
                direct[target] = sorted_codes[low:high]

        # Saturated weak-visible in-edge rows: everything arriving directly
        # plus everything the tau predecessors accumulated (their rows are
        # final first — descending ids).
        win: List[np.ndarray] = [_EMPTY_I64] * num_sccs
        for scc in range(num_sccs - 1, -1, -1):
            preds = tau_pred[scc]
            row = direct[scc]
            if preds:
                parts = [row] if row.size else []
                parts.extend(win[p] for p in preds if win[p].size)
                if not parts:
                    row = _EMPTY_I64
                elif len(parts) == 1:
                    row = parts[0]
                else:
                    row = _sorted_unique(np.concatenate(parts))
            win[scc] = row
            total += row.size
            if total > budget:
                raise _SaturationOverflow(total)

        #: Retained closure-matrix entries — the benchmark tier pins this
        #: linear on tau-chains with a tracemalloc test.
        self.saturation_entries = total
        sizes = np.fromiter((row.size for row in win), dtype=np.int64, count=num_sccs)
        self._win_off = np.concatenate(([0], np.cumsum(sizes)))
        self._win_val = np.concatenate(win) if num_sccs else _EMPTY_I64

    def _gather(self, offsets: np.ndarray, values: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Stacked CSR row slice: the concatenated rows ``idx``."""
        return values[_csr_flat(offsets, idx)]

    def _refine_round(self, blocks: List[int], classes: List[int], push) -> None:
        """One batched frontier round over all pending splitters at once.

        Every predicate of the round — per rate class the backward closure
        of its members' SCCs, per block its backward closure plus one
        saturated in-edge set per visible action — is an SCC set, so all
        units of one SCC satisfy exactly the same predicates.  The round
        therefore tags each closure/in-edge entry with its predicate id
        (``scc * P + pred``), deduplicates the whole frontier with a single
        ``np.unique``, and reads each touched SCC's *signature* (its sorted
        predicate list) straight off the group boundaries.  Splitting every
        touched block by signature id reaches the same common refinement as
        splitting by each predicate in sequence, for one vectorised
        mark/split pass per round instead of one per splitter — the
        per-splitter ``np.unique`` storm of the chunked path is gone.
        """
        num_sccs = self.condensation.num_sccs
        num_actions = len(self.sat_actions)
        unit_scc = self._unit_scc_arr
        bck_off, bck_val = self._bck_off, self._bck_val
        class_seeds: List[np.ndarray] = []
        for index in classes:
            members = self.class_members[index]
            if not members:
                continue  # class emptied by re-bucketing
            class_seeds.append(
                _sorted_unique(
                    unit_scc[np.fromiter(members, dtype=np.int64, count=len(members))]
                )
            )
        k_cls = len(class_seeds)
        k_blk = len(blocks)
        preds_total = k_cls + k_blk + k_blk * num_actions
        if not preds_total:
            return
        if num_sccs and preds_total >= 2**62 // num_sccs:
            # Packed (scc, predicate) keys would overflow int64: process the
            # splitters through the chunked per-predicate path instead.
            predicates = self._frontier_predicates(blocks, classes)
            if predicates:
                self._apply_codes(predicates, push)
            return
        streams: List[np.ndarray] = []
        if k_cls:
            seeds = np.concatenate(class_seeds)
            owner = np.repeat(
                np.arange(k_cls, dtype=np.int64),
                np.fromiter((s.size for s in class_seeds), dtype=np.int64, count=k_cls),
            )
            cnt = bck_off[seeds + 1] - bck_off[seeds]
            streams.append(
                bck_val[_csr_flat(bck_off, seeds)] * preds_total
                + np.repeat(owner, cnt)
            )
        if k_blk:
            member_units, member_counts = self.part.members_flat(blocks)
            sccs = unit_scc[member_units]
            owner = np.repeat(np.arange(k_blk, dtype=np.int64), member_counts)
            cnt = bck_off[sccs + 1] - bck_off[sccs]
            streams.append(
                bck_val[_csr_flat(bck_off, sccs)] * preds_total
                + np.repeat(owner + k_cls, cnt)
            )
            win_off, win_val = self._win_off, self._win_val
            wcnt = win_off[sccs + 1] - win_off[sccs]
            wvals = win_val[_csr_flat(win_off, sccs)]
            if wvals.size:
                slots = wvals // num_sccs
                sources = wvals - slots * num_sccs
                vis_base = k_cls + k_blk
                streams.append(
                    sources * preds_total
                    + (vis_base + np.repeat(owner, wcnt) * num_actions + slots)
                )
        codes = _sorted_unique(np.concatenate(streams))
        sccs = codes // preds_total
        preds = codes - sccs * preds_total
        bounds = np.concatenate(
            ([0], np.flatnonzero(sccs[1:] != sccs[:-1]) + 1, [codes.size])
        )
        lows = bounds[:-1]
        touched = sccs[lows]
        group_sizes = np.diff(bounds)
        # Signature ids must be injective on signature equality (two units of
        # one block with equal signatures must NOT separate): single-predicate
        # groups are factorised vectorised, longer groups — never equal to a
        # singleton — hash their predicate slice into a disjoint id range.
        sig_ids = np.empty(touched.size, dtype=np.int64)
        single = group_sizes == 1
        single_idx = np.flatnonzero(single)
        next_id = 0
        if single_idx.size:
            singles = preds[lows[single_idx]]
            uniq = _sorted_unique(singles)
            sig_ids[single_idx] = np.searchsorted(uniq, singles)
            next_id = uniq.size
        multi_idx = np.flatnonzero(~single)
        if multi_idx.size:
            highs = bounds[1:]
            sig_of: Dict[bytes, int] = {}
            for position in multi_idx.tolist():
                key = preds[lows[position] : highs[position]].tobytes()
                code = sig_of.get(key)
                if code is None:
                    code = next_id + len(sig_of)
                    sig_of[key] = code
                sig_ids[position] = code
        unit_off = self._unit_off
        units = _csr_flat(unit_off, touched)
        if not units.size:
            return
        self._unit_code[units] = np.repeat(
            sig_ids, unit_off[touched + 1] - unit_off[touched]
        )
        self.part.mark_all(units, assume_unique=True)
        pieces, moved = self.part.split_marked_by_codes(self._unit_code)
        for piece in pieces:
            push(("block", piece))
        if moved:
            self._track_dirty(moved, push)

    def _frontier_predicates(
        self, blocks: List[int], classes: List[int]
    ) -> List[np.ndarray]:
        """Predicate index arrays (sets of satisfying SCCs) for one round.

        Chunked fallback of :meth:`_refine_round` for frontiers whose packed
        (scc, predicate) keys would overflow int64.  Rate-class predicates
        are the backward closures of the class members' SCCs; block
        predicates are the backward closure of the block's SCCs (the
        weak-tau predicate) plus, per visible action, the saturated in-edge
        sources — read straight out of the precomputed CSR rows, grouped by
        the action slot of their packed keys.
        """
        num_sccs = self.condensation.num_sccs
        part = self.part
        unit_scc = self._unit_scc_arr
        predicates: List[np.ndarray] = []
        for index in classes:
            members = self.class_members[index]
            if not members:
                continue  # class emptied by re-bucketing
            seeds = np.unique(
                unit_scc[np.fromiter(members, dtype=np.int64, count=len(members))]
            )
            row = self._gather(self._bck_off, self._bck_val, seeds)
            predicates.append(np.unique(row) if seeds.size > 1 else row)
        for block in blocks:
            sccs = unit_scc[part.member_array(block)]
            if sccs.size > 1:
                sccs = np.unique(sccs)
            row = self._gather(self._bck_off, self._bck_val, sccs)
            predicates.append(np.unique(row) if sccs.size > 1 else row)
            keys = self._gather(self._win_off, self._win_val, sccs)
            if not keys.size:
                continue
            keys = np.unique(keys)  # sorted by (action slot, source SCC)
            slots = keys // num_sccs
            starts = [0, *(np.flatnonzero(slots[1:] != slots[:-1]) + 1).tolist(), keys.size]
            for position in range(len(starts) - 1):
                group = keys[starts[position] : starts[position + 1]]
                predicates.append(group - slots[starts[position]] * num_sccs)
        return predicates

    def _run(self) -> None:
        if self._refined:
            return
        pending_blocks: Set[int] = set(self.part.blocks())
        pending_classes: Set[int] = set(range(len(self.class_members)))

        def push(splitter) -> None:
            kind, index = splitter
            if kind == "block":
                pending_blocks.add(index)
            else:
                pending_classes.add(index)

        while pending_blocks or pending_classes or self._dirty:
            self._flush_dirty(push)
            blocks = sorted(pending_blocks)
            classes = sorted(pending_classes)
            pending_blocks.clear()
            pending_classes.clear()
            self._refine_round(blocks, classes, push)
        self._refined = True


# ---------------------------------------------------------------------------
# quotient construction
# ---------------------------------------------------------------------------

def _block_map(partition: Partition) -> Dict[int, int]:
    block_of: Dict[int, int] = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    return block_of


def quotient_strong(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a strong bisimulation partition."""
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    quotient = IOIMC(name if name is not None else model.name, model.signature)
    representatives = [min(block) for block in partition]
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        pairs: Dict[Tuple[int, int], None] = {}
        for aid, target in model.interactive_pairs(rep):
            target_block = block_of[target]
            if target_block == block_id and aid in input_ids:
                continue  # implicit input self-loop
            pairs[(aid, target_block)] = None
        if pairs:
            quotient._add_interactive_bulk(block_id, list(pairs))
        rates: Dict[int, float] = {}
        for target, rate in model.markovian_dict(rep).items():
            if block_of[target] == block_id:
                continue  # intra-class movement is invisible in the quotient
            rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
        for target_block, total in rates.items():
            quotient.add_markovian(block_id, total, target_block)
    quotient.set_initial(block_of[model.initial])
    return quotient


def _build_weak_quotient(
    model: IOIMC,
    condensation: TauCondensation,
    partition: Partition,
    name: str | None = None,
    precomputed: Optional[tuple] = None,
) -> IOIMC:
    """Weak quotient from a partition and the shared tau-SCC condensation.

    The forward analogue of the closure engine's saturation sweep: one
    ascending-id pass over the condensation (tau successors carry smaller
    ids, so successor rows are final first) folds, per SCC, the blocks
    reachable via internal moves into sorted numpy rows; visible reach is
    one global edge expansion (every visible edge and input gap contributes
    ``slot * num_blocks + block`` for each block in its target's tau row,
    keyed by source SCC, one sort-dedup total) followed by the same
    ascending accumulation.  Assembly is one global decode of the
    representatives' rows into pair lists — no per-state closure frozensets
    and no per-SCC Python set unions.

    ``precomputed``, when given, is the weak engines' already-extracted
    ``(vis_src, vis_aid, vis_off, gap_scc, gap_aid, stable_flags)`` edge
    data (visible in-edge CSR keyed by target SCC, input-gap pairs, a
    per-state stability bytearray) — skipping the transition re-walk.
    """
    num_states = model.num_states
    num_blocks = len(partition)
    num_sccs = condensation.num_sccs
    block_arr = np.empty(num_states, dtype=np.int64)
    for block_id, block in enumerate(partition):
        for state in block:
            block_arr[state] = block_id
    scc_of = condensation.scc_of
    tau_succ = condensation.tau_succ
    internal_mask = model.signature.internal_mask
    input_ids = model.signature.input_ids
    mtrans = model._mtrans

    scc_arr = np.asarray(scc_of, dtype=np.int64)
    if precomputed is not None:
        vis_src, vis_aid, vis_off, gap_scc, gap_aid, stable_flags = precomputed
        src = np.concatenate([vis_src, gap_scc])
        aid = np.concatenate([vis_aid, gap_aid])
        dst = np.concatenate(
            [np.repeat(np.arange(num_sccs, dtype=np.int64), np.diff(vis_off)), gap_scc]
        )
        stable_idx = np.flatnonzero(np.frombuffer(bytes(stable_flags), dtype=np.uint8))
    else:
        # Flat visible forward edges (source SCC, action, target SCC); input
        # gaps ride along as self-edges (the implicit weak self-loop reaches
        # the state's own tau closure).  Gap detection records one
        # input-restricted mask int per state and runs one vectorised
        # bit-test per input action afterwards — not one Python test per
        # (state, input) pair.
        input_id_list = sorted(input_ids)
        input_mask = model.signature.input_mask
        enabled_mask = model.enabled_mask
        itrans = model._itrans
        vec_gaps = bool(input_id_list) and input_id_list[-1] < 63
        e_src: List[int] = []
        e_aid: List[int] = []
        e_dst: List[int] = []
        imask_vals: List[int] = []
        stable = bytearray(num_states)
        for state in range(num_states):
            scc = scc_of[state]
            for aid_, target in itrans[state]:
                if (internal_mask >> aid_) & 1:
                    continue
                e_src.append(scc)
                e_aid.append(aid_)
                e_dst.append(scc_of[target])
            mask = enabled_mask(state)
            if not mask & internal_mask:
                stable[state] = 1
            if vec_gaps:
                imask_vals.append(mask & input_mask)
            else:
                for aid_ in input_id_list:
                    if not (mask >> aid_) & 1:
                        e_src.append(scc)
                        e_aid.append(aid_)
                        e_dst.append(scc)
        gap_src_parts: List[np.ndarray] = []
        gap_aid_parts: List[np.ndarray] = []
        if vec_gaps:
            imask_arr = np.fromiter(imask_vals, dtype=np.int64, count=num_states)
            for aid_ in input_id_list:
                missing = np.flatnonzero(~(imask_arr >> aid_) & 1)
                if missing.size:
                    gap_src_parts.append(scc_arr[missing])
                    gap_aid_parts.append(np.full(missing.size, aid_, dtype=np.int64))
        gap_src = np.concatenate(gap_src_parts) if gap_src_parts else _EMPTY_I64
        gap_aid_arr = np.concatenate(gap_aid_parts) if gap_aid_parts else _EMPTY_I64
        src = np.concatenate([np.asarray(e_src, dtype=np.int64), gap_src])
        aid = np.concatenate([np.asarray(e_aid, dtype=np.int64), gap_aid_arr])
        dst = np.concatenate([np.asarray(e_dst, dtype=np.int64), gap_src])
        stable_idx = np.flatnonzero(np.frombuffer(bytes(stable), dtype=np.uint8))

    # Pass 1 — blocks reachable via internal moves, ascending SCC ids.
    order = np.argsort(scc_arr, kind="stable")
    mem_blocks = block_arr[order]
    mem_off = np.concatenate(
        ([0], np.cumsum(np.bincount(scc_arr, minlength=num_sccs)))
    )
    tau_rows: List[np.ndarray] = [_EMPTY_I64] * num_sccs
    for scc in range(num_sccs):
        row = mem_blocks[mem_off[scc] : mem_off[scc + 1]]
        succs = tau_succ[scc]
        if succs:
            row = np.concatenate([row, *(tau_rows[s] for s in succs)])
        tau_rows[scc] = _sorted_unique(row) if row.size > 1 else row
    tau_sizes = np.fromiter(
        (row.size for row in tau_rows), dtype=np.int64, count=num_sccs
    )
    tau_off = np.concatenate(([0], np.cumsum(tau_sizes)))
    tau_val = np.concatenate(tau_rows) if num_sccs else _EMPTY_I64

    # Pass 2 — direct weak-visible departures per source SCC, globally
    # expanded over the targets' tau rows, then accumulated ascending.
    direct: List[np.ndarray] = [_EMPTY_I64] * num_sccs
    if src.size:
        sat = _sorted_unique(aid)
        span = sat.size * num_blocks
        if num_sccs and span >= 2**62 // num_sccs:
            # Packed (source, slot, block) keys would overflow int64.
            return _build_weak_quotient_scalar(model, condensation, partition, name)
        slot = np.searchsorted(sat, aid)
        cnt = tau_off[dst + 1] - tau_off[dst]
        codes = np.repeat(slot, cnt) * num_blocks + tau_val[_csr_flat(tau_off, dst)]
        keys = _sorted_unique(np.repeat(src, cnt) * span + codes)
        srcs = keys // span
        key_codes = keys - srcs * span
        bounds = np.concatenate(
            ([0], np.flatnonzero(srcs[1:] != srcs[:-1]) + 1, [keys.size])
        )
        lows = bounds[:-1]
        for source, low, high in zip(
            srcs[lows].tolist(), lows.tolist(), bounds[1:].tolist()
        ):
            direct[source] = key_codes[low:high]
    else:
        sat = _EMPTY_I64
    vis_rows: List[np.ndarray] = [_EMPTY_I64] * num_sccs
    for scc in range(num_sccs):
        row = direct[scc]
        succs = tau_succ[scc]
        if succs:
            parts = [row] if row.size else []
            parts.extend(vis_rows[s] for s in succs if vis_rows[s].size)
            if not parts:
                row = _EMPTY_I64
            elif len(parts) == 1:
                row = parts[0]
            else:
                row = _sorted_unique(np.concatenate(parts))
        vis_rows[scc] = row

    internal_actions = sorted(model.signature.internals)
    tau_id = intern_action(internal_actions[0]) if internal_actions else None

    quotient = IOIMC(name if name is not None else model.name, model.signature)
    model_labels = model._labels
    reps = [min(block) for block in partition]
    for block_id, rep in enumerate(reps):
        quotient.add_state(labels=model_labels[rep], name=f"B{block_id}")

    # Minimal stable representative per block: a descending scatter makes
    # the smallest stable state win the last write.
    stable_rep = np.full(num_blocks, -1, dtype=np.int64)
    if stable_idx.size:
        rev = stable_idx[::-1]
        stable_rep[block_arr[rev]] = rev

    # Global assembly: decode every representative's visible and tau rows at
    # once, drop implicit input self-loops and tau self-block moves with
    # boolean masks, and materialise the pair lists with two C-level zips —
    # the only per-block Python work left is list slicing and the bulk adds.
    rep_scc_arr = scc_arr[np.fromiter(reps, dtype=np.int64, count=num_blocks)]
    block_ids = np.arange(num_blocks, dtype=np.int64)

    vis_sizes = np.fromiter(
        (row.size for row in vis_rows), dtype=np.int64, count=num_sccs
    )
    vis_off = np.concatenate(([0], np.cumsum(vis_sizes)))
    vis_val = np.concatenate(vis_rows) if num_sccs else _EMPTY_I64
    vflat = vis_val[_csr_flat(vis_off, rep_scc_arr)]
    vowner = np.repeat(block_ids, vis_sizes[rep_scc_arr])
    if vflat.size:
        vslots = vflat // num_blocks
        vtargets = vflat - vslots * num_blocks
        input_slot = np.fromiter(
            ((slot_aid in input_ids) for slot_aid in sat.tolist()),
            dtype=bool,
            count=sat.size,
        )
        keep = ~((vtargets == vowner) & input_slot[vslots])
        vowner = vowner[keep]
        vis_pairs = list(zip(sat[vslots[keep]].tolist(), vtargets[keep].tolist()))
    else:
        vis_pairs = []
    voff = np.concatenate(
        ([0], np.cumsum(np.bincount(vowner, minlength=num_blocks)))
    ).tolist()

    tflat = tau_val[_csr_flat(tau_off, rep_scc_arr)]
    towner = np.repeat(block_ids, tau_sizes[rep_scc_arr])
    tkeep = tflat != towner
    ttargets = tflat[tkeep]
    towner = towner[tkeep]
    if ttargets.size and tau_id is None:
        raise AssertionError(
            "internal moves present but the signature declares no internal action"
        )
    tau_pairs = list(zip([tau_id] * ttargets.size, ttargets.tolist()))
    toff = np.concatenate(
        ([0], np.cumsum(np.bincount(towner, minlength=num_blocks)))
    ).tolist()

    for block_id in range(num_blocks):
        pairs = (
            vis_pairs[voff[block_id] : voff[block_id + 1]]
            + tau_pairs[toff[block_id] : toff[block_id + 1]]
        )
        if pairs:
            quotient._add_interactive_bulk(block_id, pairs)

        stable_member = int(stable_rep[block_id])
        if stable_member >= 0:
            rates: Dict[int, float] = {}
            for target, rate in mtrans[stable_member].items():
                target_block = int(block_arr[target])
                if target_block == block_id:
                    continue  # intra-class movement is invisible in the quotient
                rates[target_block] = rates.get(target_block, 0.0) + rate
            for target_block, total in rates.items():
                quotient.add_markovian(block_id, total, target_block)

    quotient.set_initial(int(block_arr[model.initial]))
    return quotient


def _build_weak_quotient_scalar(
    model: IOIMC,
    condensation: TauCondensation,
    partition: Partition,
    name: str | None = None,
) -> IOIMC:
    """Interned-frozenset fallback of :func:`_build_weak_quotient`.

    Kept for models whose packed ``(source, action, block)`` keys would
    overflow int64 — same sweeps, Python sets instead of packed rows.
    """
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    scc_of = condensation.scc_of

    interned: Dict[FrozenSet[int], FrozenSet[int]] = {}

    def intern(blocks: Set[int]) -> FrozenSet[int]:
        key = frozenset(blocks)
        return interned.setdefault(key, key)

    num_sccs = condensation.num_sccs
    # First pass, in id order (tau successors first): blocks reachable via
    # internal moves alone.  Visible targets may live in later SCCs, so the
    # visible reach needs a second pass once every tau closure is known.
    tau_blocks: List[FrozenSet[int]] = [frozenset()] * num_sccs
    for scc in range(num_sccs):
        reach: Set[int] = {block_of[state] for state in condensation.members[scc]}
        for successor in condensation.tau_succ[scc]:
            reach |= tau_blocks[successor]
        tau_blocks[scc] = intern(reach)
    visible: List[Dict[int, FrozenSet[int]]] = [{} for _ in range(num_sccs)]

    def merge(per_action: Dict[int, FrozenSet[int]], aid: int, blocks: FrozenSet[int]) -> None:
        # Every value is an interned frozenset, so equal sets are the same
        # object and the identity/subset checks skip most re-unions on
        # shared tau-chain tails.
        current = per_action.get(aid)
        if current is None:
            per_action[aid] = blocks
        elif current is not blocks and not blocks <= current:
            per_action[aid] = intern(current | blocks)

    for scc in range(num_sccs):  # id order again: tau successors come first
        per_action: Dict[int, FrozenSet[int]] = {}
        for successor in condensation.tau_succ[scc]:
            for aid, blocks in visible[successor].items():
                merge(per_action, aid, blocks)
        closure_blocks = tau_blocks[scc]
        for state in condensation.members[scc]:
            for aid, target in model.interactive_pairs(state):
                if aid in internal_ids:
                    continue
                merge(per_action, aid, tau_blocks[scc_of[target]])
            if input_ids:
                enabled = model.enabled_ids(state)
                for aid in input_ids:
                    if aid not in enabled:
                        merge(per_action, aid, closure_blocks)
        visible[scc] = per_action

    stable = [model.is_stable(state) for state in model.states()]
    internal_actions = sorted(model.signature.internals)
    tau_id = intern_action(internal_actions[0]) if internal_actions else None

    quotient = IOIMC(name if name is not None else model.name, model.signature)
    for block_id, block in enumerate(partition):
        rep = min(block)
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")

    for block_id, block in enumerate(partition):
        rep = min(block)
        rep_scc = scc_of[rep]

        pairs: List[Tuple[int, int]] = []
        for aid, target_blocks in visible[rep_scc].items():
            is_input = aid in input_ids
            for target_block in sorted(target_blocks):
                if target_block == block_id and is_input:
                    continue  # implicit input self-loop
                pairs.append((aid, target_block))

        tau_targets = set(tau_blocks[rep_scc]) - {block_id}
        if tau_targets and tau_id is None:
            raise AssertionError(
                "internal moves present but the signature declares no internal action"
            )
        for target_block in sorted(tau_targets):
            pairs.append((tau_id, target_block))
        if pairs:
            quotient._add_interactive_bulk(block_id, pairs)

        stable_member = next((state for state in sorted(block) if stable[state]), None)
        if stable_member is not None:
            rates: Dict[int, float] = {}
            for target, rate in model.markovian_dict(stable_member).items():
                if block_of[target] == block_id:
                    continue  # intra-class movement is invisible in the quotient
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            for target_block, total in rates.items():
                quotient.add_markovian(block_id, total, target_block)

    quotient.set_initial(block_of[model.initial])
    return quotient


def quotient_weak(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a weak bisimulation partition.

    Per block the construction uses a representative's *weak* transitions:

    * visible actions: one transition per block weakly reachable (input
      self-block loops stay implicit);
    * internal moves: one ``τ`` transition per distinct block reachable via
      internal moves (self-block loops are dropped — weak bisimulation is
      insensitive to them);
    * Markovian transitions: blocks containing a stable state carry that
      state's aggregate rate vector (all stable members of a block agree);
      blocks without stable states are vanishing and get no rates.

    The weak reach sets are derived from the tau-SCC condensation; prefer
    :func:`minimize_weak`, which shares one condensation between the
    partition refinement and this construction.
    """
    return _build_weak_quotient(model, TauCondensation(model), partition, name)


def _strong_quotient_unrestricted(
    model: IOIMC,
    respect_labels: bool,
    algorithm: str,
    rate_digits: int,
) -> IOIMC:
    """Strong quotient over *all* states (no reachability restriction)."""
    partition = strong_bisimulation_partition(
        model, respect_labels=respect_labels, algorithm=algorithm, rate_digits=rate_digits
    )
    return quotient_strong(model, partition)


def _weak_quotient_unrestricted(
    model: IOIMC,
    respect_labels: bool,
    algorithm: str,
    rate_digits: int,
) -> IOIMC:
    """Weak quotient over *all* states (no reachability restriction)."""
    _check_algorithm(algorithm)
    if algorithm == "signature":
        partition = _weak_partition_signature(model, respect_labels, rate_digits)
        return quotient_weak(model, partition)
    if _has_no_internal_transitions(model):
        partition = _strong_partition_splitter(model, respect_labels, rate_digits)
        return _build_weak_quotient(model, TauCondensation(model), partition)
    engine = _weak_engine(model, respect_labels, rate_digits, algorithm)
    return engine.quotient()


def minimize_strong(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "closure",
    rate_digits: int = DEFAULT_RATE_DIGITS,
    processes: int = 1,
) -> IOIMC:
    """Minimise ``model`` modulo strong bisimulation.

    ``processes > 1`` refines connected components of the transition graph in
    worker processes (see :func:`minimize_weak` for the decomposition and its
    limits); a single-component model always refines serially.
    """
    if processes > 1:
        reduced = _minimize_components_parallel(
            model, "strong", respect_labels, algorithm, rate_digits, processes
        )
        if reduced is not None:
            return reduced
    partition = strong_bisimulation_partition(
        model, respect_labels=respect_labels, algorithm=algorithm, rate_digits=rate_digits
    )
    return quotient_strong(model, partition).restrict_to_reachable(model.name)


def minimize_weak(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "closure",
    rate_digits: int = DEFAULT_RATE_DIGITS,
    processes: int = 1,
) -> IOIMC:
    """Minimise ``model`` modulo weak bisimulation.

    With the closure and splitter engines one tau-SCC condensation is shared
    between the partition refinement and the quotient construction, so the
    internal-closure work happens exactly once per minimisation.

    ``processes > 1`` enables intra-minimisation multi-core: the transition
    graph is split into (undirected) connected components, each component is
    refined and quotiented in a worker process, and the disjoint union of the
    component quotients gets one serial merge pass (which coarsens
    cross-component equivalent blocks) before the usual reachability
    restriction.  States in different components never share a transition, so
    the composed partition reaches the same coarsest fixpoint as a global
    serial run; on models with divergent vanishing states (tau self-loops or
    cycles that never reach stability) the merge pass performs one extra
    normalisation step — the same step the aggregation pipeline's
    iterate-to-fixpoint loop applies after a serial minimisation.  The
    decomposition only pays off on genuinely disconnected models (scenario
    unions, batch corpora): a reachability-restricted product of one root is
    a single component and always refines serially.
    """
    _check_algorithm(algorithm)
    if processes > 1:
        reduced = _minimize_components_parallel(
            model, "weak", respect_labels, algorithm, rate_digits, processes
        )
        if reduced is not None:
            return reduced
    quotient = _weak_quotient_unrestricted(model, respect_labels, algorithm, rate_digits)
    return quotient.restrict_to_reachable(model.name)


# ---------------------------------------------------------------------------
# intra-minimisation multi-core: connected-component fan-out
# ---------------------------------------------------------------------------

def _connected_components(model: IOIMC) -> List[List[int]]:
    """Undirected connected components of the full transition graph.

    Interactive and Markovian edges both connect; the components are exactly
    the finest grouping with no cross-group transitions, so refinement
    signatures never cross a component boundary.
    """
    num_states = model.num_states
    parent = list(range(num_states))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for state in range(num_states):
        for _aid, target in model._itrans[state]:
            ra, rb = find(state), find(target)
            if ra != rb:
                parent[rb] = ra
        for target in model._mtrans[state]:
            ra, rb = find(state), find(target)
            if ra != rb:
                parent[rb] = ra
    groups: Dict[int, List[int]] = {}
    for state in range(num_states):
        groups.setdefault(find(state), []).append(state)
    return [groups[root] for root in sorted(groups)]


def _extract_component(model: IOIMC, states: List[int]) -> IOIMC:
    """The submodel induced by ``states`` (a transition-closed set).

    The component keeps the full action signature (worker results are
    re-unioned under it) and uses its smallest member as the initial state
    when the model's initial lies elsewhere — the per-component quotient is
    built over *all* component states, so the placeholder never influences
    the result.
    """
    remap = {old: new for new, old in enumerate(states)}
    sub = IOIMC(model.name, model.signature)
    for old in states:
        sub.add_state(labels=model.labels(old), name=model.state_name(old))
    for old in states:
        new = remap[old]
        sub._set_interactive_raw(
            new, [(aid, remap[target]) for aid, target in model._itrans[old]]
        )
        sub._set_markovian_raw(
            new, {remap[target]: rate for target, rate in model._mtrans[old].items()}
        )
    initial = model._initial
    sub.set_initial(remap[initial] if initial is not None and initial in remap else 0)
    return sub


def _minimize_component_job(
    job: Tuple[str, IOIMC, bool, str, int],
) -> IOIMC:
    """Worker entry point: quotient one component, no reachability restriction."""
    kind, sub, respect_labels, algorithm, rate_digits = job
    if kind == "weak":
        return _weak_quotient_unrestricted(sub, respect_labels, algorithm, rate_digits)
    return _strong_quotient_unrestricted(sub, respect_labels, algorithm, rate_digits)


def _minimize_components_parallel(
    model: IOIMC,
    kind: str,
    respect_labels: bool,
    algorithm: str,
    rate_digits: int,
    processes: int,
) -> Optional[IOIMC]:
    """Fan per-component quotients out to worker processes, then merge.

    Returns ``None`` when the model is a single connected component (nothing
    to fan out — the caller runs the serial path).  Models cross the process
    boundary by action *name* (see ``IOIMC.__getstate__``), the same
    plan-shipping discipline as the parallel modular aggregator.
    """
    components = _connected_components(model)
    if len(components) < 2:
        return None
    jobs = [
        (kind, _extract_component(model, states), respect_labels, algorithm, rate_digits)
        for states in components
    ]
    workers = min(processes, len(jobs))
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        quotients = list(pool.map(_minimize_component_job, jobs))

    # Disjoint union of the component quotients, then one serial merge pass:
    # per-component refinement cannot merge equivalent states of *different*
    # components, so the union is re-minimised (it is already small) to reach
    # the global coarsest partition before the reachability restriction.
    union = IOIMC(model.name, model.signature)
    offsets: List[int] = []
    for quotient in quotients:
        offsets.append(union.num_states)
        base = union.num_states
        for state in range(quotient.num_states):
            union.add_state(
                labels=quotient.labels(state), name=quotient.state_name(state)
            )
        for state in range(quotient.num_states):
            union._set_interactive_raw(
                base + state,
                [(aid, base + target) for aid, target in quotient._itrans[state]],
            )
            union._set_markovian_raw(
                base + state,
                {base + target: rate for target, rate in quotient._mtrans[state].items()},
            )
    initial = model._initial
    if initial is not None:
        for index, states in enumerate(components):
            if initial in set(states):
                union.set_initial(offsets[index] + quotients[index].initial)
                break
    else:
        union.set_initial(0)
    if kind == "weak":
        merged = _weak_quotient_unrestricted(union, respect_labels, algorithm, rate_digits)
    else:
        merged = _strong_quotient_unrestricted(union, respect_labels, algorithm, rate_digits)
    return merged.restrict_to_reachable(model.name)
