"""Strong and weak bisimulation minimisation for I/O-IMC.

Aggregation — replacing an I/O-IMC by its bisimulation quotient — is what makes
the compositional approach of the paper scale: after every composition step the
intermediate model is minimised, so the state space of the product never comes
close to the monolithic Markov chain built by DIFTree.

Two equivalences are implemented:

* **Strong bisimulation** — interactive transitions must be matched step by
  step and the aggregate Markovian rate into every equivalence class must
  coincide (ordinary lumpability).  Simple, always applicable.
* **Weak bisimulation** — internal (hidden) actions are abstracted away: weak
  interactive moves (``τ* a τ*``) must be matched, and only *stable* states
  (states without internal transitions) reached via internal moves need to
  agree on their Markovian rate classes.  This is the equivalence used in the
  paper; it merges the interleaving diamonds created by hiding synchronised
  failure/activation signals and therefore reduces much more aggressively.

Two refinement engines compute each partition:

``algorithm="splitter"`` (default)
    Worklist-of-splitters partition refinement on the refinable partition of
    :mod:`repro.ioimc.partition` (Paige-Tarjan / Valmari-Franceschinis style):
    one refinement step touches only the splitter block's (weak) in-edges
    instead of recomputing every state's signature.  The strong variant runs
    the full Paige-Tarjan smaller-half discipline — compound splitter
    families with per-(compound, action, state) edge counts, so only the
    smaller extracted sub-block's in-edges are ever scanned and the
    interactive refinement is O(m log n).  The weak variant first condenses
    the internal-transition graph into its tau-SCCs
    (:class:`~repro.ioimc.partition.TauCondensation`) and runs entirely on
    the condensation — tau-closures are shared per SCC, never materialised
    per state, and the backward closures of recurring splitter seed sets are
    memoised in a bounded cache.
``algorithm="signature"``
    The seed implementation: every round recomputes every state's full
    signature and splits blocks by signature equality.  Kept as the reference
    for differential testing; asymptotically slower (O(rounds × states ×
    transitions)) and, on the weak path, quadratic in memory on tau-chains
    (per-state closure frozensets).

Both engines compute the *same* coarsest partition — the property tests pin
this on the paper's systems and on random DFT corpora.  The quotient
constructions preserve state labels and the analysed reliability measures;
the weak quotient is built from the tau-SCC condensation directly, so
minimise-then-quotient does the closure work exactly once.

Maximal progress should be applied *before* minimisation (the reduction
pipeline in :mod:`repro.ioimc.reduction` does so); the algorithms here work on
the transitions they are given.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ModelError
from .actions import intern_action
from .model import IOIMC
from .partition import (
    DEFAULT_RATE_DIGITS,
    RefinablePartition,
    TauCondensation,
    canonical_rate,
    refine,
)

Partition = List[FrozenSet[int]]

#: The available refinement engines.
ALGORITHMS = ("splitter", "signature")

#: Up to this many tau-SCCs the weak engine precomputes a bit-packed
#: backward-reachability matrix over the condensation (num_sccs^2 bits,
#: 32 MiB at the limit); larger condensations fall back to the memoised
#: per-query BFS of :class:`~repro.ioimc.partition.TauCondensation`.
_DENSE_REACH_LIMIT = 16384

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Bit masks of the MSB-first packed rows: mask of bit ``i`` within a byte.
_BIT_MASK = np.array([128, 64, 32, 16, 8, 4, 2, 1], dtype=np.uint8)

#: Per-predicate weights of the composite codes (bit per predicate).
_CODE_WEIGHTS = np.left_shift(np.int64(1), np.arange(62, dtype=np.int64))

#: Bit offsets set in each byte value, MSB-first (mirrors ``np.unpackbits``):
#: decoding a sparse packed row walks only its non-zero bytes through this
#: table instead of unpacking all ``num_sccs`` bits.
_BYTE_BITS = tuple(
    tuple(offset for offset in range(8) if byte & (0x80 >> offset))
    for byte in range(256)
)


def _csr_flat(offsets: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Flat positions of the CSR rows ``idx``: ``concat(range(off[i], off[i+1]))``.

    The standard repeat/cumsum trick — one vectorised expression, no Python
    loop over rows.
    """
    counts = offsets[idx + 1] - offsets[idx]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64
    cum = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) + np.repeat(
        offsets[idx] - cum + counts, counts
    )


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in ALGORITHMS:
        raise ModelError(
            f"unknown bisimulation algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )


def _canonical_partition(blocks: Sequence[FrozenSet[int]]) -> Partition:
    """Blocks ordered by smallest member — one canonical form for both engines."""
    return sorted((frozenset(block) for block in blocks), key=min)


def _initial_blocks(model: IOIMC, respect_labels: bool) -> Dict[int, int]:
    """Initial partition map: states grouped by their label sets."""
    if not respect_labels:
        return {state: 0 for state in model.states()}
    block_ids: Dict[FrozenSet[str], int] = {}
    block_of: Dict[int, int] = {}
    for state in model.states():
        labels = model.labels(state)
        if labels not in block_ids:
            block_ids[labels] = len(block_ids)
        block_of[state] = block_ids[labels]
    return block_of


def _blocks_from_map(block_of: Dict[int, int]) -> Partition:
    grouped: Dict[int, set] = {}
    for state, block in block_of.items():
        grouped.setdefault(block, set()).add(state)
    return _canonical_partition([frozenset(states) for states in grouped.values()])


def _refine_by_signature(
    block_of: Dict[int, int], signatures: Dict[int, object]
) -> Tuple[Dict[int, int], bool]:
    """Split blocks by signature; return the new map and whether it changed."""
    next_ids: Dict[Tuple[int, object], int] = {}
    new_map: Dict[int, int] = {}
    for state, old_block in block_of.items():
        key = (old_block, signatures[state])
        if key not in next_ids:
            next_ids[key] = len(next_ids)
        new_map[state] = next_ids[key]
    changed = len(next_ids) != len(set(block_of.values()))
    return new_map, changed


# ---------------------------------------------------------------------------
# strong bisimulation
# ---------------------------------------------------------------------------

def strong_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest strong bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels) they enable the same
    actions into the same equivalence classes (implicit input self-loops
    included) and their aggregate Markovian rates into every *other* class
    coincide (ordinary lumpability).
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _strong_partition_signature(model, respect_labels, rate_digits)
    return _strong_partition_splitter(model, respect_labels, rate_digits)


def _strong_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    block_of = _initial_blocks(model, respect_labels)
    input_ids = model.signature.input_ids
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            interactive: Dict[int, set] = {}
            enabled = model.enabled_ids(state)
            for aid, target in model.interactive_pairs(state):
                interactive.setdefault(aid, set()).add(block_of[target])
            for aid in input_ids:
                if aid not in enabled:
                    interactive.setdefault(aid, set()).add(block_of[state])
            # Ordinary lumpability: rates into the state's own class are
            # irrelevant (movement inside the class does not change the class,
            # and the rates towards every other class are required to agree).
            rates: Dict[int, float] = {}
            own_block = block_of[state]
            for target, rate in model.markovian_dict(state).items():
                if block_of[target] == own_block:
                    continue
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            signatures[state] = (
                frozenset((aid, frozenset(blocks)) for aid, blocks in interactive.items()),
                frozenset(
                    (block, canonical_rate(total, rate_digits))
                    for block, total in rates.items()
                ),
            )
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


def _strong_partition_splitter(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Paige-Tarjan three-way smaller-half refinement (on states).

    The interactive relation runs the textbook Paige-Tarjan discipline: past
    splitters are grouped into *compound* families (unions of current
    blocks), and processing a compound extracts one sub-block ``B`` of at
    most half the family's size, scans **only** ``B``'s in-edges, and splits
    every predecessor block three ways — into ``B`` only, into the remainder
    ``C - B`` only, or into both.  The third way is funded by per
    ``(compound, action, state)`` edge counts (implicit input self-loops
    count as edges): a state marked for ``B`` still has an edge into the
    remainder iff its count in ``C`` exceeds its count in ``B``, so the
    larger half's in-edges are never walked.  Every state's in-edges are
    scanned only when its block is the extracted half, whose size at least
    halves each time — the O(m log n) bound of Paige and Tarjan.

    Markovian rates keep the simpler per-block worklist (both halves of a
    split re-enter): the rate predicate is function-valued and a rate round
    costs only the splitter's Markovian in-edges, which profiling shows is
    a small fraction of the interactive work on composition intermediates.
    The fixpoint — every current block processed as a rate splitter in its
    final membership, the partition stable under every compound family —
    is exactly the signature engine's equivalence.
    """
    num_states = model.num_states
    if num_states == 0:
        return []
    part = RefinablePartition(num_states)
    if respect_labels:
        part.split_by_key(0, model.labels)

    # Reverse adjacencies: everything a splitter needs is reachable from its
    # member states' in-edges.
    interactive_pred: List[List[Tuple[int, int]]] = [[] for _ in range(num_states)]
    markovian_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
    input_ids = model.signature.input_ids
    input_gaps: List[Tuple[int, ...]] = [()] * num_states
    for state in range(num_states):
        for aid, target in model.interactive_pairs(state):
            interactive_pred[target].append((aid, state))
        for target, rate in model.markovian_dict(state).items():
            markovian_pred[target].append((state, rate))
        if input_ids:
            enabled = model.enabled_ids(state)
            input_gaps[state] = tuple(aid for aid in input_ids if aid not in enabled)

    # Stability w.r.t. the universe family: states must agree on which
    # actions they can take at all.  Every state weakly has every *input*
    # action (explicitly or as an implicit self-loop), so only the enabled
    # non-input actions distinguish at this level.
    def universe_key(state: int) -> FrozenSet[int]:
        return frozenset(aid for aid in model.enabled_ids(state) if aid not in input_ids)

    for block in list(part.blocks()):
        part.split_by_key(block, universe_key)

    # counts[(compound, action)][state] = number of `action`-edges from
    # `state` into the compound family (implicit input self-loops included).
    # Keyed by compound, not block: Q-splits inside a family leave them
    # valid.  The two-level layout keeps the per-edge work of a compound
    # round to plain int-keyed dict hits instead of 3-tuple hashing.
    counts: Dict[Tuple[int, int], Dict[int, int]] = {}
    for state in range(num_states):
        for aid, _target in model.interactive_pairs(state):
            per_state = counts.get((0, aid))
            if per_state is None:
                per_state = counts[(0, aid)] = {}
            per_state[state] = per_state.get(state, 0) + 1
        for aid in input_gaps[state]:
            per_state = counts.get((0, aid))
            if per_state is None:
                per_state = counts[(0, aid)] = {}
            per_state[state] = per_state.get(state, 0) + 1

    compound_of: Dict[int, int] = {block: 0 for block in part.blocks()}
    compound_blocks: List[Set[int]] = [set(part.blocks())]

    def register_split(parent: int, new_block: int, push) -> None:
        """Bookkeeping for one Q-split: compound membership + rate worklist."""
        cid = compound_of[parent]
        compound_of[new_block] = cid
        family = compound_blocks[cid]
        family.add(new_block)
        if len(family) == 2:
            push(("compound", cid))
        push(("rates", parent))
        push(("rates", new_block))

    def process_compound(cid: int, push) -> None:
        family = compound_blocks[cid]
        if len(family) < 2:
            return  # family already drained by earlier processings
        iterator = iter(family)
        first, second = next(iterator), next(iterator)
        small = first if part.size(first) <= part.size(second) else second
        family.discard(small)
        new_cid = len(compound_blocks)
        compound_blocks.append({small})
        compound_of[small] = new_cid
        if len(family) >= 2:
            push(("compound", cid))

        # Scan only the extracted half's in-edges, bucketing per action.
        buckets: Dict[int, Dict[int, int]] = {}
        for target in part.members(small):
            for aid, source in interactive_pred[target]:
                per_source = buckets.setdefault(aid, {})
                per_source[source] = per_source.get(source, 0) + 1
            for aid in input_gaps[target]:
                per_source = buckets.setdefault(aid, {})
                per_source[target] = per_source.get(target, 0) + 1
        for aid, into_small in buckets.items():
            # Move the scanned edges' counts from the old family to the new
            # singleton family; what remains keyed on `cid` counts edges into
            # the remainder.
            counts[(new_cid, aid)] = into_small
            remainder = counts[(cid, aid)]
            for source, edge_count in into_small.items():
                remaining = remainder.pop(source) - edge_count
                if remaining:
                    remainder[source] = remaining
            if not remainder:
                # Every counted edge went into `small`: nothing points at
                # the remainder, so the three-way key below is constant.
                del counts[(cid, aid)]

            part.mark_all(list(into_small), assume_unique=True)
            if not remainder:
                for marked, rest in part.split_marked():
                    if rest >= 0:
                        register_split(rest, marked, push)
                continue
            for marked, rest in part.split_marked():
                if rest >= 0:
                    register_split(rest, marked, push)
                # Three-way: the marked part (edges into `small`) still
                # splits by "also has edges into the remainder".
                created = part.split_by_key(
                    marked, lambda source: source in remainder
                )
                for block in created:
                    register_split(marked, block, push)

    def process_rates(splitter: int, push) -> None:
        # Aggregate each predecessor's rate into the splitter and split the
        # touched blocks by the canonical rate value.  Rates from states
        # inside the splitter are skipped — ordinary lumpability does not
        # constrain movement within a class (the signature engine skips the
        # own-block rates for the same reason).
        states = part.members(splitter)  # snapshot: valid across splits
        splitter_set = set(states)
        weights: Dict[int, float] = {}
        for target in states:
            for source, rate in markovian_pred[target]:
                if source in splitter_set:
                    continue
                weights[source] = weights.get(source, 0.0) + rate
        if not weights:
            return
        part.mark_all(list(weights), assume_unique=True)

        def rate_key(source: int) -> float:
            return canonical_rate(weights[source], rate_digits)

        for marked, rest in part.split_marked():
            # The marked part holds exactly the positive-weight states of one
            # former block; subdivide it further by rate value.
            if rest >= 0:
                register_split(rest, marked, push)
            created = part.split_by_key(marked, rate_key)
            for block in created:
                register_split(marked, block, push)

    def process(splitter, push) -> None:
        kind, index = splitter
        if kind == "compound":
            process_compound(index, push)
        else:
            process_rates(index, push)

    seeds: List[Tuple[str, int]] = []
    if len(compound_blocks[0]) >= 2:
        seeds.append(("compound", 0))
    seeds.extend(("rates", block) for block in part.blocks())
    refine(seeds, process)
    return part.as_sets()


# ---------------------------------------------------------------------------
# weak bisimulation
# ---------------------------------------------------------------------------

def _internal_closure(model: IOIMC) -> List[FrozenSet[int]]:
    """Per-state tau-closure frozensets — **signature reference engine only**.

    The splitter engine never calls this: it shares closure information per
    tau-SCC via :class:`~repro.ioimc.partition.TauCondensation`, which keeps
    the weak path linear in states + transitions where these frozensets are
    quadratic on tau-chains.
    """
    closures: List[FrozenSet[int]] = []
    internal_succ = [model.internal_successors(state) for state in model.states()]
    for start in model.states():
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in internal_succ[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        closures.append(frozenset(seen))
    return closures


def _weak_visible_reach(
    model: IOIMC, closures: Sequence[FrozenSet[int]]
) -> List[Dict[int, FrozenSet[int]]]:
    """Per-state ``τ* a τ*`` reach sets — **signature reference engine only**.

    Implicit input self-loops are taken into account: a state that has no
    explicit transition for an input action can still (weakly) perform it and
    stay (modulo trailing internal moves).
    """
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    reach: List[Dict[int, FrozenSet[int]]] = []
    for state in model.states():
        per_action: Dict[int, set] = {}
        for mid in closures[state]:
            enabled = model.enabled_ids(mid)
            for aid, target in model.interactive_pairs(mid):
                if aid in internal_ids:
                    continue
                per_action.setdefault(aid, set()).update(closures[target])
            for aid in input_ids:
                if aid not in enabled:
                    per_action.setdefault(aid, set()).update(closures[mid])
        reach.append({aid: frozenset(states) for aid, states in per_action.items()})
    return reach


def weak_bisimulation_partition(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> Partition:
    """Coarsest weak bisimulation partition of ``model``.

    Two states are equivalent iff (respecting labels)

    * for every visible action, the classes reachable via a weak move
      (``τ* a τ*``, implicit input self-loops included) coincide,
    * the classes reachable via internal moves alone coincide,
    * the sets of canonical Markovian rate vectors of the *stable* states
      reachable via internal moves coincide (maximal progress means only
      those states can let time pass).
    """
    _check_algorithm(algorithm)
    if algorithm == "signature":
        return _weak_partition_signature(model, respect_labels, rate_digits)
    if _has_no_internal_transitions(model):
        # Without internal moves every tau-closure is a singleton and every
        # state is stable: weak and strong bisimulation coincide, and the
        # strong splitter avoids the condensation and rate-class machinery.
        return _strong_partition_splitter(model, respect_labels, rate_digits)
    return _WeakSplitterEngine(model, respect_labels, rate_digits).state_partition()


def _has_no_internal_transitions(model: IOIMC) -> bool:
    internal_mask = model.signature.internal_mask
    if not internal_mask:
        return True
    return not any(model.enabled_mask(state) & internal_mask for state in model.states())


def _weak_partition_signature(
    model: IOIMC, respect_labels: bool, rate_digits: int
) -> Partition:
    """Signature-refinement reference implementation (seed algorithm)."""
    closures = _internal_closure(model)
    visible_reach = _weak_visible_reach(model, closures)
    stable = [model.is_stable(state) for state in model.states()]

    block_of = _initial_blocks(model, respect_labels)
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            visible_sig = frozenset(
                (action, frozenset(block_of[target] for target in targets))
                for action, targets in visible_reach[state].items()
            )
            tau_sig = frozenset(block_of[target] for target in closures[state])
            rate_vectors = set()
            for target in closures[state]:
                if not stable[target]:
                    continue
                rates: Dict[int, float] = {}
                own_block = block_of[target]
                for succ, rate in model.markovian_dict(target).items():
                    if block_of[succ] == own_block:
                        continue  # ordinary lumpability: ignore intra-class rates
                    rates[block_of[succ]] = rates.get(block_of[succ], 0.0) + rate
                rate_vectors.add(
                    frozenset(
                        (block, canonical_rate(total, rate_digits))
                        for block, total in rates.items()
                    )
                )
            signatures[state] = (visible_sig, tau_sig, frozenset(rate_vectors))
        block_of, changed = _refine_by_signature(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


class _WeakSplitterEngine:
    """Worklist-of-splitters weak bisimulation on the tau-SCC condensation.

    The refinement works on *units* — the states of one tau-SCC sharing one
    label set.  All states of a unit are trivially weakly bisimilar (they
    tau-reach each other), so units are the finest granularity a split can
    ever need; on tau-heavy fused products they are far fewer than states.

    Splitters come in two kinds:

    * a partition block ``B``: split every block by "can tau-reach ``B``" and,
      per visible action ``a``, by "can weakly do ``a`` into ``B``" — both are
      backward tau-reachability sweeps over the condensation from the SCCs
      owning ``B`` (weak in-edges of the splitter only, never the whole
      model);
    * a Markovian *rate class* (stable states with equal canonical rate
      vectors): split every block by "can tau-reach a member of the class".

    When a block splits, the rate vectors of the stable states pointing into
    the moved states (and of the moved/remaining stable states themselves,
    whose own-class exclusion changed) are recomputed and re-bucketed; every
    class whose membership changed re-enters the worklist.  The fixpoint is
    stable under all three predicate families, which is exactly the signature
    engine's equivalence.
    """

    def __init__(self, model: IOIMC, respect_labels: bool, rate_digits: int):
        self.model = model
        self.rate_digits = rate_digits
        self.condensation = TauCondensation(model)
        cond = self.condensation
        num_states = model.num_states
        num_sccs = cond.num_sccs

        # ---- units: (SCC, label set) groups ------------------------------
        self.unit_of_state: List[int] = [0] * num_states
        self.unit_states: List[List[int]] = []
        self.unit_scc: List[int] = []
        self.unit_labels: List[FrozenSet[str]] = []
        self.scc_units: List[List[int]] = [[] for _ in range(num_sccs)]
        for scc in range(num_sccs):
            if respect_labels:
                groups: Dict[FrozenSet[str], List[int]] = {}
                for state in cond.members[scc]:
                    groups.setdefault(model.labels(state), []).append(state)
                ordered = sorted(groups.items(), key=lambda item: min(item[1]))
            else:
                members = cond.members[scc]
                ordered = [(model.labels(members[0]), list(members))]
            for labels, states in ordered:
                unit = len(self.unit_states)
                self.unit_states.append(states)
                self.unit_scc.append(scc)
                self.unit_labels.append(labels)
                self.scc_units[scc].append(unit)
                for state in states:
                    self.unit_of_state[state] = unit

        # ---- static per-SCC indexes --------------------------------------
        internal_ids = model.signature.internal_ids
        input_ids = model.signature.input_ids
        #: Visible in-edges per SCC: (action id, source SCC), deduplicated.
        self.visible_in: List[Set[Tuple[int, int]]] = [set() for _ in range(num_sccs)]
        #: Input actions some member of the SCC has no explicit transition for
        #: (those members carry an implicit weak self-loop).
        self.input_gaps: List[Set[int]] = [set() for _ in range(num_sccs)]
        #: Stable Markovian predecessors per state (only stable states carry
        #: rate vectors in the weak signature).
        self.stable_pred: List[List[Tuple[int, float]]] = [[] for _ in range(num_states)]
        self.unit_stable: List[bool] = [
            all(model.is_stable(state) for state in states)
            for states in self.unit_states
        ]
        for state in range(num_states):
            scc = cond.scc_of[state]
            for aid, target in model.interactive_pairs(state):
                if aid in internal_ids:
                    continue
                self.visible_in[cond.scc_of[target]].add((aid, scc))
            if input_ids:
                enabled = model.enabled_ids(state)
                for aid in input_ids:
                    if aid not in enabled:
                        self.input_gaps[scc].add(aid)
            if model.is_stable(state):
                for target, rate in model.markovian_dict(state).items():
                    self.stable_pred[target].append((state, rate))

        # ---- CSR indexes for the vectorised refinement loop --------------
        # Visible in-edges grouped by target SCC (already deduplicated per
        # target by the set build above): one flat (aid, source) array pair
        # plus offsets, so "all in-edges of a closure" is a single
        # repeat/cumsum gather instead of a Python loop over SCCs.
        edge_aid: List[int] = []
        edge_src: List[int] = []
        edge_counts = np.zeros(num_sccs + 1, dtype=np.int64)
        for target in range(num_sccs):
            edges = self.visible_in[target]
            edge_counts[target + 1] = len(edges)
            for aid, source in edges:
                edge_aid.append(aid)
                edge_src.append(source)
        self._edge_aid = np.asarray(edge_aid, dtype=np.int64)
        self._edge_src = np.asarray(edge_src, dtype=np.int64)
        self._edge_off = np.cumsum(edge_counts)
        # Input gaps per SCC, same layout (the "source" of a gap edge is the
        # SCC itself — the implicit input self-loop).
        gap_aid: List[int] = []
        gap_scc: List[int] = []
        gap_counts = np.zeros(num_sccs + 1, dtype=np.int64)
        for scc in range(num_sccs):
            gaps = self.input_gaps[scc]
            gap_counts[scc + 1] = len(gaps)
            for aid in gaps:
                gap_aid.append(aid)
                gap_scc.append(scc)
        self._gap_aid = np.asarray(gap_aid, dtype=np.int64)
        self._gap_scc = np.asarray(gap_scc, dtype=np.int64)
        self._gap_off = np.cumsum(gap_counts)
        # Exclusive upper bound on the action ids above (the boolean
        # dedup/group scatter of the vectorised path is (bound, num_sccs)).
        top = 0
        if self._edge_aid.size:
            top = int(self._edge_aid.max()) + 1
        if self._gap_aid.size:
            top = max(top, int(self._gap_aid.max()) + 1)
        self._aid_bound = top
        # Units are created in ascending-SCC order, so the units of SCC `s`
        # are exactly the contiguous id range [_unit_off[s], _unit_off[s+1]).
        unit_counts = np.zeros(num_sccs + 1, dtype=np.int64)
        for scc, units in enumerate(self.scc_units):
            unit_counts[scc + 1] = len(units)
        self._unit_off = np.cumsum(unit_counts)
        self._unit_scc_arr = np.asarray(self.unit_scc, dtype=np.int64)
        #: Scratch: composite predicate code per unit, valid for the units
        #: scattered during the current mark/split round only.
        self._unit_code = np.zeros(len(self.unit_states), dtype=np.int64)
        # Dense backward tau-reachability: bit-packed row `s` holds the SCCs
        # that tau-reach `s` (uint8 words, MSB-first to match `unpackbits`).
        # One descending-id sweep (predecessors carry larger ids) ORs each
        # predecessor row in place, so every later closure query is a word-OR
        # reduction plus one `unpackbits` instead of a Python BFS.  Memory is
        # num_sccs^2 *bits*; above the limit the engine falls back to the
        # memoised BFS on the condensation.
        self._ancestors: Optional[np.ndarray] = None
        if 0 < num_sccs <= _DENSE_REACH_LIMIT:
            width = (num_sccs + 7) >> 3
            ancestors = np.zeros((num_sccs, width), dtype=np.uint8)
            for scc in range(num_sccs - 1, -1, -1):
                row = ancestors[scc]
                row[scc >> 3] |= 0x80 >> (scc & 7)
                for predecessor in cond.tau_pred[scc]:
                    row |= ancestors[predecessor]
            self._ancestors = ancestors

        # ---- partition over units ----------------------------------------
        self.part = RefinablePartition(len(self.unit_states))
        if respect_labels and self.part.num_elements:
            self.part.split_by_key(0, lambda unit: self.unit_labels[unit])

        # ---- rate classes over stable units ------------------------------
        self.class_of: Dict[int, int] = {}
        self.class_members: List[Set[int]] = []
        self.class_by_key: Dict[FrozenSet[Tuple[int, float]], int] = {}
        #: Stable units whose rate vector may be stale (re-bucketed in batch
        #: when the next rate-class splitter is processed).
        self._dirty: Set[int] = set()
        for unit, stable in enumerate(self.unit_stable):
            if stable:
                self._assign_rate_class(unit)

        self._refined = False

    # ------------------------------------------------------------ rate classes
    def _vector_key(self, unit: int) -> FrozenSet[Tuple[int, float]]:
        """Canonical rate vector of a stable unit under the current partition."""
        state = self.unit_states[unit][0]  # stable units are singletons
        own_block = self.part.block_of(unit)
        rates: Dict[int, float] = {}
        for target, rate in self.model.markovian_dict(state).items():
            block = self.part.block_of(self.unit_of_state[target])
            if block == own_block:
                continue  # ordinary lumpability: ignore intra-class rates
            rates[block] = rates.get(block, 0.0) + rate
        return frozenset(
            (block, canonical_rate(total, self.rate_digits))
            for block, total in rates.items()
        )

    def _assign_rate_class(self, unit: int) -> Optional[Tuple[int, ...]]:
        """(Re)bucket a stable unit by rate vector; return the changed classes."""
        key = self._vector_key(unit)
        new_class = self.class_by_key.get(key)
        if new_class is None:
            new_class = len(self.class_members)
            self.class_members.append(set())
            self.class_by_key[key] = new_class
        old_class = self.class_of.get(unit)
        if old_class == new_class:
            return None
        self.class_of[unit] = new_class
        self.class_members[new_class].add(unit)
        if old_class is None:
            return (new_class,)
        self.class_members[old_class].discard(unit)
        return (old_class, new_class)

    # ---------------------------------------------------------------- refining
    def _closure_idx(self, seeds) -> np.ndarray:
        """Backward tau-closure of the seed SCCs as an index array."""
        ancestors = self._ancestors
        if ancestors is not None:
            seed_list = seeds if isinstance(seeds, np.ndarray) else list(seeds)
            if len(seed_list) == 1:
                packed = ancestors[int(seed_list[0])]
            else:
                packed = np.bitwise_or.reduce(ancestors[seed_list], axis=0)
            bits = np.unpackbits(packed, count=self.condensation.num_sccs)
            return np.flatnonzero(bits)
        closure = self.condensation.backward_closure_cached(
            seeds if isinstance(seeds, frozenset) else frozenset(int(s) for s in seeds)
        )
        return np.fromiter(closure, dtype=np.int64, count=len(closure))

    def _track_dirty(self, moved: List[int], push) -> None:
        """Queue rate-vector re-bucketing after the pieces in ``moved`` split off.

        Exactly the rate vectors referencing the moved states change: their
        stable Markovian predecessors (wherever those live — this covers
        stable units left behind in the id-keeping remainder with rates into
        a moved piece), plus the moved stable units themselves (their
        own-class exclusion now ends at the new block boundary).  They are
        re-bucketed lazily, in batch, when the next rate-class splitter is
        dequeued.
        """
        part = self.part
        dirty = self._dirty
        freshly_dirty = []
        for piece in moved:
            for unit in part.members(piece):
                if self.unit_stable[unit] and unit not in dirty:
                    dirty.add(unit)
                    freshly_dirty.append(unit)
                for state in self.unit_states[unit]:
                    for source, _rate in self.stable_pred[state]:
                        source_unit = self.unit_of_state[source]
                        if source_unit not in dirty:
                            dirty.add(source_unit)
                            freshly_dirty.append(source_unit)
        for unit in freshly_dirty:
            push(("rates", self.class_of[unit]))

    #: Composite codes carry one predicate per bit of an int64 scatter
    #: buffer; splitters with more predicates fall back to sequential
    #: chunks (equivalent refinement, one extra mark/split round per chunk).
    _CODE_BITS = 62

    #: A splitter whose packed tau-closure has at most this many non-zero
    #: bytes takes the scalar path: dict/set bookkeeping beats the
    #: vectorised gather pipeline's fixed per-call numpy overhead on the
    #: small closures that dominate refinement of bushy products, while
    #: deep tau-chains (large closures) keep the vectorised path.
    _SPARSE_BYTES = 48

    def _finish_binary(self, push) -> None:
        """Split every touched block into marked/unmarked and re-enqueue."""
        for marked, rest in self.part.split_marked():
            if rest < 0:
                continue  # the whole block satisfied the predicate
            push(("block", marked))
            push(("block", rest))
            self._track_dirty([marked], push)

    def _finish_codes(self, key_of, push) -> None:
        """Split every touched block by its members' codes and re-enqueue.

        Splitting each dirty block by its members' composite codes is
        equivalent to splitting by each predicate in sequence — both reach
        the common refinement and every created piece is re-enqueued — but
        costs a single mark/split cycle per splitter instead of one per
        predicate.
        """
        part = self.part
        for marked, rest in part.split_marked():
            created = part.split_by_key(marked, key_of)
            if rest < 0:
                if not created:
                    continue  # uniform codes across the whole block
                pieces = [marked, *created]
                moved = created
            else:
                pieces = [rest, marked, *created]
                moved = [marked, *created]
            for piece in pieces:
                push(("block", piece))
            self._track_dirty(moved, push)

    def _or_rows(self, ids: List[int]) -> np.ndarray:
        """OR of the packed ancestor rows ``ids`` (chained ``|`` for small
        sets — ``ufunc.reduce`` carries ~10x the fixed overhead there)."""
        ancestors = self._ancestors
        if len(ids) == 1:
            return ancestors[ids[0]]
        if len(ids) <= 8:
            acc = ancestors[ids[0]] | ancestors[ids[1]]
            for scc in ids[2:]:
                acc |= ancestors[scc]
            return acc
        return np.bitwise_or.reduce(ancestors[ids], axis=0)

    @staticmethod
    def _decode(packed: np.ndarray, nzb: np.ndarray) -> List[int]:
        """Set bits of a packed row as a sorted id list (sparse byte walk)."""
        out: List[int] = []
        extend = out.extend
        for base, byte in zip((nzb << 3).tolist(), packed[nzb].tolist()):
            extend(base + offset for offset in _BYTE_BITS[byte])
        return out

    def _apply_binary(self, sccs: np.ndarray, push) -> None:
        """Split every block by membership in the single predicate ``sccs``."""
        units = _csr_flat(self._unit_off, sccs)
        if units.size:
            self.part.mark_all(units, assume_unique=True)
            self._finish_binary(push)

    def _apply_binary_seq(self, reach, push) -> None:
        """Binary split by a small iterable of closure SCCs (scalar marks)."""
        mark = self.part.mark
        scc_units = self.scc_units
        for scc in reach:
            for unit in scc_units[scc]:
                mark(unit)
        self._finish_binary(push)

    def _scatter_and_split(self, sccs: np.ndarray, codes: np.ndarray, push) -> None:
        """One vectorised mark/split round over the touched SCCs and codes."""
        part = self.part
        unit_off = self._unit_off
        units = _csr_flat(unit_off, sccs)
        if not units.size:
            return
        counts = unit_off[sccs + 1] - unit_off[sccs]
        unit_code = self._unit_code
        unit_code[units] = np.repeat(codes, counts)
        part.mark_all(units, assume_unique=True)
        self._finish_codes(unit_code.__getitem__, push)

    def _apply_codes(self, predicates: List[np.ndarray], push) -> None:
        """Fold closure index-array ``predicates`` into codes and split."""
        for begin in range(0, len(predicates), self._CODE_BITS):
            chunk = predicates[begin : begin + self._CODE_BITS]
            if len(chunk) == 1:
                self._apply_binary(chunk[0], push)
                continue
            idx = np.concatenate(chunk)
            if not idx.size:
                continue
            bits = np.concatenate(
                [
                    np.full(pred.size, 1 << position, dtype=np.int64)
                    for position, pred in enumerate(chunk)
                ]
            )
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            bits = bits[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(idx[1:] != idx[:-1]) + 1)
            )
            self._scatter_and_split(
                idx[starts], np.bitwise_or.reduceat(bits, starts), push
            )

    def _process_sparse(self, reach: List[int], push) -> None:
        """Scalar path for splitters with small tau-closures.

        Builds the visible-action predicates with dict/set bookkeeping and
        marks units one by one — on the ~tens-of-SCCs closures that dominate
        refinement this beats the vectorised pipeline's fixed numpy call
        overhead — then runs the same composite-code mark/split rounds as
        the dense path.
        """
        visible_in = self.visible_in
        input_gaps = self.input_gaps
        buckets: Dict[int, Set[int]] = {}
        for scc in reach:
            for aid, source in visible_in[scc]:
                bucket = buckets.get(aid)
                if bucket is None:
                    buckets[aid] = {source}
                else:
                    bucket.add(source)
            for aid in input_gaps[scc]:
                bucket = buckets.get(aid)
                if bucket is None:
                    buckets[aid] = {scc}
                else:
                    bucket.add(scc)
        if not buckets:
            self._apply_binary_seq(reach, push)
            return
        predicates: List[List[int]] = [reach]
        for sources in buckets.values():
            packed = self._or_rows(list(sources))
            predicates.append(self._decode(packed, packed.nonzero()[0]))
        mark = self.part.mark
        scc_units = self.scc_units
        for begin in range(0, len(predicates), self._CODE_BITS):
            chunk = predicates[begin : begin + self._CODE_BITS]
            if len(chunk) == 1:
                self._apply_binary_seq(chunk[0], push)
                continue
            codes: Dict[int, int] = {}
            get = codes.get
            bit = 1
            for predicate in chunk:
                for scc in predicate:
                    codes[scc] = get(scc, 0) | bit
                bit <<= 1
            unit_code: Dict[int, int] = {}
            for scc, value in codes.items():
                for unit in scc_units[scc]:
                    mark(unit)
                    unit_code[unit] = value
            self._finish_codes(unit_code.__getitem__, push)

    def _apply_codes(self, predicates: List[np.ndarray], push) -> None:
        """Fold closure index-array ``predicates`` into codes and split."""
        for begin in range(0, len(predicates), self._CODE_BITS):
            chunk = predicates[begin : begin + self._CODE_BITS]
            if len(chunk) == 1:
                self._apply_binary(chunk[0], push)
                continue
            idx = np.concatenate(chunk)
            if not idx.size:
                continue
            bits = np.concatenate(
                [
                    np.full(pred.size, 1 << position, dtype=np.int64)
                    for position, pred in enumerate(chunk)
                ]
            )
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            bits = bits[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(idx[1:] != idx[:-1]) + 1)
            )
            self._scatter_and_split(
                idx[starts], np.bitwise_or.reduceat(bits, starts), push
            )

    def _flush_dirty(self, push) -> None:
        """Re-bucket every stale stable unit; re-enqueue the changed classes."""
        for unit in self._dirty:
            changed = self._assign_rate_class(unit)
            if changed:
                for rate_class in changed:
                    push(("rates", rate_class))
        self._dirty.clear()

    def _process(self, splitter, push) -> None:
        kind, index = splitter
        ancestors = self._ancestors
        if kind == "rates":
            self._flush_dirty(push)
            members = self.class_members[index]
            if not members:
                return  # class emptied by re-bucketing
            seeds = {self.unit_scc[unit] for unit in members}
            if ancestors is None:
                self._apply_binary(self._closure_idx(frozenset(seeds)), push)
                return
            packed = self._or_rows(list(seeds))
            nzb = packed.nonzero()[0]
            if nzb.size <= self._SPARSE_BYTES:
                self._apply_binary_seq(self._decode(packed, nzb), push)
            else:
                self._apply_binary(
                    np.flatnonzero(
                        np.unpackbits(packed, count=self.condensation.num_sccs)
                    ),
                    push,
                )
            return

        units = self.part.members(index)  # snapshot
        # tau predicate (first entry): can reach the splitter via internal
        # moves alone.  Visible predicates (one per action): a weak `a` move
        # into the splitter is an `a` transition whose target tau-reaches the
        # splitter, taken from any state that tau-reaches the transition's
        # source; implicit input self-loops contribute the gap SCCs inside
        # the reach themselves.
        num_sccs = self.condensation.num_sccs
        if ancestors is None:
            self._process_fallback(units, push)
            return
        if len(units) == 1:
            tau_packed = ancestors[self.unit_scc[units[0]]]
        elif len(units) <= 8:
            tau_packed = self._or_rows([self.unit_scc[unit] for unit in units])
        else:
            tau_packed = np.bitwise_or.reduce(
                ancestors[self._unit_scc_arr[units]], axis=0
            )
        nzb = tau_packed.nonzero()[0]
        if nzb.size <= self._SPARSE_BYTES:
            self._process_sparse(self._decode(tau_packed, nzb), push)
            return
        # Vectorised path for large closures (deep tau structure): the CSR
        # gathers pull every in-edge of the closure in one shot, a stable
        # argsort groups them by action, and the packed ancestor rows are
        # OR-reduced per group (2-D ``reduceat`` is pathologically slow
        # here, a per-group ``reduce`` over the contiguous gather is not);
        # membership is then tested only on the SCCs of the union, so no
        # predicate pays an O(num_sccs) scan of its own.
        reach = np.flatnonzero(np.unpackbits(tau_packed, count=num_sccs))
        flat = _csr_flat(self._edge_off, reach)
        aids = self._edge_aid[flat]
        sources = self._edge_src[flat]
        gap_flat = _csr_flat(self._gap_off, reach)
        if gap_flat.size:
            aids = np.concatenate([aids, self._gap_aid[gap_flat]])
            sources = np.concatenate([sources, self._gap_scc[gap_flat]])
        if not aids.size:
            self._apply_binary(reach, push)
            return
        # Dedup + group by action via one boolean scatter — a hash-based
        # `np.unique` on a combined key is far slower on the big splitters
        # that reach this path, and the same source feeds many closure
        # targets, so every duplicate would gather a full ancestor row in
        # the per-group OR below.
        seen = np.zeros((self._aid_bound, num_sccs), dtype=bool)
        seen[aids, sources] = True
        groups = np.flatnonzero(seen.any(axis=1))
        group_packed = np.empty((groups.size, ancestors.shape[1]), dtype=np.uint8)
        for position, aid in enumerate(groups.tolist()):
            srcs = seen[aid].nonzero()[0]
            if srcs.size == 1:
                group_packed[position] = ancestors[srcs[0]]
            else:
                np.bitwise_or.reduce(
                    ancestors[srcs], axis=0, out=group_packed[position]
                )
        all_packed = np.concatenate([tau_packed[None, :], group_packed], axis=0)
        for begin in range(0, all_packed.shape[0], self._CODE_BITS):
            chunk = all_packed[begin : begin + self._CODE_BITS]
            if chunk.shape[0] == 1:
                self._apply_binary(
                    np.flatnonzero(np.unpackbits(chunk[0], count=num_sccs)), push
                )
                continue
            union = np.bitwise_or.reduce(chunk, axis=0)
            touched = np.flatnonzero(np.unpackbits(union, count=num_sccs))
            membership = (chunk[:, touched >> 3] & _BIT_MASK[touched & 7]) != 0
            codes = _CODE_WEIGHTS[: chunk.shape[0]] @ membership
            self._scatter_and_split(touched, codes, push)

    def _process_fallback(self, units: List[int], push) -> None:
        """Block-splitter path when the packed reach matrix is unavailable
        (models above ``_DENSE_REACH_LIMIT``): memoised BFS closures per
        (action, sources) group, folded into composite codes."""
        num_sccs = self.condensation.num_sccs
        seeds = frozenset(self.unit_scc[unit] for unit in units)
        reach = self._closure_idx(seeds)
        flat = _csr_flat(self._edge_off, reach)
        aids = self._edge_aid[flat]
        sources = self._edge_src[flat]
        gap_flat = _csr_flat(self._gap_off, reach)
        if gap_flat.size:
            aids = np.concatenate([aids, self._gap_aid[gap_flat]])
            sources = np.concatenate([sources, self._gap_scc[gap_flat]])
        if not aids.size:
            self._apply_binary(reach, push)
            return
        key = np.unique(aids * num_sccs + sources)
        group_src = key % num_sccs
        group_aid = key // num_sccs
        starts = np.concatenate(
            ([0], np.flatnonzero(group_aid[1:] != group_aid[:-1]) + 1)
        )
        predicates = [reach]
        bounds = [*starts.tolist(), key.size]
        for position in range(len(bounds) - 1):
            group = group_src[bounds[position] : bounds[position + 1]]
            predicates.append(self._closure_idx(group))
        self._apply_codes(predicates, push)

    def _run(self) -> None:
        if self._refined:
            return
        splitters = [("block", block) for block in self.part.blocks()]
        splitters.extend(("rates", index) for index in range(len(self.class_members)))
        refine(splitters, self._process)
        self._refined = True

    # ----------------------------------------------------------------- results
    def state_partition(self) -> Partition:
        self._run()
        blocks = [
            frozenset(
                state
                for unit in self.part.members(block)
                for state in self.unit_states[unit]
            )
            for block in self.part.blocks()
        ]
        return _canonical_partition(blocks)

    def quotient(self, name: Optional[str] = None) -> IOIMC:
        return _build_weak_quotient(
            self.model, self.condensation, self.state_partition(), name
        )


# ---------------------------------------------------------------------------
# quotient construction
# ---------------------------------------------------------------------------

def _block_map(partition: Partition) -> Dict[int, int]:
    block_of: Dict[int, int] = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    return block_of


def quotient_strong(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a strong bisimulation partition."""
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    quotient = IOIMC(name if name is not None else model.name, model.signature)
    representatives = [min(block) for block in partition]
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        pairs: Dict[Tuple[int, int], None] = {}
        for aid, target in model.interactive_pairs(rep):
            target_block = block_of[target]
            if target_block == block_id and aid in input_ids:
                continue  # implicit input self-loop
            pairs[(aid, target_block)] = None
        if pairs:
            quotient._add_interactive_bulk(block_id, list(pairs))
        rates: Dict[int, float] = {}
        for target, rate in model.markovian_dict(rep).items():
            if block_of[target] == block_id:
                continue  # intra-class movement is invisible in the quotient
            rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
        for target_block, total in rates.items():
            quotient.add_markovian(block_id, total, target_block)
    quotient.set_initial(block_of[model.initial])
    return quotient


def _build_weak_quotient(
    model: IOIMC,
    condensation: TauCondensation,
    partition: Partition,
    name: str | None = None,
) -> IOIMC:
    """Weak quotient from a partition and the shared tau-SCC condensation.

    One id-ordered sweep over the condensation (tau successors first, see
    :class:`~repro.ioimc.partition.TauCondensation`) computes, per SCC, the
    blocks reachable via internal moves and via ``τ* a τ*`` per visible
    action.  The per-SCC sets contain block ids and are interned, so shared
    tails of tau-chains cost one object — no per-state closure frozensets.
    """
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    scc_of = condensation.scc_of

    interned: Dict[FrozenSet[int], FrozenSet[int]] = {}

    def intern(blocks: Set[int]) -> FrozenSet[int]:
        key = frozenset(blocks)
        return interned.setdefault(key, key)

    num_sccs = condensation.num_sccs
    # First pass, in id order (tau successors first): blocks reachable via
    # internal moves alone.  Visible targets may live in later SCCs, so the
    # visible reach needs a second pass once every tau closure is known.
    tau_blocks: List[FrozenSet[int]] = [frozenset()] * num_sccs
    for scc in range(num_sccs):
        reach: Set[int] = {block_of[state] for state in condensation.members[scc]}
        for successor in condensation.tau_succ[scc]:
            reach |= tau_blocks[successor]
        tau_blocks[scc] = intern(reach)
    visible: List[Dict[int, FrozenSet[int]]] = [{} for _ in range(num_sccs)]

    def merge(per_action: Dict[int, FrozenSet[int]], aid: int, blocks: FrozenSet[int]) -> None:
        # Every value is an interned frozenset, so equal sets are the same
        # object and the identity/subset checks skip most re-unions on
        # shared tau-chain tails.
        current = per_action.get(aid)
        if current is None:
            per_action[aid] = blocks
        elif current is not blocks and not blocks <= current:
            per_action[aid] = intern(current | blocks)

    for scc in range(num_sccs):  # id order again: tau successors come first
        per_action: Dict[int, FrozenSet[int]] = {}
        for successor in condensation.tau_succ[scc]:
            for aid, blocks in visible[successor].items():
                merge(per_action, aid, blocks)
        closure_blocks = tau_blocks[scc]
        for state in condensation.members[scc]:
            for aid, target in model.interactive_pairs(state):
                if aid in internal_ids:
                    continue
                merge(per_action, aid, tau_blocks[scc_of[target]])
            if input_ids:
                enabled = model.enabled_ids(state)
                for aid in input_ids:
                    if aid not in enabled:
                        merge(per_action, aid, closure_blocks)
        visible[scc] = per_action

    stable = [model.is_stable(state) for state in model.states()]
    internal_actions = sorted(model.signature.internals)
    tau_id = intern_action(internal_actions[0]) if internal_actions else None

    quotient = IOIMC(name if name is not None else model.name, model.signature)
    for block_id, block in enumerate(partition):
        rep = min(block)
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")

    for block_id, block in enumerate(partition):
        rep = min(block)
        rep_scc = scc_of[rep]

        pairs: List[Tuple[int, int]] = []
        for aid, target_blocks in visible[rep_scc].items():
            is_input = aid in input_ids
            for target_block in sorted(target_blocks):
                if target_block == block_id and is_input:
                    continue  # implicit input self-loop
                pairs.append((aid, target_block))

        tau_targets = set(tau_blocks[rep_scc]) - {block_id}
        if tau_targets and tau_id is None:
            raise AssertionError(
                "internal moves present but the signature declares no internal action"
            )
        for target_block in sorted(tau_targets):
            pairs.append((tau_id, target_block))
        if pairs:
            quotient._add_interactive_bulk(block_id, pairs)

        stable_member = next((state for state in sorted(block) if stable[state]), None)
        if stable_member is not None:
            rates: Dict[int, float] = {}
            for target, rate in model.markovian_dict(stable_member).items():
                if block_of[target] == block_id:
                    continue  # intra-class movement is invisible in the quotient
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            for target_block, total in rates.items():
                quotient.add_markovian(block_id, total, target_block)

    quotient.set_initial(block_of[model.initial])
    return quotient


def quotient_weak(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a weak bisimulation partition.

    Per block the construction uses a representative's *weak* transitions:

    * visible actions: one transition per block weakly reachable (input
      self-block loops stay implicit);
    * internal moves: one ``τ`` transition per distinct block reachable via
      internal moves (self-block loops are dropped — weak bisimulation is
      insensitive to them);
    * Markovian transitions: blocks containing a stable state carry that
      state's aggregate rate vector (all stable members of a block agree);
      blocks without stable states are vanishing and get no rates.

    The weak reach sets are derived from the tau-SCC condensation; prefer
    :func:`minimize_weak`, which shares one condensation between the
    partition refinement and this construction.
    """
    return _build_weak_quotient(model, TauCondensation(model), partition, name)


def minimize_strong(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> IOIMC:
    """Minimise ``model`` modulo strong bisimulation."""
    partition = strong_bisimulation_partition(
        model, respect_labels=respect_labels, algorithm=algorithm, rate_digits=rate_digits
    )
    return quotient_strong(model, partition).restrict_to_reachable(model.name)


def minimize_weak(
    model: IOIMC,
    respect_labels: bool = True,
    algorithm: str = "splitter",
    rate_digits: int = DEFAULT_RATE_DIGITS,
) -> IOIMC:
    """Minimise ``model`` modulo weak bisimulation.

    With the default splitter engine one tau-SCC condensation is shared
    between the partition refinement and the quotient construction, so the
    internal-closure work happens exactly once per minimisation.
    """
    _check_algorithm(algorithm)
    if algorithm == "splitter":
        if _has_no_internal_transitions(model):
            partition = _strong_partition_splitter(model, respect_labels, rate_digits)
            quotient = _build_weak_quotient(model, TauCondensation(model), partition)
        else:
            engine = _WeakSplitterEngine(model, respect_labels, rate_digits)
            quotient = engine.quotient()
    else:
        partition = _weak_partition_signature(model, respect_labels, rate_digits)
        quotient = quotient_weak(model, partition)
    return quotient.restrict_to_reachable(model.name)
