"""Strong and weak bisimulation minimisation for I/O-IMC.

Aggregation — replacing an I/O-IMC by its bisimulation quotient — is what makes
the compositional approach of the paper scale: after every composition step the
intermediate model is minimised, so the state space of the product never comes
close to the monolithic Markov chain built by DIFTree.

Two equivalences are implemented:

* **Strong bisimulation** — interactive transitions must be matched step by
  step and the aggregate Markovian rate into every equivalence class must
  coincide (ordinary lumpability).  Simple, always applicable.
* **Weak bisimulation** — internal (hidden) actions are abstracted away: weak
  interactive moves (``τ* a τ*``) must be matched, and only *stable* states
  (states without internal transitions) reached via internal moves need to
  agree on their Markovian rate classes.  This is the equivalence used in the
  paper; it merges the interleaving diamonds created by hiding synchronised
  failure/activation signals and therefore reduces much more aggressively.

Both are computed by signature-based partition refinement.  The quotient
constructions preserve state labels and the analysed reliability measures.

Maximal progress should be applied *before* minimisation (the reduction
pipeline in :mod:`repro.ioimc.reduction` does so); the algorithms here work on
the transitions they are given.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .actions import intern_action
from .model import IOIMC

Partition = List[FrozenSet[int]]

#: Number of significant digits used when comparing aggregate Markovian rates.
_RATE_DIGITS = 10


def _canonical_rate(value: float) -> float:
    """Round ``value`` to a canonical representation for signature comparison."""
    if value == 0.0:
        return 0.0
    magnitude = int(math.floor(math.log10(abs(value))))
    return round(value, _RATE_DIGITS - magnitude)


def _initial_blocks(model: IOIMC, respect_labels: bool) -> Dict[int, int]:
    """Initial partition map: states grouped by their label sets."""
    if not respect_labels:
        return {state: 0 for state in model.states()}
    block_ids: Dict[FrozenSet[str], int] = {}
    block_of: Dict[int, int] = {}
    for state in model.states():
        labels = model.labels(state)
        if labels not in block_ids:
            block_ids[labels] = len(block_ids)
        block_of[state] = block_ids[labels]
    return block_of


def _blocks_from_map(block_of: Dict[int, int]) -> Partition:
    grouped: Dict[int, set] = {}
    for state, block in block_of.items():
        grouped.setdefault(block, set()).add(state)
    return [frozenset(states) for _block, states in sorted(grouped.items())]


def _refine(block_of: Dict[int, int], signatures: Dict[int, object]) -> Tuple[Dict[int, int], bool]:
    """Split blocks by signature; return the new map and whether it changed."""
    next_ids: Dict[Tuple[int, object], int] = {}
    new_map: Dict[int, int] = {}
    for state, old_block in block_of.items():
        key = (old_block, signatures[state])
        if key not in next_ids:
            next_ids[key] = len(next_ids)
        new_map[state] = next_ids[key]
    changed = len(next_ids) != len(set(block_of.values()))
    return new_map, changed


# ---------------------------------------------------------------------------
# strong bisimulation
# ---------------------------------------------------------------------------

def strong_bisimulation_partition(model: IOIMC, respect_labels: bool = True) -> Partition:
    """Coarsest strong bisimulation partition of ``model``.

    Interactive signature: for every action the set of target blocks (implicit
    input self-loops included).  Markovian signature: aggregate rate into every
    block.
    """
    block_of = _initial_blocks(model, respect_labels)
    input_ids = model.signature.input_ids
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            interactive: Dict[int, set] = {}
            enabled = model.enabled_ids(state)
            for aid, target in model.interactive_pairs(state):
                interactive.setdefault(aid, set()).add(block_of[target])
            for aid in input_ids:
                if aid not in enabled:
                    interactive.setdefault(aid, set()).add(block_of[state])
            # Ordinary lumpability: rates into the state's own class are
            # irrelevant (movement inside the class does not change the class,
            # and the rates towards every other class are required to agree).
            rates: Dict[int, float] = {}
            own_block = block_of[state]
            for target, rate in model.markovian_dict(state).items():
                if block_of[target] == own_block:
                    continue
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            signatures[state] = (
                frozenset((aid, frozenset(blocks)) for aid, blocks in interactive.items()),
                frozenset((block, _canonical_rate(total)) for block, total in rates.items()),
            )
        block_of, changed = _refine(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


# ---------------------------------------------------------------------------
# weak bisimulation
# ---------------------------------------------------------------------------

def _internal_closure(model: IOIMC) -> List[FrozenSet[int]]:
    """For every state, the set of states reachable via internal transitions."""
    closures: List[FrozenSet[int]] = []
    internal_succ = [model.internal_successors(state) for state in model.states()]
    for start in model.states():
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in internal_succ[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        closures.append(frozenset(seen))
    return closures


def _weak_visible_reach(
    model: IOIMC, closures: Sequence[FrozenSet[int]]
) -> List[Dict[int, FrozenSet[int]]]:
    """For every state and visible action id, the states reachable via ``τ* a τ*``.

    Implicit input self-loops are taken into account: a state that has no
    explicit transition for an input action can still (weakly) perform it and
    stay (modulo trailing internal moves).
    """
    input_ids = model.signature.input_ids
    internal_ids = model.signature.internal_ids
    reach: List[Dict[int, FrozenSet[int]]] = []
    for state in model.states():
        per_action: Dict[int, set] = {}
        for mid in closures[state]:
            enabled = model.enabled_ids(mid)
            for aid, target in model.interactive_pairs(mid):
                if aid in internal_ids:
                    continue
                per_action.setdefault(aid, set()).update(closures[target])
            for aid in input_ids:
                if aid not in enabled:
                    per_action.setdefault(aid, set()).update(closures[mid])
        reach.append({aid: frozenset(states) for aid, states in per_action.items()})
    return reach


def weak_bisimulation_partition(model: IOIMC, respect_labels: bool = True) -> Partition:
    """Coarsest weak bisimulation partition of ``model``.

    The signature of a state consists of

    * for every visible action, the blocks reachable via a weak move,
    * the blocks reachable via internal moves alone,
    * the set of canonical Markovian rate vectors of the *stable* states
      reachable via internal moves (maximal progress means only those states
      can let time pass).
    """
    closures = _internal_closure(model)
    visible_reach = _weak_visible_reach(model, closures)
    stable = [model.is_stable(state) for state in model.states()]

    block_of = _initial_blocks(model, respect_labels)
    while True:
        signatures: Dict[int, object] = {}
        for state in model.states():
            visible_sig = frozenset(
                (action, frozenset(block_of[target] for target in targets))
                for action, targets in visible_reach[state].items()
            )
            tau_sig = frozenset(block_of[target] for target in closures[state])
            rate_vectors = set()
            for target in closures[state]:
                if not stable[target]:
                    continue
                rates: Dict[int, float] = {}
                own_block = block_of[target]
                for succ, rate in model.markovian_dict(target).items():
                    if block_of[succ] == own_block:
                        continue  # ordinary lumpability: ignore intra-class rates
                    rates[block_of[succ]] = rates.get(block_of[succ], 0.0) + rate
                rate_vectors.add(
                    frozenset((block, _canonical_rate(total)) for block, total in rates.items())
                )
            signatures[state] = (visible_sig, tau_sig, frozenset(rate_vectors))
        block_of, changed = _refine(block_of, signatures)
        if not changed:
            return _blocks_from_map(block_of)


# ---------------------------------------------------------------------------
# quotient construction
# ---------------------------------------------------------------------------

def _block_map(partition: Partition) -> Dict[int, int]:
    block_of: Dict[int, int] = {}
    for block_id, block in enumerate(partition):
        for state in block:
            block_of[state] = block_id
    return block_of


def quotient_strong(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a strong bisimulation partition."""
    block_of = _block_map(partition)
    input_ids = model.signature.input_ids
    quotient = IOIMC(name if name is not None else model.name, model.signature)
    representatives = [min(block) for block in partition]
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")
    for block_id, block in enumerate(partition):
        rep = representatives[block_id]
        for aid, target in model.interactive_pairs(rep):
            target_block = block_of[target]
            if target_block == block_id and aid in input_ids:
                continue  # implicit input self-loop
            quotient.add_interactive_id(block_id, aid, target_block)
        rates: Dict[int, float] = {}
        for target, rate in model.markovian_dict(rep).items():
            if block_of[target] == block_id:
                continue  # intra-class movement is invisible in the quotient
            rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
        for target_block, total in rates.items():
            quotient.add_markovian(block_id, total, target_block)
    quotient.set_initial(block_of[model.initial])
    return quotient


def quotient_weak(model: IOIMC, partition: Partition, name: str | None = None) -> IOIMC:
    """Quotient of ``model`` under a weak bisimulation partition.

    Per block the construction uses a representative's *weak* transitions:

    * visible actions: one transition per block weakly reachable (input
      self-block loops stay implicit);
    * internal moves: one ``τ`` transition per distinct block reachable via
      internal moves (self-block loops are dropped — weak bisimulation is
      insensitive to them);
    * Markovian transitions: blocks containing a stable state carry that
      state's aggregate rate vector (all stable members of a block agree);
      blocks without stable states are vanishing and get no rates.
    """
    block_of = _block_map(partition)
    closures = _internal_closure(model)
    visible_reach = _weak_visible_reach(model, closures)
    stable = [model.is_stable(state) for state in model.states()]
    input_ids = model.signature.input_ids

    internal_actions = sorted(model.signature.internals)
    tau_id = intern_action(internal_actions[0]) if internal_actions else None

    quotient = IOIMC(name if name is not None else model.name, model.signature)
    for block_id, block in enumerate(partition):
        rep = min(block)
        quotient.add_state(labels=model.labels(rep), name=f"B{block_id}")

    for block_id, block in enumerate(partition):
        rep = min(block)
        stable_member = next((state for state in sorted(block) if stable[state]), None)

        for aid, targets in visible_reach[rep].items():
            is_input = aid in input_ids
            target_blocks = {block_of[target] for target in targets}
            for target_block in sorted(target_blocks):
                if target_block == block_id and is_input:
                    continue  # implicit input self-loop
                quotient.add_interactive_id(block_id, aid, target_block)

        tau_targets = {block_of[target] for target in closures[rep]} - {block_id}
        if tau_targets and tau_id is None:
            raise AssertionError(
                "internal moves present but the signature declares no internal action"
            )
        for target_block in sorted(tau_targets):
            quotient.add_interactive_id(block_id, tau_id, target_block)

        if stable_member is not None:
            rates: Dict[int, float] = {}
            for target, rate in model.markovian_dict(stable_member).items():
                if block_of[target] == block_id:
                    continue  # intra-class movement is invisible in the quotient
                rates[block_of[target]] = rates.get(block_of[target], 0.0) + rate
            for target_block, total in rates.items():
                quotient.add_markovian(block_id, total, target_block)

    quotient.set_initial(block_of[model.initial])
    return quotient


def minimize_strong(model: IOIMC, respect_labels: bool = True) -> IOIMC:
    """Minimise ``model`` modulo strong bisimulation."""
    partition = strong_bisimulation_partition(model, respect_labels=respect_labels)
    return quotient_strong(model, partition).restrict_to_reachable(model.name)


def minimize_weak(model: IOIMC, respect_labels: bool = True) -> IOIMC:
    """Minimise ``model`` modulo weak bisimulation."""
    partition = weak_bisimulation_partition(model, respect_labels=respect_labels)
    return quotient_weak(model, partition).restrict_to_reachable(model.name)
