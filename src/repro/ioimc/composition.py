"""Parallel composition of input/output interactive Markov chains.

Composition follows the input/output automata discipline used by the paper
(Section 3):

* Components synchronise on *shared visible actions*.  If the action is an
  output of one component, that component decides when it happens and every
  component having it as an input reacts immediately (input-enabledness makes
  this always possible).  The action remains an output of the composite so
  that further components can still listen to it.
* An action that is an input of several components and an output of none is
  driven by the environment; all listening components react simultaneously and
  the action stays an input of the composite.
* Two components may never share an output action
  (:class:`~repro.errors.CompositionError`).
* Markovian transitions and non-shared actions interleave.
* Internal actions never synchronise.

The composite is built by reachability exploration from the pair of initial
states, so unreachable parts of the naive product are never materialised.  The
exploration runs entirely on interned action ids (see
:mod:`repro.ioimc.actions`), never comparing action names.

Fused reduction
---------------

``parallel(..., fuse=True)`` additionally applies two measure-preserving
reductions *during* exploration instead of on the materialised product:

* **maximal progress** — a composite state is urgent iff either component
  state is urgent, so Markovian transitions of urgent composite states (and
  every state reachable only through them) are never generated;
* **internal self-loop elimination** — a component's internal self-loop
  composes to a composite self-loop and is skipped.

This prunes the τ-interleaving diamonds created by hiding before they are
materialised, which lowers the *peak* product sizes the aggregation engine
records.  The result equals ``restrict_to_reachable(remove_internal_self_loops
(apply_maximal_progress(parallel(...))))`` state-for-state, so running the
usual aggregation pipeline afterwards yields the identical reduced model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CompositionError, SignatureError
from .model import IOIMC


def parallel(
    left: IOIMC,
    right: IOIMC,
    name: Optional[str] = None,
    *,
    fuse: bool = False,
    urgent_outputs: bool = True,
) -> IOIMC:
    """Parallel compose two I/O-IMC and return the reachable composite.

    With ``fuse=True`` maximal progress and internal self-loop elimination are
    applied on the fly (see the module docstring); ``urgent_outputs`` selects
    the I/O-IMC urgency rule (outputs are urgent, the paper's semantics) or
    the classical open-IMC rule (only internal actions urgent).
    """
    try:
        signature = left.signature.merge(right.signature)
    except SignatureError as exc:
        raise CompositionError(
            f"cannot compose {left.name!r} and {right.name!r}: {exc}"
        ) from exc

    composite = IOIMC(name if name is not None else f"{left.name}||{right.name}", signature)

    lsig = left.signature
    rsig = right.signature
    shared_ids = lsig.visible_ids & rsig.visible_ids
    left_only_ids = lsig.visible_ids - shared_ids
    right_only_ids = rsig.visible_ids - shared_ids
    left_internal = lsig.internal_ids
    right_internal = rsig.internal_ids
    left_out = lsig.output_ids
    right_out = rsig.output_ids

    index: Dict[Tuple[int, int], int] = {}
    worklist: List[Tuple[int, int]] = []

    def intern(pair: Tuple[int, int]) -> int:
        state = index.get(pair)
        if state is None:
            s, t = pair
            state = composite.add_state(
                labels=left.labels(s) | right.labels(t),
                name=f"{left.state_name(s)}|{right.state_name(t)}",
            )
            index[pair] = state
            worklist.append(pair)
        return state

    initial = (left.initial, right.initial)
    composite.set_initial(intern(initial))

    add_interactive = composite.add_interactive_id
    add_markovian = composite.add_markovian

    while worklist:
        s, t = pair = worklist.pop()
        source = index[pair]

        # Markovian transitions interleave — unless the composite state is
        # urgent and fused maximal progress prunes them up front.  A composite
        # state is urgent iff either component state is (a component's enabled
        # output or internal transition is always enabled in the composite).
        if fuse:
            if urgent_outputs:
                urgent = left.is_urgent(s) or right.is_urgent(t)
            else:
                urgent = not (left.is_stable(s) and right.is_stable(t))
        else:
            urgent = False
        if not urgent:
            for rate, s_next in left.markovian_out(s):
                add_markovian(source, rate, intern((s_next, t)))
            for rate, t_next in right.markovian_out(t):
                add_markovian(source, rate, intern((s, t_next)))

        # Internal and non-shared visible actions interleave (internal actions
        # never synchronise; implicit input self-loops stay implicit).
        for aid, s_next in left.interactive_pairs(s):
            if aid in left_internal:
                if fuse and s_next == s:
                    continue  # composite internal self-loop
                add_interactive(source, aid, intern((s_next, t)))
            elif aid in left_only_ids:
                add_interactive(source, aid, intern((s_next, t)))
        for aid, t_next in right.interactive_pairs(t):
            if aid in right_internal:
                if fuse and t_next == t:
                    continue  # composite internal self-loop
                add_interactive(source, aid, intern((s, t_next)))
            elif aid in right_only_ids:
                add_interactive(source, aid, intern((s, t_next)))

        # Shared visible actions synchronise.  Only actions enabled in at
        # least one component can produce a transition.
        shared_enabled = (left.enabled_ids(s) | right.enabled_ids(t)) & shared_ids
        for aid in shared_enabled:
            if aid in left_out:
                driver_moves = left.interactive_on_id(s, aid)
                if not driver_moves:
                    continue
                reactions = right.interactive_on_id(t, aid) or (t,)
                for s_next in driver_moves:
                    for t_next in reactions:
                        add_interactive(source, aid, intern((s_next, t_next)))
            elif aid in right_out:
                driver_moves = right.interactive_on_id(t, aid)
                if not driver_moves:
                    continue
                reactions = left.interactive_on_id(s, aid) or (s,)
                for t_next in driver_moves:
                    for s_next in reactions:
                        add_interactive(source, aid, intern((s_next, t_next)))
            else:
                # Input of both components: driven by the environment.
                left_moves = left.interactive_on_id(s, aid)
                right_moves = right.interactive_on_id(t, aid)
                for s_next in left_moves or (s,):
                    for t_next in right_moves or (t,):
                        if (s_next, t_next) != (s, t):
                            add_interactive(source, aid, intern((s_next, t_next)))

    composite.validate()
    return composite


def parallel_many(
    models: Sequence[IOIMC],
    name: Optional[str] = None,
    *,
    hide: bool = True,
    keep: Iterable[str] = (),
    fuse: bool = False,
) -> IOIMC:
    """Compose a sequence of I/O-IMC left to right, hiding as it goes.

    After every intermediate fold the outputs that none of the models still to
    be composed listens to are hidden (``hide_closed``), so the τ-diamonds
    they would otherwise spawn can be pruned early and further compositions
    do not have to track dead signals.  ``keep`` lists actions that must stay
    observable regardless (e.g. a monitored top-level failure signal);
    ``hide=False`` restores the fully visible naive fold (the escape hatch
    used by the ordering-ablation benchmark).  ``fuse`` is forwarded to
    :func:`parallel`.

    The compositional aggregation engine in :mod:`repro.core.aggregation`
    additionally interleaves bisimulation minimisation; this helper is the
    light-weight variant for hand-driven pipelines and tests.
    """
    if not models:
        raise CompositionError("cannot compose an empty collection of I/O-IMC")
    if len(models) == 1:
        single = models[0].copy()
        if name is not None:
            single.name = name
        return single
    keep_set = frozenset(keep)
    composite = models[0]
    for position in range(1, len(models)):
        composite = parallel(composite, models[position], fuse=fuse)
        if hide and position < len(models) - 1:
            external: set = set()
            for remaining in models[position + 1 :]:
                external |= remaining.signature.inputs
            composite = hide_closed(
                composite, external_inputs=external, keep=keep_set
            )
    if name is not None:
        composite.name = name
    return composite


def closed_actions(models: Iterable[IOIMC], keep: Iterable[str] = ()) -> frozenset:
    """Output actions of ``models`` that no model outside the set listens to.

    These are the actions that can safely be hidden once all the given models
    have been composed.  ``keep`` lists actions that must stay observable
    regardless (e.g. the monitored top-level failure signal).
    """
    keep_set = frozenset(keep)
    outputs: set = set()
    inputs: set = set()
    for model in models:
        outputs |= model.signature.outputs
        inputs |= model.signature.inputs
    return frozenset((outputs - keep_set) - (inputs - outputs))


def hide_closed(model: IOIMC, external_inputs: Iterable[str], keep: Iterable[str] = ()) -> IOIMC:
    """Hide every output of ``model`` not listened to by the remaining community.

    ``external_inputs`` is the union of input actions of all models that have
    not been composed into ``model`` yet; ``keep`` contains actions that must
    never be hidden (monitored signals).
    """
    external = frozenset(external_inputs) | frozenset(keep)
    hideable = model.signature.outputs - external
    if not hideable:
        return model
    return model.hide(hideable, name=model.name)
