"""Parallel composition of input/output interactive Markov chains.

Composition follows the input/output automata discipline used by the paper
(Section 3):

* Components synchronise on *shared visible actions*.  If the action is an
  output of one component, that component decides when it happens and every
  component having it as an input reacts immediately (input-enabledness makes
  this always possible).  The action remains an output of the composite so
  that further components can still listen to it.
* An action that is an input of several components and an output of none is
  driven by the environment; all listening components react simultaneously and
  the action stays an input of the composite.
* Two components may never share an output action
  (:class:`~repro.errors.CompositionError`).
* Markovian transitions and non-shared actions interleave.
* Internal actions never synchronise.

The composite is built by reachability exploration from the pair of initial
states, so unreachable parts of the naive product are never materialised.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CompositionError, SignatureError
from .actions import ActionSignature, ActionType
from .model import IOIMC


def parallel(left: IOIMC, right: IOIMC, name: Optional[str] = None) -> IOIMC:
    """Parallel compose two I/O-IMC and return the reachable composite."""
    try:
        signature = left.signature.merge(right.signature)
    except SignatureError as exc:
        raise CompositionError(
            f"cannot compose {left.name!r} and {right.name!r}: {exc}"
        ) from exc

    composite = IOIMC(name if name is not None else f"{left.name}||{right.name}", signature)

    index: Dict[Tuple[int, int], int] = {}
    worklist: List[Tuple[int, int]] = []

    def intern(pair: Tuple[int, int]) -> int:
        if pair not in index:
            s, t = pair
            index[pair] = composite.add_state(
                labels=left.labels(s) | right.labels(t),
                name=f"{left.state_name(s)}|{right.state_name(t)}",
            )
            worklist.append(pair)
        return index[pair]

    shared_visible = left.signature.visible & right.signature.visible
    left_only_visible = left.signature.visible - shared_visible
    right_only_visible = right.signature.visible - shared_visible

    initial = (left.initial, right.initial)
    composite.set_initial(intern(initial))

    while worklist:
        s, t = pair = worklist.pop()
        source = index[pair]

        # Markovian transitions interleave.
        for rate, s_next in left.markovian_out(s):
            composite.add_markovian(source, rate, intern((s_next, t)))
        for rate, t_next in right.markovian_out(t):
            composite.add_markovian(source, rate, intern((s, t_next)))

        # Internal transitions interleave and never synchronise.
        for action, s_next in left.interactive_out(s):
            if left.signature.classify(action) is ActionType.INTERNAL:
                composite.add_interactive(source, action, intern((s_next, t)))
        for action, t_next in right.interactive_out(t):
            if right.signature.classify(action) is ActionType.INTERNAL:
                composite.add_interactive(source, action, intern((s, t_next)))

        # Non-shared visible actions interleave (only explicit transitions;
        # implicit input self-loops of the composite stay implicit).
        for action in left_only_visible & left.actions_enabled(s):
            for s_next in left.interactive_on(s, action):
                composite.add_interactive(source, action, intern((s_next, t)))
        for action in right_only_visible & right.actions_enabled(t):
            for t_next in right.interactive_on(t, action):
                composite.add_interactive(source, action, intern((s, t_next)))

        # Shared visible actions synchronise.
        for action in shared_visible:
            left_out = action in left.signature.outputs
            right_out = action in right.signature.outputs
            if left_out:
                driver_moves = left.interactive_on(s, action)
                if not driver_moves:
                    continue
                reactions = right.interactive_on(t, action) or (t,)
                for s_next in driver_moves:
                    for t_next in reactions:
                        composite.add_interactive(source, action, intern((s_next, t_next)))
            elif right_out:
                driver_moves = right.interactive_on(t, action)
                if not driver_moves:
                    continue
                reactions = left.interactive_on(s, action) or (s,)
                for t_next in driver_moves:
                    for s_next in reactions:
                        composite.add_interactive(source, action, intern((s_next, t_next)))
            else:
                # Input of both components: driven by the environment.
                left_moves = left.interactive_on(s, action)
                right_moves = right.interactive_on(t, action)
                if not left_moves and not right_moves:
                    continue
                for s_next in left_moves or (s,):
                    for t_next in right_moves or (t,):
                        if (s_next, t_next) != (s, t):
                            composite.add_interactive(source, action, intern((s_next, t_next)))

    composite.validate()
    return composite


def parallel_many(models: Sequence[IOIMC], name: Optional[str] = None) -> IOIMC:
    """Compose a sequence of I/O-IMC left to right.

    This is the naive composition order; the compositional aggregation engine
    in :mod:`repro.core.aggregation` interleaves composition with hiding and
    minimisation instead.
    """
    if not models:
        raise CompositionError("cannot compose an empty collection of I/O-IMC")
    if len(models) == 1:
        single = models[0].copy()
        if name is not None:
            single.name = name
        return single
    composite = reduce(parallel, models)
    if name is not None:
        composite.name = name
    return composite


def closed_actions(models: Iterable[IOIMC], keep: Iterable[str] = ()) -> frozenset:
    """Output actions of ``models`` that no model outside the set listens to.

    These are the actions that can safely be hidden once all the given models
    have been composed.  ``keep`` lists actions that must stay observable
    regardless (e.g. the monitored top-level failure signal).
    """
    keep_set = frozenset(keep)
    outputs: set = set()
    inputs: set = set()
    for model in models:
        outputs |= model.signature.outputs
        inputs |= model.signature.inputs
    return frozenset((outputs - keep_set) - (inputs - outputs))


def hide_closed(model: IOIMC, external_inputs: Iterable[str], keep: Iterable[str] = ()) -> IOIMC:
    """Hide every output of ``model`` not listened to by the remaining community.

    ``external_inputs`` is the union of input actions of all models that have
    not been composed into ``model`` yet; ``keep`` contains actions that must
    never be hidden (monitored signals).
    """
    external = frozenset(external_inputs) | frozenset(keep)
    hideable = model.signature.outputs - external
    if not hideable:
        return model
    return model.hide(hideable, name=model.name)
