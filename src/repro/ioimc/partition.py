"""Refinable partitions, worklist refinement and tau-SCC condensation.

This module is the data-structure core of the splitter-based bisimulation
minimiser (:mod:`repro.ioimc.bisimulation`).  It follows the refinable
partition of

    A. Valmari and G. Franceschinis, *Simple O(m log n) Time Markov Chain
    Lumping*, TACAS 2010 (LNCS 6015),

and the classic relational coarsest-partition ideas of Paige and Tarjan
(SIAM J. Comput. 16(6), 1987): the partition is a permutation of the
elements (``_elems``) in which every block occupies a contiguous slice, so

* membership tests, block sizes and block iteration are O(1)/O(block),
* *marking* an element moves it into the marked prefix of its block with a
  single swap — and :meth:`RefinablePartition.mark_all` performs a whole
  batch of marks with vectorised numpy index arithmetic instead of
  per-element Python swaps,
* splitting the marked elements off every touched block, or splitting one
  block into its groups of equal key (the Valmari-Franceschinis counter
  split for Markovian rates, implemented as a stable ``np.argsort`` over
  group codes with ``np.bincount`` group sizing), costs time proportional
  to the elements moved — never to the whole state space.

The element permutation, locations and block-membership tables are numpy
``int64`` arrays: bulk marks, block reassignment after a split and the
key-group reordering are single fancy-indexing operations, which is what
keeps the per-split constant small on the multi-thousand-state intermediate
products of compositional aggregation.

On top of the structure, :func:`refine` runs a generic worklist-of-splitters
loop: the caller processes one splitter at a time (marking predecessors and
splitting the touched blocks) and enqueues the splitters its policy
requires.  The strong engine in :mod:`repro.ioimc.bisimulation` runs the
textbook Paige-Tarjan discipline on top of it — compound splitter families
from which only the *smaller* sub-block's in-edges are ever scanned, with
per-(compound, action, state) edge counts funding the three-way split — so
the interactive refinement meets the O(m log n) bound; the weak engine
enqueues both halves (its splitters are tau-closure sweeps, for which no
count-based complement trick applies) but memoises the backward closures.

:class:`TauCondensation` complements the partition for *weak* bisimulation:
an iterative Tarjan pass condenses the internal(tau)-transition graph into
its strongly connected components, so tau-closures are represented once per
SCC (as reachability over the condensation DAG) instead of one frozenset per
state — the quadratic-memory failure mode of tau-chains never materialises.
Backward closures that the weak engine requests repeatedly (the same
(tau-SCC x label) splitter units re-enter the worklist many times on
tau-heavy products) are memoised in a bounded LRU
(:attr:`CLOSURE_CACHE_LIMIT` entries), so the cache stays linear in the
number of SCCs even on tau-chains where each individual closure is O(n).
"""

from __future__ import annotations

import math
from array import array as _array
from collections import OrderedDict, deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from .rates import ParametricRate

#: Default number of significant digits used when comparing aggregate
#: Markovian rates during bisimulation refinement.  Surfaced on
#: :class:`repro.ioimc.reduction.AggregationOptions` as ``rate_digits``.
DEFAULT_RATE_DIGITS = 10


def canonical_rate(value, digits: int = DEFAULT_RATE_DIGITS):
    """Canonical, hashable key of an aggregate rate for refinement.

    Plain floats are rounded to ``digits`` significant digits, so
    floating-point noise from rate aggregation cannot split blocks; both the
    splitter and the signature refinement engines share this tolerance.

    :class:`~repro.ioimc.rates.ParametricRate` forms are keyed *structurally*
    (each coefficient rounded the same way): two rates whose nominal values
    coincide but whose parameter dependencies differ stay in different rate
    classes.  This is what keeps the minimised quotient of a parametric model
    valid for every positive parameter assignment — the rate-sweep engine
    relies on it.
    """
    if isinstance(value, ParametricRate):
        return value.canonical_key(lambda v: _round_significant(v, digits))
    return _round_significant(value, digits)


def _round_significant(value: float, digits: int) -> float:
    if value == 0.0:
        return 0.0
    magnitude = int(math.floor(math.log10(abs(value))))
    return round(value, digits - magnitude)


class RefinablePartition:
    """A partition of ``0 .. num_elements - 1`` supporting cheap splits.

    Blocks are numbered ``0 .. num_blocks - 1``; new blocks produced by a
    split receive fresh ids (ids are never reused and member sets only ever
    shrink, which the refinement algorithms rely on).
    """

    __slots__ = (
        "_elems",
        "_loc",
        "_block_of",
        "_elems_l",
        "_loc_l",
        "_block_l",
        "_start",
        "_end",
        "_marked",
        "_touched",
    )

    def __init__(self, num_elements: int):
        # Dual storage: ``array('q')`` backing plus zero-copy numpy views of
        # the same memory.  Scalar operations (single marks, small splits)
        # index the ``array`` — native Python ints, no numpy scalar boxing —
        # while bulk operations fancy-index the views; writes through either
        # side are immediately visible to the other.
        self._elems_l = _array("q", range(num_elements))
        self._loc_l = _array("q", range(num_elements))
        self._block_l = _array("q", bytes(8 * num_elements))
        if num_elements:
            self._elems: np.ndarray = np.frombuffer(self._elems_l, dtype=np.int64)
            self._loc: np.ndarray = np.frombuffer(self._loc_l, dtype=np.int64)
            self._block_of: np.ndarray = np.frombuffer(self._block_l, dtype=np.int64)
        else:
            self._elems = np.empty(0, dtype=np.int64)
            self._loc = np.empty(0, dtype=np.int64)
            self._block_of = np.empty(0, dtype=np.int64)
        self._start: List[int] = [0] if num_elements else []
        self._end: List[int] = [num_elements] if num_elements else []
        #: Per block: number of marked elements (they occupy the block prefix).
        self._marked: List[int] = [0] if num_elements else []
        #: Blocks currently holding at least one marked element.
        self._touched: List[int] = []

    # ---------------------------------------------------------------- queries
    @property
    def num_elements(self) -> int:
        return len(self._elems)

    @property
    def num_blocks(self) -> int:
        return len(self._start)

    def blocks(self) -> range:
        return range(len(self._start))

    def block_of(self, element: int) -> int:
        return self._block_l[element]

    def size(self, block: int) -> int:
        return self._end[block] - self._start[block]

    def members(self, block: int) -> List[int]:
        """The elements of ``block`` (a snapshot copy, safe across splits)."""
        return self._elems_l[self._start[block] : self._end[block]].tolist()

    def member_array(self, block: int) -> np.ndarray:
        """The elements of ``block`` as a fresh ``int64`` array snapshot."""
        return self._elems[self._start[block] : self._end[block]].copy()

    def members_flat(self, blocks: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated member snapshot of several blocks, vectorised.

        Returns ``(elements, counts)``: the members of every block in
        ``blocks`` back to back (block order preserved) and the per-block
        member counts.  Blocks are contiguous ``_elems`` slices, so the whole
        gather is one fancy-indexing pass — the batched-frontier refinement
        rounds of the weak closure engine pull every pending splitter's
        membership through this instead of one :meth:`member_array` call per
        block.
        """
        k = len(blocks)
        starts = np.fromiter((self._start[b] for b in blocks), dtype=np.int64, count=k)
        ends = np.fromiter((self._end[b] for b in blocks), dtype=np.int64, count=k)
        counts = ends - starts
        total = int(counts.sum())
        if not total:
            return np.empty(0, dtype=np.int64), counts
        shifted = np.repeat(np.cumsum(counts) - counts - starts, counts)
        positions = np.arange(total, dtype=np.int64) - shifted
        return self._elems[positions], counts

    def as_sets(self) -> List[FrozenSet[int]]:
        """The partition as frozensets, ordered by smallest member."""
        return sorted(
            (frozenset(self.members(block)) for block in self.blocks()),
            key=min,
        )

    # ----------------------------------------------------------------- splits
    def mark(self, element: int) -> None:
        """Move ``element`` into the marked prefix of its block (idempotent)."""
        block = self._block_l[element]
        position = self._loc_l[element]
        boundary = self._start[block] + self._marked[block]
        if position < boundary:
            return  # already marked
        if self._marked[block] == 0:
            self._touched.append(block)
        elems = self._elems_l
        loc = self._loc_l
        other = elems[boundary]
        elems[boundary] = element
        elems[position] = other
        loc[element] = boundary
        loc[other] = position
        self._marked[block] += 1

    #: Batches/groups below this size take the scalar swap path: the numpy
    #: gather/scatter only amortises its fixed call overhead on larger moves.
    _VECTOR_THRESHOLD = 32

    def mark_all(self, elements, assume_unique: bool = False) -> None:
        """Mark a whole batch of elements (duplicates allowed) vectorised.

        Equivalent to calling :meth:`mark` per element, but the group of
        marks landing in one block is applied with numpy fancy indexing: the
        group members are placed into the slots directly after the block's
        current marked prefix and the displaced unmarked elements take the
        group members' old positions — one gather/scatter per touched block
        instead of one Python swap per element.  Small batches (and small
        per-block groups of a large batch) fall back to the scalar swap,
        which beats numpy's per-call overhead there; pass
        ``assume_unique=True`` to skip the deduplication sort when the batch
        is known duplicate-free.
        """
        if isinstance(elements, list):
            # Scalar marking is idempotent, so a small list needs neither
            # the array conversion nor the dedup sort.
            if len(elements) < self._VECTOR_THRESHOLD:
                mark = self.mark
                for element in elements:
                    mark(element)
                return
            batch = np.asarray(elements, dtype=np.int64)
        else:
            batch = np.asarray(elements, dtype=np.int64)
        if batch.size == 0:
            return
        if not assume_unique:
            batch = np.unique(batch)
        if batch.size < self._VECTOR_THRESHOLD:
            for element in batch.tolist():
                self.mark(element)
            return
        blocks = self._block_of[batch]
        order = np.argsort(blocks, kind="stable")
        batch = batch[order]
        blocks = blocks[order]
        bounds = [0, *(np.flatnonzero(blocks[1:] != blocks[:-1]) + 1).tolist(), batch.size]
        for index in range(len(bounds) - 1):
            begin, finish = bounds[index], bounds[index + 1]
            if finish - begin < self._VECTOR_THRESHOLD:
                for element in batch[begin:finish].tolist():
                    self.mark(element)
            else:
                self._mark_group(int(blocks[begin]), batch[begin:finish])

    def _mark_group(self, block: int, group: np.ndarray) -> None:
        """Mark a unique ``group`` of elements all living in ``block``."""
        start = self._start[block]
        already = self._marked[block]
        boundary = start + already
        positions = self._loc[group]
        # Drop group members that are already marked (inside the prefix).
        unmarked = positions >= boundary
        group = group[unmarked]
        positions = positions[unmarked]
        count = int(group.size)
        if count == 0:
            return
        if already == 0:
            self._touched.append(block)
        # Group members already inside the destination zone stay; the zone
        # slots they do not occupy receive the movers from further out.
        in_zone = positions < boundary + count
        movers = group[~in_zone]
        old_positions = positions[~in_zone]
        occupied = np.zeros(count, dtype=bool)
        occupied[positions[in_zone] - boundary] = True
        vacated = np.flatnonzero(~occupied) + boundary
        displaced = self._elems[vacated]
        self._elems[vacated] = movers
        self._elems[old_positions] = displaced
        self._loc[movers] = vacated
        self._loc[displaced] = old_positions
        self._marked[block] = already + count

    def split_marked(self) -> List[Tuple[int, int]]:
        """Split every touched block into its marked and unmarked part.

        Returns one ``(marked_block, unmarked_block)`` pair per touched
        block.  The marked part receives a fresh block id and the original
        id keeps the unmarked remainder; a fully marked block is left whole
        and reported as ``(block, -1)``.  All marks are cleared.
        """
        result: List[Tuple[int, int]] = []
        for block in self._touched:
            marked = self._marked[block]
            self._marked[block] = 0
            start = self._start[block]
            if marked == self._end[block] - start:
                result.append((block, -1))
                continue
            new_block = len(self._start)
            self._start.append(start)
            self._end.append(start + marked)
            self._marked.append(0)
            if marked < self._VECTOR_THRESHOLD:
                elems = self._elems_l
                block_map = self._block_l
                for position in range(start, start + marked):
                    block_map[elems[position]] = new_block
            else:
                self._block_of[self._elems[start : start + marked]] = new_block
            self._start[block] = start + marked
            result.append((new_block, block))
        self._touched.clear()
        return result

    def split_marked_by_codes(
        self, codes: np.ndarray
    ) -> Tuple[List[int], List[int]]:
        """Split every touched block by marked/unmarked, then by code.

        ``codes`` is an array indexed by element, valid for the currently
        marked elements.  Per touched block this is exactly
        :meth:`split_marked` followed by a code-keyed split of the marked
        part, fused: the marked prefix is grouped by code in one argsort (or
        scalar dict) pass — no per-element ``key_of`` callback.  A fully
        marked block's first code group keeps the block id; an unmarked
        remainder keeps the block id and every marked group gets a fresh id.

        Returns ``(pieces, moved)`` aggregated over all touched blocks:
        ``pieces`` are all block ids whose membership may have changed (for
        re-enqueueing), ``moved`` are the ids whose members left their old
        block (for rate-vector re-bucketing).  An unchanged block (fully
        marked, one code group) contributes neither.  All marks are cleared.
        """
        pieces: List[int] = []
        moved: List[int] = []
        elems = self._elems
        elems_l = self._elems_l
        loc_l = self._loc_l
        block_l = self._block_l
        for block in self._touched:
            marked = self._marked[block]
            self._marked[block] = 0
            start = self._start[block]
            full = marked == self._end[block] - start
            if marked <= self._VECTOR_THRESHOLD:
                # Scalar grouping (first-seen order) for small marked sets.
                groups: Dict[int, List[int]] = {}
                for element in elems_l[start : start + marked]:
                    key = codes[element]
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [element]
                    else:
                        bucket.append(element)
                if full and len(groups) == 1:
                    continue  # unchanged
                position = start
                first = full
                for bucket in groups.values():
                    if first:
                        # First group of a fully marked block keeps the id
                        # (its members keep their block label, but still move
                        # into the leading slots).
                        first = False
                        for element in bucket:
                            elems_l[position] = element
                            loc_l[element] = position
                            position += 1
                        self._end[block] = position
                        pieces.append(block)
                        continue
                    target = len(self._start)
                    begin = position
                    for element in bucket:
                        elems_l[position] = element
                        loc_l[element] = position
                        block_l[element] = target
                        position += 1
                    self._start.append(begin)
                    self._end.append(position)
                    self._marked.append(0)
                    pieces.append(target)
                    moved.append(target)
            else:
                seg = elems[start : start + marked].copy()
                seg_codes = codes[seg]
                order = np.argsort(seg_codes, kind="stable")
                distinct = np.flatnonzero(
                    seg_codes[order][1:] != seg_codes[order][:-1]
                )
                if full and not distinct.size:
                    continue  # unchanged
                seg = seg[order]
                elems[start : start + marked] = seg
                self._loc[seg] = np.arange(start, start + marked, dtype=np.int64)
                bounds = [0, *(distinct + 1).tolist(), marked]
                for index in range(len(bounds) - 1):
                    begin = start + bounds[index]
                    finish = start + bounds[index + 1]
                    if full and index == 0:
                        self._end[block] = finish
                        pieces.append(block)
                        continue
                    target = len(self._start)
                    self._start.append(begin)
                    self._end.append(finish)
                    self._marked.append(0)
                    self._block_of[elems[begin:finish]] = target
                    pieces.append(target)
                    moved.append(target)
            if not full:
                self._start[block] = start + marked
                pieces.append(block)
        self._touched.clear()
        return pieces, moved

    def split_by_key(self, block: int, key_of: Callable[[int], Hashable]) -> List[int]:
        """Split ``block`` into its groups of equal ``key_of(element)``.

        The first group (in first-seen key order) keeps the block id; the
        remaining groups receive fresh ids, which are returned.  Used for the
        multi-way Markovian rate splits (Valmari-Franceschinis) and for the
        initial label partition.

        Keys are factorised into dense group codes (first-seen order), the
        slice is reordered with one stable ``np.argsort`` over the codes, and
        the group boundaries fall out of an ``np.bincount`` — the only
        per-element Python work left is the ``key_of`` call itself.  Small
        blocks take a scalar grouping path instead: below the vector
        threshold the numpy argsort/bincount machinery costs more than the
        handful of swaps it replaces.
        """
        start, end = self._start[block], self._end[block]
        if end - start <= 1:
            return []  # a singleton cannot split
        if end - start <= self._VECTOR_THRESHOLD:
            return self._split_by_key_scalar(block, start, end, key_of)
        members = self._elems[start:end].tolist()
        codes = [0] * len(members)
        code_of: Dict[Hashable, int] = {}
        for offset, element in enumerate(members):
            codes[offset] = code_of.setdefault(key_of(element), len(code_of))
        if len(code_of) <= 1:
            return []
        code_array = np.asarray(codes, dtype=np.int64)
        order = np.argsort(code_array, kind="stable")
        reordered = self._elems[start:end][order]  # fancy indexing: a copy
        self._elems[start:end] = reordered
        self._loc[reordered] = np.arange(start, end, dtype=np.int64)
        boundaries = start + np.cumsum(np.bincount(code_array))
        new_blocks: List[int] = []
        previous = start
        for index in range(len(code_of)):
            finish = int(boundaries[index])
            if index == 0:
                target = block
            else:
                target = len(self._start)
                self._start.append(previous)
                self._end.append(finish)
                self._marked.append(0)
                new_blocks.append(target)
                self._block_of[self._elems[previous:finish]] = target
            self._start[target] = previous
            self._end[target] = finish
            previous = finish
        return new_blocks

    def _split_by_key_scalar(
        self, block: int, start: int, end: int, key_of: Callable[[int], Hashable]
    ) -> List[int]:
        """Scalar grouping for small blocks — no numpy per-call overhead."""
        groups: Dict[Hashable, List[int]] = {}
        for element in self._elems_l[start:end]:
            key = key_of(element)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [element]
            else:
                bucket.append(element)
        if len(groups) <= 1:
            return []
        elems, loc, block_map = self._elems_l, self._loc_l, self._block_l
        new_blocks: List[int] = []
        position = start
        first = True
        for bucket in groups.values():
            begin = position
            for element in bucket:
                elems[position] = element
                loc[element] = position
                position += 1
            if first:
                first = False
                self._end[block] = position
            else:
                target = len(self._start)
                self._start.append(begin)
                self._end.append(position)
                self._marked.append(0)
                new_blocks.append(target)
                for element in bucket:
                    block_map[element] = target
        return new_blocks


def refine(
    splitters: Iterable[Hashable],
    process: Callable[[Hashable, Callable[[Hashable], None]], None],
) -> None:
    """Run a worklist-of-splitters refinement loop until stable.

    ``process(splitter, push)`` performs the marking and splitting for one
    pending splitter and must ``push`` every splitter its refinement policy
    still owes a processing round — the weak engine pushes both halves of
    every split, the strong engine runs the Paige-Tarjan compound discipline
    (only smaller sub-blocks are ever scanned) on top of this loop.  Pushes
    of items already pending are dropped, so re-enqueueing liberally is
    cheap.  The loop terminates because blocks only ever split: the number
    of distinct splitter versions is finite.
    """
    queue: deque = deque()
    pending: Set[Hashable] = set()

    def push(item: Hashable) -> None:
        if item not in pending:
            pending.add(item)
            queue.append(item)

    for item in splitters:
        push(item)
    while queue:
        item = queue.popleft()
        pending.discard(item)
        process(item, push)


#: Upper bound on memoised backward closures per :class:`TauCondensation`.
#: A bounded cache keeps the memory of the memo linear in the number of
#: SCCs on tau-chains (each cached closure can itself be O(n) there) while
#: still absorbing the repeated (tau-SCC x label) splitter reprocessing of
#: the weak engine's worklist.
CLOSURE_CACHE_LIMIT = 64


class TauCondensation:
    """Condensation of a model's internal-transition graph.

    Computed with an iterative Tarjan pass (explicit stack — the fused
    products this runs on routinely exceed Python's recursion limit).  SCC
    ids are assigned in reverse topological order: every tau successor of an
    SCC has a *smaller* id, so a single id-ordered sweep visits successors
    before their predecessors — the property the weak-bisimulation engine
    uses to share tau-closure information per SCC instead of materialising a
    closure frozenset per state.
    """

    __slots__ = ("scc_of", "members", "tau_succ", "tau_pred", "_closure_cache")

    def __init__(self, model) -> None:
        internal = model.signature.internal_ids
        num_states = model.num_states
        succ: List[List[int]] = [
            [target for aid, target in model.interactive_pairs(state) if aid in internal]
            for state in range(num_states)
        ]

        #: SCC id of every state.
        self.scc_of: List[int] = [-1] * num_states
        #: Member states of every SCC.
        self.members: List[List[int]] = []

        index = [-1] * num_states
        low = [0] * num_states
        on_stack = [False] * num_states
        tarjan_stack: List[int] = []
        counter = 0
        for root in range(num_states):
            if index[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                state, edge = work[-1]
                if edge == 0:
                    index[state] = low[state] = counter
                    counter += 1
                    tarjan_stack.append(state)
                    on_stack[state] = True
                descended = False
                edges = succ[state]
                while edge < len(edges):
                    target = edges[edge]
                    edge += 1
                    if index[target] == -1:
                        work[-1] = (state, edge)
                        work.append((target, 0))
                        descended = True
                        break
                    if on_stack[target] and index[target] < low[state]:
                        low[state] = index[target]
                if descended:
                    continue
                work.pop()
                if low[state] == index[state]:
                    scc = len(self.members)
                    group: List[int] = []
                    while True:
                        member = tarjan_stack.pop()
                        on_stack[member] = False
                        self.scc_of[member] = scc
                        group.append(member)
                        if member == state:
                            break
                    self.members.append(group)
                if work:
                    parent = work[-1][0]
                    if low[state] < low[parent]:
                        low[parent] = low[state]

        num_sccs = len(self.members)
        succ_sets: List[Set[int]] = [set() for _ in range(num_sccs)]
        for state in range(num_states):
            source = self.scc_of[state]
            for target in succ[state]:
                target_scc = self.scc_of[target]
                if target_scc != source:
                    succ_sets[source].add(target_scc)
        #: Condensed tau edges (deduplicated, no self edges).
        self.tau_succ: List[List[int]] = [sorted(targets) for targets in succ_sets]
        self.tau_pred: List[List[int]] = [[] for _ in range(num_sccs)]
        for source, targets in enumerate(self.tau_succ):
            for target in targets:
                self.tau_pred[target].append(source)
        self._closure_cache: "OrderedDict[FrozenSet[int], FrozenSet[int]]" = OrderedDict()

    @property
    def num_sccs(self) -> int:
        return len(self.members)

    def backward_closure(self, seeds: Iterable[int]) -> Set[int]:
        """All SCCs that tau-reach one of ``seeds`` (seeds included)."""
        seen: Set[int] = set(seeds)
        frontier: List[int] = list(seen)
        while frontier:
            scc = frontier.pop()
            for predecessor in self.tau_pred[scc]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        return seen

    def backward_closure_cached(self, seeds: FrozenSet[int]) -> FrozenSet[int]:
        """Memoised :meth:`backward_closure` for repeatedly requested seeds.

        The weak engine's worklist re-processes the same splitter seed sets
        many times on tau-heavy products; their closures are immutable, so
        one frozenset can be shared.  The memo is a bounded LRU of
        :data:`CLOSURE_CACHE_LIMIT` entries — memory stays linear in the
        number of SCCs even on tau-chains, where one closure is O(n).
        """
        cache = self._closure_cache
        cached = cache.get(seeds)
        if cached is not None:
            cache.move_to_end(seeds)
            return cached
        closure = frozenset(self.backward_closure(seeds))
        cache[seeds] = closure
        if len(cache) > CLOSURE_CACHE_LIMIT:
            cache.popitem(last=False)
        return closure
