"""Refinable partitions, worklist refinement and tau-SCC condensation.

This module is the data-structure core of the splitter-based bisimulation
minimiser (:mod:`repro.ioimc.bisimulation`).  It follows the refinable
partition of

    A. Valmari and G. Franceschinis, *Simple O(m log n) Time Markov Chain
    Lumping*, TACAS 2010 (LNCS 6015),

and the classic relational coarsest-partition ideas of Paige and Tarjan
(SIAM J. Comput. 16(6), 1987): the partition is a permutation of the
elements (``_elems``) in which every block occupies a contiguous slice, so

* membership tests, block sizes and block iteration are O(1)/O(block),
* *marking* an element moves it into the marked prefix of its block with a
  single swap,
* splitting the marked elements off every touched block, or splitting one
  block into its groups of equal key (the Valmari-Franceschinis counter
  split for Markovian rates), costs time proportional to the elements moved
  — never to the whole state space.

On top of the structure, :func:`refine` runs a generic worklist-of-splitters
loop: the caller processes one splitter at a time (marking predecessors and
splitting the touched blocks) and re-enqueues the blocks it changed; the
loop ends when no splitter is pending, i.e. the partition is stable.  Unlike
the textbook Paige-Tarjan scheme this implementation re-enqueues *both*
halves of every split (instead of all-but-the-largest), trading the
O(m log n) worst case for a much simpler invariant; each round still only
costs time proportional to the splitter's in-edges, which is what matters on
the tau-heavy intermediate products of compositional aggregation.

:class:`TauCondensation` complements the partition for *weak* bisimulation:
an iterative Tarjan pass condenses the internal(tau)-transition graph into
its strongly connected components, so tau-closures are represented once per
SCC (as reachability over the condensation DAG) instead of one frozenset per
state — the quadratic-memory failure mode of tau-chains never materialises.
"""

from __future__ import annotations

import math
from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

from .rates import ParametricRate

#: Default number of significant digits used when comparing aggregate
#: Markovian rates during bisimulation refinement.  Surfaced on
#: :class:`repro.ioimc.reduction.AggregationOptions` as ``rate_digits``.
DEFAULT_RATE_DIGITS = 10


def canonical_rate(value, digits: int = DEFAULT_RATE_DIGITS):
    """Canonical, hashable key of an aggregate rate for refinement.

    Plain floats are rounded to ``digits`` significant digits, so
    floating-point noise from rate aggregation cannot split blocks; both the
    splitter and the signature refinement engines share this tolerance.

    :class:`~repro.ioimc.rates.ParametricRate` forms are keyed *structurally*
    (each coefficient rounded the same way): two rates whose nominal values
    coincide but whose parameter dependencies differ stay in different rate
    classes.  This is what keeps the minimised quotient of a parametric model
    valid for every positive parameter assignment — the rate-sweep engine
    relies on it.
    """
    if isinstance(value, ParametricRate):
        return value.canonical_key(lambda v: _round_significant(v, digits))
    return _round_significant(value, digits)


def _round_significant(value: float, digits: int) -> float:
    if value == 0.0:
        return 0.0
    magnitude = int(math.floor(math.log10(abs(value))))
    return round(value, digits - magnitude)


class RefinablePartition:
    """A partition of ``0 .. num_elements - 1`` supporting cheap splits.

    Blocks are numbered ``0 .. num_blocks - 1``; new blocks produced by a
    split receive fresh ids (ids are never reused and member sets only ever
    shrink, which the refinement algorithms rely on).
    """

    __slots__ = ("_elems", "_loc", "_block_of", "_start", "_end", "_marked", "_touched")

    def __init__(self, num_elements: int):
        self._elems: List[int] = list(range(num_elements))
        self._loc: List[int] = list(range(num_elements))
        self._block_of: List[int] = [0] * num_elements
        self._start: List[int] = [0] if num_elements else []
        self._end: List[int] = [num_elements] if num_elements else []
        #: Per block: number of marked elements (they occupy the block prefix).
        self._marked: List[int] = [0] if num_elements else []
        #: Blocks currently holding at least one marked element.
        self._touched: List[int] = []

    # ---------------------------------------------------------------- queries
    @property
    def num_elements(self) -> int:
        return len(self._elems)

    @property
    def num_blocks(self) -> int:
        return len(self._start)

    def blocks(self) -> range:
        return range(len(self._start))

    def block_of(self, element: int) -> int:
        return self._block_of[element]

    def size(self, block: int) -> int:
        return self._end[block] - self._start[block]

    def members(self, block: int) -> List[int]:
        """The elements of ``block`` (a snapshot copy, safe across splits)."""
        return self._elems[self._start[block] : self._end[block]]

    def as_sets(self) -> List[FrozenSet[int]]:
        """The partition as frozensets, ordered by smallest member."""
        return sorted(
            (frozenset(self.members(block)) for block in self.blocks()),
            key=min,
        )

    # ----------------------------------------------------------------- splits
    def mark(self, element: int) -> None:
        """Move ``element`` into the marked prefix of its block (idempotent)."""
        block = self._block_of[element]
        position = self._loc[element]
        boundary = self._start[block] + self._marked[block]
        if position < boundary:
            return  # already marked
        if self._marked[block] == 0:
            self._touched.append(block)
        other = self._elems[boundary]
        self._elems[boundary] = element
        self._elems[position] = other
        self._loc[element] = boundary
        self._loc[other] = position
        self._marked[block] += 1

    def split_marked(self) -> List[Tuple[int, int]]:
        """Split every touched block into its marked and unmarked part.

        Returns one ``(marked_block, unmarked_block)`` pair per touched
        block.  The marked part receives a fresh block id and the original
        id keeps the unmarked remainder; a fully marked block is left whole
        and reported as ``(block, -1)``.  All marks are cleared.
        """
        result: List[Tuple[int, int]] = []
        for block in self._touched:
            marked = self._marked[block]
            self._marked[block] = 0
            start = self._start[block]
            if marked == self._end[block] - start:
                result.append((block, -1))
                continue
            new_block = len(self._start)
            self._start.append(start)
            self._end.append(start + marked)
            self._marked.append(0)
            for position in range(start, start + marked):
                self._block_of[self._elems[position]] = new_block
            self._start[block] = start + marked
            result.append((new_block, block))
        self._touched.clear()
        return result

    def split_by_key(self, block: int, key_of: Callable[[int], Hashable]) -> List[int]:
        """Split ``block`` into its groups of equal ``key_of(element)``.

        The first group (in first-seen key order) keeps the block id; the
        remaining groups receive fresh ids, which are returned.  Used for the
        multi-way Markovian rate splits (Valmari-Franceschinis) and for the
        initial label partition.
        """
        start, end = self._start[block], self._end[block]
        groups: Dict[Hashable, List[int]] = {}
        for position in range(start, end):
            element = self._elems[position]
            groups.setdefault(key_of(element), []).append(element)
        if len(groups) <= 1:
            return []
        new_blocks: List[int] = []
        position = start
        target = block
        for index, group in enumerate(groups.values()):
            if index > 0:
                target = len(self._start)
                self._start.append(position)
                self._end.append(position)
                self._marked.append(0)
                new_blocks.append(target)
            self._start[target] = position
            for element in group:
                self._elems[position] = element
                self._loc[element] = position
                self._block_of[element] = target
                position += 1
            self._end[target] = position
        return new_blocks


def refine(
    splitters: Iterable[Hashable],
    process: Callable[[Hashable, Callable[[Hashable], None]], None],
) -> None:
    """Run a worklist-of-splitters refinement loop until stable.

    ``process(splitter, push)`` performs the marking and splitting for one
    pending splitter and must ``push`` every splitter whose defining set
    changed (typically both halves of every split block).  Pushes of items
    already pending are dropped, so re-enqueueing liberally is cheap.  The
    loop terminates because blocks only ever split: the number of distinct
    splitter versions is finite.
    """
    queue: deque = deque()
    pending: Set[Hashable] = set()

    def push(item: Hashable) -> None:
        if item not in pending:
            pending.add(item)
            queue.append(item)

    for item in splitters:
        push(item)
    while queue:
        item = queue.popleft()
        pending.discard(item)
        process(item, push)


class TauCondensation:
    """Condensation of a model's internal-transition graph.

    Computed with an iterative Tarjan pass (explicit stack — the fused
    products this runs on routinely exceed Python's recursion limit).  SCC
    ids are assigned in reverse topological order: every tau successor of an
    SCC has a *smaller* id, so a single id-ordered sweep visits successors
    before their predecessors — the property the weak-bisimulation engine
    uses to share tau-closure information per SCC instead of materialising a
    closure frozenset per state.
    """

    __slots__ = ("scc_of", "members", "tau_succ", "tau_pred")

    def __init__(self, model) -> None:
        internal = model.signature.internal_ids
        num_states = model.num_states
        succ: List[List[int]] = [
            [target for aid, target in model.interactive_pairs(state) if aid in internal]
            for state in range(num_states)
        ]

        #: SCC id of every state.
        self.scc_of: List[int] = [-1] * num_states
        #: Member states of every SCC.
        self.members: List[List[int]] = []

        index = [-1] * num_states
        low = [0] * num_states
        on_stack = [False] * num_states
        tarjan_stack: List[int] = []
        counter = 0
        for root in range(num_states):
            if index[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                state, edge = work[-1]
                if edge == 0:
                    index[state] = low[state] = counter
                    counter += 1
                    tarjan_stack.append(state)
                    on_stack[state] = True
                descended = False
                edges = succ[state]
                while edge < len(edges):
                    target = edges[edge]
                    edge += 1
                    if index[target] == -1:
                        work[-1] = (state, edge)
                        work.append((target, 0))
                        descended = True
                        break
                    if on_stack[target] and index[target] < low[state]:
                        low[state] = index[target]
                if descended:
                    continue
                work.pop()
                if low[state] == index[state]:
                    scc = len(self.members)
                    group: List[int] = []
                    while True:
                        member = tarjan_stack.pop()
                        on_stack[member] = False
                        self.scc_of[member] = scc
                        group.append(member)
                        if member == state:
                            break
                    self.members.append(group)
                if work:
                    parent = work[-1][0]
                    if low[state] < low[parent]:
                        low[parent] = low[state]

        num_sccs = len(self.members)
        succ_sets: List[Set[int]] = [set() for _ in range(num_sccs)]
        for state in range(num_states):
            source = self.scc_of[state]
            for target in succ[state]:
                target_scc = self.scc_of[target]
                if target_scc != source:
                    succ_sets[source].add(target_scc)
        #: Condensed tau edges (deduplicated, no self edges).
        self.tau_succ: List[List[int]] = [sorted(targets) for targets in succ_sets]
        self.tau_pred: List[List[int]] = [[] for _ in range(num_sccs)]
        for source, targets in enumerate(self.tau_succ):
            for target in targets:
                self.tau_pred[target].append(source)

    @property
    def num_sccs(self) -> int:
        return len(self.members)

    def backward_closure(self, seeds: Iterable[int]) -> Set[int]:
        """All SCCs that tau-reach one of ``seeds`` (seeds included)."""
        seen: Set[int] = set(seeds)
        frontier: List[int] = list(seen)
        while frontier:
            scc = frontier.pop()
            for predecessor in self.tau_pred[scc]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        return seen
