"""Maximal progress (urgency) pruning for I/O-IMC.

Output and internal actions of an I/O-IMC are *immediate*: a state with an
enabled locally-controlled transition never lets time pass, hence its Markovian
transitions can never fire.  Removing those Markovian transitions ("maximal
progress" in the Interactive Markov Chain literature) is the first step of
every aggregation pipeline: it is measure-preserving and it enables further
reductions such as the elimination of vanishing states.
"""

from __future__ import annotations

from typing import Optional

from .model import IOIMC


def apply_maximal_progress(
    model: IOIMC, urgent_outputs: bool = True, name: Optional[str] = None
) -> IOIMC:
    """Return a copy of ``model`` without Markovian transitions in urgent states.

    Parameters
    ----------
    urgent_outputs:
        If ``True`` (the I/O-IMC semantics used by the paper) output actions
        are urgent as well; if ``False`` only internal actions make a state
        urgent (the classical open-IMC rule).
    """
    pruned = IOIMC(name if name is not None else model.name, model.signature)
    for state in model.states():
        pruned.add_state(labels=model.labels(state), name=model.state_name(state))
    for state in model.states():
        urgent = model.is_urgent(state) if urgent_outputs else not model.is_stable(state)
        for action, target in model.interactive_out(state):
            pruned.add_interactive(state, action, target)
        if not urgent:
            for rate, target in model.markovian_out(state):
                pruned.add_markovian(state, rate, target)
    pruned.set_initial(model.initial)
    return pruned


def count_pruned_transitions(model: IOIMC, urgent_outputs: bool = True) -> int:
    """Number of Markovian transitions that maximal progress would remove."""
    removed = 0
    for state in model.states():
        urgent = model.is_urgent(state) if urgent_outputs else not model.is_stable(state)
        if urgent:
            removed += sum(1 for _ in model.markovian_out(state))
    return removed
