"""Maximal progress (urgency) pruning for I/O-IMC.

Output and internal actions of an I/O-IMC are *immediate*: a state with an
enabled locally-controlled transition never lets time pass, hence its Markovian
transitions can never fire.  Removing those Markovian transitions ("maximal
progress" in the Interactive Markov Chain literature) is the first step of
every aggregation pipeline: it is measure-preserving and it enables further
reductions such as the elimination of vanishing states.
"""

from __future__ import annotations

from typing import Optional

from .model import IOIMC


def apply_maximal_progress(
    model: IOIMC, urgent_outputs: bool = True, name: Optional[str] = None
) -> IOIMC:
    """Return a copy of ``model`` without Markovian transitions in urgent states.

    Parameters
    ----------
    urgent_outputs:
        If ``True`` (the I/O-IMC semantics used by the paper) output actions
        are urgent as well; if ``False`` only internal actions make a state
        urgent (the classical open-IMC rule).
    """
    pruned = model._skeleton(name)
    for state in model.states():
        pruned._set_interactive_raw(state, list(model.interactive_pairs(state)))
        urgent = model.is_urgent(state) if urgent_outputs else not model.is_stable(state)
        if not urgent:
            pruned._set_markovian_raw(state, dict(model.markovian_dict(state)))
    return pruned


def count_pruned_transitions(model: IOIMC, urgent_outputs: bool = True) -> int:
    """Number of Markovian transitions that maximal progress would remove."""
    removed = 0
    for state in model.states():
        urgent = model.is_urgent(state) if urgent_outputs else not model.is_stable(state)
        if urgent:
            removed += len(model.markovian_dict(state))
    return removed
