"""Declarative element behaviours and their exploration into I/O-IMC.

The paper stresses (Section 7) that extending the DFT language amounts to
adding or modifying *elementary* I/O-IMC models, without touching composition,
aggregation or analysis.  To make this extensibility concrete the library does
not hand-code every elementary I/O-IMC as an explicit state graph.  Instead,
each DFT element is described by an :class:`ElementBehavior`:

* an abstract (hashable) initial state,
* the reaction to every input action (:meth:`ElementBehavior.on_input`),
* the urgent output/internal transitions enabled in a state
  (:meth:`ElementBehavior.urgent`),
* the Markovian transitions enabled in a state
  (:meth:`ElementBehavior.markovian`).

:func:`build_ioimc` performs a reachability exploration over abstract states
and produces the explicit :class:`~repro.ioimc.model.IOIMC`.  Input-enabledness
is guaranteed by construction: every input action is applied in every state; a
reaction that does not change the state simply yields the implicit self-loop.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Iterable, List, Tuple

from ..errors import ModelError
from .actions import ActionSignature
from .model import IOIMC


class ElementBehavior(abc.ABC):
    """Abstract description of a single DFT element's I/O-IMC."""

    #: Human readable name of the element (used for the generated model).
    name: str = "element"

    @abc.abstractmethod
    def signature(self) -> ActionSignature:
        """Action signature of the element."""

    @abc.abstractmethod
    def initial_state(self) -> Hashable:
        """The abstract initial state."""

    @abc.abstractmethod
    def on_input(self, state: Hashable, action: str) -> Hashable:
        """State reached when the input ``action`` is received in ``state``.

        Returning ``state`` itself encodes the implicit self-loop of
        input-enabled models.
        """

    @abc.abstractmethod
    def urgent(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        """Enabled output/internal transitions ``(action, next_state)``."""

    @abc.abstractmethod
    def markovian(self, state: Hashable) -> Iterable[Tuple[float, Hashable]]:
        """Enabled Markovian transitions ``(rate, next_state)``."""

    # ------------------------------------------------------------------ hooks
    def labels(self, state: Hashable) -> Iterable[str]:
        """Atomic propositions attached to ``state`` (default: none)."""
        return ()

    def state_name(self, state: Hashable) -> str:
        """Debug name of ``state`` (default: ``repr``)."""
        return repr(state)

    # ------------------------------------------------------------- conversion
    def to_ioimc(self, max_states: int = 100_000) -> IOIMC:
        """Explore the behaviour into an explicit I/O-IMC."""
        return build_ioimc(self, max_states=max_states)


def build_ioimc(behavior: ElementBehavior, max_states: int = 100_000) -> IOIMC:
    """Explore an :class:`ElementBehavior` into an explicit :class:`IOIMC`.

    The exploration is a plain breadth-first reachability over abstract
    states.  Every input action of the signature is applied in every state so
    the result is input-enabled by construction; self-loop reactions are left
    implicit (not stored).
    """
    sig = behavior.signature()
    model = IOIMC(behavior.name, sig)

    index: Dict[Hashable, int] = {}
    worklist: List[Hashable] = []

    def intern(state: Hashable) -> int:
        if state not in index:
            if len(index) >= max_states:
                raise ModelError(
                    f"behaviour {behavior.name!r} exceeded {max_states} states "
                    "during exploration"
                )
            index[state] = model.add_state(
                labels=behavior.labels(state), name=behavior.state_name(state)
            )
            worklist.append(state)
        return index[state]

    initial = behavior.initial_state()
    model.set_initial(intern(initial))

    while worklist:
        state = worklist.pop()
        source = index[state]
        for action in sig.inputs:
            successor = behavior.on_input(state, action)
            if successor != state:
                model.add_interactive(source, action, intern(successor))
        for action, successor in behavior.urgent(state):
            model.add_interactive(source, action, intern(successor))
        for rate, successor in behavior.markovian(state):
            model.add_markovian(source, rate, intern(successor))

    model.validate()
    return model


class ExplicitBehavior(ElementBehavior):
    """A behaviour defined by explicit transition tables.

    Useful in tests and for the small hand-drawn models of the paper
    (e.g. the I/O-IMC ``A`` and ``B`` of Figure 2).
    """

    def __init__(
        self,
        name: str,
        signature: ActionSignature,
        initial: Hashable,
        inputs: Dict[Tuple[Hashable, str], Hashable],
        urgent: Dict[Hashable, List[Tuple[str, Hashable]]],
        markovian: Dict[Hashable, List[Tuple[float, Hashable]]],
        labels: Dict[Hashable, Tuple[str, ...]] | None = None,
    ):
        self.name = name
        self._signature = signature
        self._initial = initial
        self._inputs = dict(inputs)
        self._urgent = {k: list(v) for k, v in urgent.items()}
        self._markovian = {k: list(v) for k, v in markovian.items()}
        self._labels = dict(labels or {})

    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> Hashable:
        return self._initial

    def on_input(self, state: Hashable, action: str) -> Hashable:
        return self._inputs.get((state, action), state)

    def urgent(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        return tuple(self._urgent.get(state, ()))

    def markovian(self, state: Hashable) -> Iterable[Tuple[float, Hashable]]:
        return tuple(self._markovian.get(state, ()))

    def labels(self, state: Hashable) -> Iterable[str]:
        return self._labels.get(state, ())
