"""Actions and action signatures of input/output interactive Markov chains.

An I/O-IMC communicates with its environment through *actions*.  Following the
paper (Section 3) an action is either

* an **input** action (written ``a?``): the model reacts to it and must always
  be able to do so (input-enabledness), it may not delay or refuse it;
* an **output** action (written ``a!``): the model decides when to perform it;
  output actions are *immediate* (urgent) — no time passes in a state with an
  enabled output transition;
* an **internal** action (written ``a;``): invisible computation steps, also
  immediate.  Internal actions arise primarily from *hiding* output actions
  after composition.

The :class:`ActionSignature` groups the three (disjoint) action sets of a
model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from ..errors import SignatureError


class ActionInterner:
    """Process-wide interning table mapping action names to small integers.

    Action names are compared on every transition of every composition step;
    interning them once lets the whole engine work on integers (set membership,
    bit masks) instead of strings.  Ids are append-only and globally
    consistent, so two models agree on the id of a shared action by
    construction — no per-composition translation tables are needed.

    Trade-offs of the process-global table: the bitmask views grow with the
    total number of actions ever interned (a long-lived batch process pays a
    few machine words per 64 known actions on each mask operation — fine for
    thousands of actions, revisit with signature-local dense ids if a workload
    interns millions), and ids baked into a model's transitions are only
    meaningful in the process that created them — models must cross process
    boundaries by name (e.g. Galileo/dot round-trips), never as pickled
    id-based structures into a worker with a different interner.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def intern(self, name: str) -> int:
        """Return the id of ``name``, allocating a fresh one if unseen."""
        aid = self._ids.get(name)
        if aid is None:
            aid = len(self._names)
            self._ids[name] = aid
            self._names.append(name)
        return aid

    def lookup(self, name: str) -> int:
        """Id of ``name`` or ``-1`` when the name was never interned."""
        return self._ids.get(name, -1)

    def name(self, aid: int) -> str:
        """The name behind ``aid``."""
        return self._names[aid]

    def __len__(self) -> int:
        return len(self._names)


#: The global interning table shared by every model in the process.
ACTIONS = ActionInterner()


def intern_action(name: str) -> int:
    """Intern ``name`` in the global table and return its id."""
    return ACTIONS.intern(name)


def action_name(aid: int) -> str:
    """The action name behind a global id."""
    return ACTIONS.name(aid)


def _intern_all(names: Iterable[str]) -> FrozenSet[int]:
    return frozenset(ACTIONS.intern(name) for name in names)


def _mask_of(ids: Iterable[int]) -> int:
    mask = 0
    for aid in ids:
        mask |= 1 << aid
    return mask


class ActionType(enum.Enum):
    """Kind of an action within a particular action signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    @property
    def decoration(self) -> str:
        """Suffix used in the paper's notation (``?``, ``!`` or ``;``)."""
        if self is ActionType.INPUT:
            return "?"
        if self is ActionType.OUTPUT:
            return "!"
        return ";"


def format_action(action: str, kind: ActionType) -> str:
    """Render ``action`` with the paper's decoration, e.g. ``fA!``."""
    return f"{action}{kind.decoration}"


@dataclass(frozen=True)
class ActionSignature:
    """The (disjoint) input/output/internal action sets of an I/O-IMC.

    Instances are immutable; the transformation helpers (:meth:`hide`,
    :meth:`rename`, :meth:`merge`) return new signatures.
    """

    inputs: frozenset = field(default_factory=frozenset)
    outputs: frozenset = field(default_factory=frozenset)
    internals: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        inputs = frozenset(self.inputs)
        outputs = frozenset(self.outputs)
        internals = frozenset(self.internals)
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)
        object.__setattr__(self, "internals", internals)
        overlap = (inputs & outputs) | (inputs & internals) | (outputs & internals)
        if overlap:
            raise SignatureError(
                "action signature sets must be disjoint; offending actions: "
                + ", ".join(sorted(overlap))
            )

    # ------------------------------------------------------------------ views
    @property
    def visible(self) -> frozenset:
        """Actions observable by the environment (inputs and outputs)."""
        return self.inputs | self.outputs

    @property
    def all_actions(self) -> frozenset:
        """Every action mentioned in the signature."""
        return self.inputs | self.outputs | self.internals

    @property
    def locally_controlled(self) -> frozenset:
        """Actions whose occurrence the model itself decides (urgent)."""
        return self.outputs | self.internals

    # ------------------------------------------------------------- id views
    # The id-based views below are cached per signature instance (signatures
    # are immutable).  They are what the hot paths — composition, bisimulation
    # refinement, maximal progress — operate on.

    @cached_property
    def input_ids(self) -> FrozenSet[int]:
        """Interned ids of the input actions."""
        return _intern_all(self.inputs)

    @cached_property
    def output_ids(self) -> FrozenSet[int]:
        """Interned ids of the output actions."""
        return _intern_all(self.outputs)

    @cached_property
    def internal_ids(self) -> FrozenSet[int]:
        """Interned ids of the internal actions."""
        return _intern_all(self.internals)

    @cached_property
    def visible_ids(self) -> FrozenSet[int]:
        """Interned ids of the visible (input or output) actions."""
        return self.input_ids | self.output_ids

    @cached_property
    def all_ids(self) -> FrozenSet[int]:
        """Interned ids of every action of the signature."""
        return self.input_ids | self.output_ids | self.internal_ids

    @cached_property
    def urgent_ids(self) -> FrozenSet[int]:
        """Interned ids of the locally controlled (output/internal) actions."""
        return self.output_ids | self.internal_ids

    @cached_property
    def input_mask(self) -> int:
        """Bitset over action ids: inputs."""
        return _mask_of(self.input_ids)

    @cached_property
    def internal_mask(self) -> int:
        """Bitset over action ids: internal actions."""
        return _mask_of(self.internal_ids)

    @cached_property
    def urgent_mask(self) -> int:
        """Bitset over action ids: output and internal (urgent) actions."""
        return _mask_of(self.urgent_ids)

    # ---------------------------------------------------------------- pickling
    # Only the name sets travel: the cached id views live in ``__dict__``
    # (``functools.cached_property``) and are meaningless under the receiving
    # process's interner, so they are dropped and lazily recomputed there.

    def __getstate__(self) -> Tuple[frozenset, frozenset, frozenset]:
        return (self.inputs, self.outputs, self.internals)

    def __setstate__(self, state: Tuple[frozenset, frozenset, frozenset]) -> None:
        inputs, outputs, internals = state
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)
        object.__setattr__(self, "internals", internals)

    def classify_id(self, aid: int) -> ActionType:
        """Return the :class:`ActionType` of an interned action id."""
        if aid in self.input_ids:
            return ActionType.INPUT
        if aid in self.output_ids:
            return ActionType.OUTPUT
        if aid in self.internal_ids:
            return ActionType.INTERNAL
        raise SignatureError(
            f"action {ACTIONS.name(aid)!r} is not part of the signature"
        )

    def classify(self, action: str) -> ActionType:
        """Return the :class:`ActionType` of ``action``.

        Raises :class:`~repro.errors.SignatureError` if the action is unknown.
        """
        if action in self.inputs:
            return ActionType.INPUT
        if action in self.outputs:
            return ActionType.OUTPUT
        if action in self.internals:
            return ActionType.INTERNAL
        raise SignatureError(f"action {action!r} is not part of the signature")

    def __contains__(self, action: object) -> bool:
        return action in self.all_actions

    # --------------------------------------------------------- transformations
    def hide(self, actions: Iterable[str]) -> "ActionSignature":
        """Turn the given *output* actions into internal actions.

        Hiding an action that is not an output of this signature is an error;
        inputs cannot be hidden because the environment still needs to drive
        them.
        """
        to_hide = frozenset(actions)
        unknown = to_hide - self.outputs
        if unknown:
            raise SignatureError(
                "only output actions can be hidden; not outputs: "
                + ", ".join(sorted(unknown))
            )
        return ActionSignature(
            inputs=self.inputs,
            outputs=self.outputs - to_hide,
            internals=self.internals | to_hide,
        )

    def rename(self, mapping: Mapping[str, str]) -> "ActionSignature":
        """Rename actions according to ``mapping`` (unmentioned actions kept).

        The rename must not merge two previously distinct actions into one.
        """
        def apply(actions: frozenset) -> frozenset:
            return frozenset(mapping.get(a, a) for a in actions)

        renamed = ActionSignature(
            inputs=apply(self.inputs),
            outputs=apply(self.outputs),
            internals=apply(self.internals),
        )
        if len(renamed.all_actions) != len(self.all_actions):
            raise SignatureError("renaming must not merge distinct actions")
        return renamed

    def merge(self, other: "ActionSignature") -> "ActionSignature":
        """Signature of the parallel composition with ``other``.

        Outputs of either component stay outputs; an input that is an output of
        the other component is *connected* and becomes an output of the
        composite (the composite still emits it so further components can
        listen); remaining inputs stay inputs; internal actions are unioned.
        """
        if self.outputs & other.outputs:
            raise SignatureError(
                "components share output actions: "
                + ", ".join(sorted(self.outputs & other.outputs))
            )
        outputs = self.outputs | other.outputs
        inputs = (self.inputs | other.inputs) - outputs
        internals = self.internals | other.internals
        if internals & (inputs | outputs):
            raise SignatureError(
                "internal actions of one component clash with visible actions "
                "of the other: "
                + ", ".join(sorted(internals & (inputs | outputs)))
            )
        return ActionSignature(inputs=inputs, outputs=outputs, internals=internals)

    # ------------------------------------------------------------------ dunder
    def __str__(self) -> str:
        parts = []
        for action in sorted(self.inputs):
            parts.append(format_action(action, ActionType.INPUT))
        for action in sorted(self.outputs):
            parts.append(format_action(action, ActionType.OUTPUT))
        for action in sorted(self.internals):
            parts.append(format_action(action, ActionType.INTERNAL))
        return "{" + ", ".join(parts) + "}"


def signature(
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    internals: Iterable[str] = (),
) -> ActionSignature:
    """Convenience constructor for :class:`ActionSignature`."""
    return ActionSignature(
        inputs=frozenset(inputs),
        outputs=frozenset(outputs),
        internals=frozenset(internals),
    )
