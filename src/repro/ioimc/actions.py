"""Actions and action signatures of input/output interactive Markov chains.

An I/O-IMC communicates with its environment through *actions*.  Following the
paper (Section 3) an action is either

* an **input** action (written ``a?``): the model reacts to it and must always
  be able to do so (input-enabledness), it may not delay or refuse it;
* an **output** action (written ``a!``): the model decides when to perform it;
  output actions are *immediate* (urgent) — no time passes in a state with an
  enabled output transition;
* an **internal** action (written ``a;``): invisible computation steps, also
  immediate.  Internal actions arise primarily from *hiding* output actions
  after composition.

The :class:`ActionSignature` groups the three (disjoint) action sets of a
model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SignatureError


class ActionType(enum.Enum):
    """Kind of an action within a particular action signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    @property
    def decoration(self) -> str:
        """Suffix used in the paper's notation (``?``, ``!`` or ``;``)."""
        if self is ActionType.INPUT:
            return "?"
        if self is ActionType.OUTPUT:
            return "!"
        return ";"


def format_action(action: str, kind: ActionType) -> str:
    """Render ``action`` with the paper's decoration, e.g. ``fA!``."""
    return f"{action}{kind.decoration}"


@dataclass(frozen=True)
class ActionSignature:
    """The (disjoint) input/output/internal action sets of an I/O-IMC.

    Instances are immutable; the transformation helpers (:meth:`hide`,
    :meth:`rename`, :meth:`merge`) return new signatures.
    """

    inputs: frozenset = field(default_factory=frozenset)
    outputs: frozenset = field(default_factory=frozenset)
    internals: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        inputs = frozenset(self.inputs)
        outputs = frozenset(self.outputs)
        internals = frozenset(self.internals)
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)
        object.__setattr__(self, "internals", internals)
        overlap = (inputs & outputs) | (inputs & internals) | (outputs & internals)
        if overlap:
            raise SignatureError(
                "action signature sets must be disjoint; offending actions: "
                + ", ".join(sorted(overlap))
            )

    # ------------------------------------------------------------------ views
    @property
    def visible(self) -> frozenset:
        """Actions observable by the environment (inputs and outputs)."""
        return self.inputs | self.outputs

    @property
    def all_actions(self) -> frozenset:
        """Every action mentioned in the signature."""
        return self.inputs | self.outputs | self.internals

    @property
    def locally_controlled(self) -> frozenset:
        """Actions whose occurrence the model itself decides (urgent)."""
        return self.outputs | self.internals

    def classify(self, action: str) -> ActionType:
        """Return the :class:`ActionType` of ``action``.

        Raises :class:`~repro.errors.SignatureError` if the action is unknown.
        """
        if action in self.inputs:
            return ActionType.INPUT
        if action in self.outputs:
            return ActionType.OUTPUT
        if action in self.internals:
            return ActionType.INTERNAL
        raise SignatureError(f"action {action!r} is not part of the signature")

    def __contains__(self, action: object) -> bool:
        return action in self.all_actions

    # --------------------------------------------------------- transformations
    def hide(self, actions: Iterable[str]) -> "ActionSignature":
        """Turn the given *output* actions into internal actions.

        Hiding an action that is not an output of this signature is an error;
        inputs cannot be hidden because the environment still needs to drive
        them.
        """
        to_hide = frozenset(actions)
        unknown = to_hide - self.outputs
        if unknown:
            raise SignatureError(
                "only output actions can be hidden; not outputs: "
                + ", ".join(sorted(unknown))
            )
        return ActionSignature(
            inputs=self.inputs,
            outputs=self.outputs - to_hide,
            internals=self.internals | to_hide,
        )

    def rename(self, mapping: Mapping[str, str]) -> "ActionSignature":
        """Rename actions according to ``mapping`` (unmentioned actions kept).

        The rename must not merge two previously distinct actions into one.
        """
        def apply(actions: frozenset) -> frozenset:
            return frozenset(mapping.get(a, a) for a in actions)

        renamed = ActionSignature(
            inputs=apply(self.inputs),
            outputs=apply(self.outputs),
            internals=apply(self.internals),
        )
        if len(renamed.all_actions) != len(self.all_actions):
            raise SignatureError("renaming must not merge distinct actions")
        return renamed

    def merge(self, other: "ActionSignature") -> "ActionSignature":
        """Signature of the parallel composition with ``other``.

        Outputs of either component stay outputs; an input that is an output of
        the other component is *connected* and becomes an output of the
        composite (the composite still emits it so further components can
        listen); remaining inputs stay inputs; internal actions are unioned.
        """
        if self.outputs & other.outputs:
            raise SignatureError(
                "components share output actions: "
                + ", ".join(sorted(self.outputs & other.outputs))
            )
        outputs = self.outputs | other.outputs
        inputs = (self.inputs | other.inputs) - outputs
        internals = self.internals | other.internals
        if internals & (inputs | outputs):
            raise SignatureError(
                "internal actions of one component clash with visible actions "
                "of the other: "
                + ", ".join(sorted(internals & (inputs | outputs)))
            )
        return ActionSignature(inputs=inputs, outputs=outputs, internals=internals)

    # ------------------------------------------------------------------ dunder
    def __str__(self) -> str:
        parts = []
        for action in sorted(self.inputs):
            parts.append(format_action(action, ActionType.INPUT))
        for action in sorted(self.outputs):
            parts.append(format_action(action, ActionType.OUTPUT))
        for action in sorted(self.internals):
            parts.append(format_action(action, ActionType.INTERNAL))
        return "{" + ", ".join(parts) + "}"


def signature(
    inputs: Iterable[str] = (),
    outputs: Iterable[str] = (),
    internals: Iterable[str] = (),
) -> ActionSignature:
    """Convenience constructor for :class:`ActionSignature`."""
    return ActionSignature(
        inputs=frozenset(inputs),
        outputs=frozenset(outputs),
        internals=frozenset(internals),
    )
