"""The input/output interactive Markov chain (I/O-IMC) model.

An I/O-IMC is a continuous-time Markov chain extended with interactive
transitions labelled by input, output or internal actions (Section 3 of the
paper).  This module provides an explicit-state representation together with
the basic structural operations used throughout the library:

* building models state by state (:meth:`IOIMC.add_state`,
  :meth:`IOIMC.add_interactive`, :meth:`IOIMC.add_markovian`),
* querying transitions and stability of states,
* hiding and renaming actions,
* restriction to reachable states,
* export to Graphviz ``dot`` for inspection.

Conventions
-----------

* States are integers ``0 .. num_states - 1``.
* **Input-enabledness**: an input action of the signature without an explicit
  transition from a state is an implicit self-loop, exactly as the paper omits
  such transitions "for clarity".  Only state-changing (or deliberately
  recorded) input transitions are stored.
* **Urgency**: output and internal actions are immediate.  The model class
  itself does not enforce maximal progress; the reduction pipeline
  (:mod:`repro.ioimc.maximal_progress`) prunes Markovian transitions of
  unstable states.
* States may carry a frozenset of string *labels* (atomic propositions, e.g.
  ``"failed"``) used by the analysis layer and respected by bisimulation
  minimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import ModelError, SignatureError
from .actions import ActionSignature, ActionType, format_action


@dataclass(frozen=True)
class InteractiveTransition:
    """An interactive transition ``source --action--> target``."""

    source: int
    action: str
    target: int


@dataclass(frozen=True)
class MarkovianTransition:
    """A Markovian transition ``source --rate--> target`` (rate > 0)."""

    source: int
    rate: float
    target: int


class IOIMC:
    """Explicit-state input/output interactive Markov chain.

    Parameters
    ----------
    name:
        Human readable name, used in diagnostics and composition bookkeeping.
    signature:
        The :class:`~repro.ioimc.actions.ActionSignature` of the model.
    """

    def __init__(self, name: str, signature: ActionSignature):
        self.name = name
        self.signature = signature
        self._interactive: List[Dict[str, List[int]]] = []
        self._markovian: List[Dict[int, float]] = []
        self._labels: List[FrozenSet[str]] = []
        self._state_names: List[Optional[str]] = []
        self._initial: Optional[int] = None

    # ------------------------------------------------------------------ build
    def add_state(
        self,
        labels: Iterable[str] = (),
        name: Optional[str] = None,
        initial: bool = False,
    ) -> int:
        """Add a state and return its index."""
        index = len(self._interactive)
        self._interactive.append({})
        self._markovian.append({})
        self._labels.append(frozenset(labels))
        self._state_names.append(name)
        if initial:
            self._initial = index
        return index

    def add_interactive(self, source: int, action: str, target: int) -> None:
        """Add an interactive transition; the action must be in the signature."""
        self._check_state(source)
        self._check_state(target)
        if action not in self.signature:
            raise SignatureError(
                f"action {action!r} is not in the signature of {self.name!r}"
            )
        targets = self._interactive[source].setdefault(action, [])
        if target not in targets:
            targets.append(target)

    def add_markovian(self, source: int, rate: float, target: int) -> None:
        """Add a Markovian transition; parallel transitions accumulate rates."""
        self._check_state(source)
        self._check_state(target)
        if not rate > 0.0:
            raise ModelError(f"Markovian rates must be positive, got {rate}")
        self._markovian[source][target] = self._markovian[source].get(target, 0.0) + rate

    def set_initial(self, state: int) -> None:
        self._check_state(state)
        self._initial = state

    def set_labels(self, state: int, labels: Iterable[str]) -> None:
        self._check_state(state)
        self._labels[state] = frozenset(labels)

    def set_state_name(self, state: int, name: str) -> None:
        self._check_state(state)
        self._state_names[state] = name

    # ---------------------------------------------------------------- queries
    @property
    def num_states(self) -> int:
        return len(self._interactive)

    @property
    def num_transitions(self) -> int:
        interactive = sum(
            len(targets) for per_state in self._interactive for targets in per_state.values()
        )
        markovian = sum(len(per_state) for per_state in self._markovian)
        return interactive + markovian

    @property
    def initial(self) -> int:
        if self._initial is None:
            raise ModelError(f"I/O-IMC {self.name!r} has no initial state")
        return self._initial

    @property
    def has_initial(self) -> bool:
        return self._initial is not None

    def states(self) -> range:
        return range(self.num_states)

    def labels(self, state: int) -> FrozenSet[str]:
        self._check_state(state)
        return self._labels[state]

    def state_name(self, state: int) -> str:
        self._check_state(state)
        name = self._state_names[state]
        return name if name is not None else str(state)

    def interactive_out(self, state: int) -> Iterator[Tuple[str, int]]:
        """Iterate over explicit interactive transitions ``(action, target)``."""
        self._check_state(state)
        for action, targets in self._interactive[state].items():
            for target in targets:
                yield action, target

    def interactive_on(self, state: int, action: str) -> Tuple[int, ...]:
        """Explicit targets of ``action`` from ``state`` (no implicit loops)."""
        self._check_state(state)
        return tuple(self._interactive[state].get(action, ()))

    def markovian_out(self, state: int) -> Iterator[Tuple[float, int]]:
        """Iterate over Markovian transitions ``(rate, target)``."""
        self._check_state(state)
        for target, rate in self._markovian[state].items():
            yield rate, target

    def exit_rate(self, state: int) -> float:
        """Total Markovian exit rate of ``state``."""
        self._check_state(state)
        return sum(self._markovian[state].values())

    def actions_enabled(self, state: int) -> FrozenSet[str]:
        """Actions with an explicit interactive transition from ``state``."""
        self._check_state(state)
        return frozenset(self._interactive[state])

    def internal_successors(self, state: int) -> Tuple[int, ...]:
        """Targets of internal transitions from ``state``."""
        return tuple(
            target
            for action, target in self.interactive_out(state)
            if self.signature.classify(action) is ActionType.INTERNAL
        )

    def is_stable(self, state: int) -> bool:
        """A state is stable if it has no internal transition enabled."""
        return not self.internal_successors(state)

    def is_urgent(self, state: int) -> bool:
        """A state is urgent if an output or internal transition is enabled.

        In an urgent state no time may pass (maximal progress), hence its
        Markovian transitions can never fire.
        """
        for action, _target in self.interactive_out(state):
            if self.signature.classify(action) is not ActionType.INPUT:
                return True
        return False

    def transitions(self) -> Iterator[object]:
        """Iterate over all transitions as dataclass records."""
        for state in self.states():
            for action, target in self.interactive_out(state):
                yield InteractiveTransition(state, action, target)
            for rate, target in self.markovian_out(state):
                yield MarkovianTransition(state, rate, target)

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`ModelError` if bad."""
        if self._initial is None:
            raise ModelError(f"I/O-IMC {self.name!r} has no initial state")
        for state in self.states():
            for action, targets in self._interactive[state].items():
                if action not in self.signature:
                    raise SignatureError(
                        f"state {state} of {self.name!r} uses unknown action {action!r}"
                    )
                for target in targets:
                    if not 0 <= target < self.num_states:
                        raise ModelError(
                            f"interactive transition from {state} targets missing state {target}"
                        )
            for target, rate in self._markovian[state].items():
                if not rate > 0.0:
                    raise ModelError(f"non-positive Markovian rate at state {state}")
                if not 0 <= target < self.num_states:
                    raise ModelError(
                        f"Markovian transition from {state} targets missing state {target}"
                    )

    # -------------------------------------------------------- transformations
    def copy(self, name: Optional[str] = None) -> "IOIMC":
        """Deep copy of the model (optionally renamed)."""
        clone = IOIMC(name if name is not None else self.name, self.signature)
        for state in self.states():
            clone.add_state(labels=self._labels[state], name=self._state_names[state])
        for state in self.states():
            for action, target in self.interactive_out(state):
                clone.add_interactive(state, action, target)
            for rate, target in self.markovian_out(state):
                clone.add_markovian(state, rate, target)
        if self._initial is not None:
            clone.set_initial(self._initial)
        return clone

    def hide(self, actions: Iterable[str], name: Optional[str] = None) -> "IOIMC":
        """Return a copy in which the given output actions are internal."""
        to_hide = frozenset(actions)
        hidden = IOIMC(
            name if name is not None else f"hide({self.name})",
            self.signature.hide(to_hide),
        )
        for state in self.states():
            hidden.add_state(labels=self._labels[state], name=self._state_names[state])
        for state in self.states():
            for action, target in self.interactive_out(state):
                hidden.add_interactive(state, action, target)
            for rate, target in self.markovian_out(state):
                hidden.add_markovian(state, rate, target)
        if self._initial is not None:
            hidden.set_initial(self._initial)
        return hidden

    def rename_actions(
        self, mapping: Mapping[str, str], name: Optional[str] = None
    ) -> "IOIMC":
        """Return a copy with actions renamed according to ``mapping``."""
        renamed = IOIMC(
            name if name is not None else self.name,
            self.signature.rename(mapping),
        )
        for state in self.states():
            renamed.add_state(labels=self._labels[state], name=self._state_names[state])
        for state in self.states():
            for action, target in self.interactive_out(state):
                renamed.add_interactive(state, mapping.get(action, action), target)
            for rate, target in self.markovian_out(state):
                renamed.add_markovian(state, rate, target)
        if self._initial is not None:
            renamed.set_initial(self._initial)
        return renamed

    def reachable_states(self) -> FrozenSet[int]:
        """States reachable from the initial state via any transition."""
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            state = frontier.pop()
            successors = [target for _a, target in self.interactive_out(state)]
            successors.extend(target for _r, target in self.markovian_out(state))
            for target in successors:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def restrict_to_reachable(self, name: Optional[str] = None) -> "IOIMC":
        """Return a copy containing only states reachable from the initial state."""
        reachable = sorted(self.reachable_states())
        remap = {old: new for new, old in enumerate(reachable)}
        restricted = IOIMC(name if name is not None else self.name, self.signature)
        for old in reachable:
            restricted.add_state(labels=self._labels[old], name=self._state_names[old])
        for old in reachable:
            for action, target in self.interactive_out(old):
                if target in remap:
                    restricted.add_interactive(remap[old], action, remap[target])
            for rate, target in self.markovian_out(old):
                if target in remap:
                    restricted.add_markovian(remap[old], rate, remap[target])
        restricted.set_initial(remap[self.initial])
        return restricted

    def relabel_states(self, labelling: Mapping[int, Iterable[str]]) -> "IOIMC":
        """Return a copy with the labels of the given states replaced."""
        clone = self.copy()
        for state, labels in labelling.items():
            clone.set_labels(state, labels)
        return clone

    # ----------------------------------------------------------------- export
    def to_dot(self) -> str:
        """Render the model as a Graphviz ``dot`` digraph (for documentation)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in self.states():
            shape = "doublecircle" if "failed" in self._labels[state] else "circle"
            label = self.state_name(state)
            if self._labels[state]:
                label += "\\n" + ",".join(sorted(self._labels[state]))
            lines.append(f'  s{state} [shape={shape}, label="{label}"];')
        if self._initial is not None:
            lines.append("  init [shape=point];")
            lines.append(f"  init -> s{self.initial};")
        for state in self.states():
            for action, target in self.interactive_out(state):
                kind = self.signature.classify(action)
                lines.append(
                    f'  s{state} -> s{target} [label="{format_action(action, kind)}"];'
                )
            for rate, target in self.markovian_out(state):
                lines.append(
                    f'  s{state} -> s{target} [label="{rate:g}", style=dashed];'
                )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line summary used by the aggregation statistics and benches."""
        return (
            f"{self.name}: {self.num_states} states, "
            f"{self.num_transitions} transitions, signature {self.signature}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IOIMC({self.name!r}, states={self.num_states}, transitions={self.num_transitions})"

    # ---------------------------------------------------------------- private
    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.num_states:
            raise ModelError(
                f"state {state} does not exist in {self.name!r} "
                f"(has {self.num_states} states)"
            )
