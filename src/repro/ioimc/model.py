"""The input/output interactive Markov chain (I/O-IMC) model.

An I/O-IMC is a continuous-time Markov chain extended with interactive
transitions labelled by input, output or internal actions (Section 3 of the
paper).  This module provides an explicit-state representation together with
the basic structural operations used throughout the library:

* building models state by state (:meth:`IOIMC.add_state`,
  :meth:`IOIMC.add_interactive`, :meth:`IOIMC.add_markovian`),
* querying transitions and stability of states,
* hiding and renaming actions,
* restriction to reachable states,
* export to Graphviz ``dot`` for inspection.

Representation
--------------

Transitions are stored in array-backed adjacency form: per state a flat list
of ``(action_id, target)`` pairs for interactive transitions (action ids come
from the process-wide :data:`~repro.ioimc.actions.ACTIONS` interner) and a
``target -> rate`` mapping for Markovian transitions.  Derived per-state data
— the enabled-action id set, its bitmask, the action -> targets view and the
stable/urgent flags — is computed lazily and cached; any mutation of a state
invalidates that state's caches.  The hot paths (composition, bisimulation,
maximal progress) work exclusively on the id-based API and never touch
strings.

Conventions
-----------

* States are integers ``0 .. num_states - 1``.
* **Input-enabledness**: an input action of the signature without an explicit
  transition from a state is an implicit self-loop, exactly as the paper omits
  such transitions "for clarity".  Only state-changing (or deliberately
  recorded) input transitions are stored.
* **Urgency**: output and internal actions are immediate.  The model class
  itself does not enforce maximal progress; the reduction pipeline
  (:mod:`repro.ioimc.maximal_progress`) prunes Markovian transitions of
  unstable states.
* States may carry a frozenset of string *labels* (atomic propositions, e.g.
  ``"failed"``) used by the analysis layer and respected by bisimulation
  minimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ModelError, SignatureError
from .actions import ACTIONS, ActionSignature, ActionType, format_action, intern_action


@dataclass(frozen=True, slots=True)
class InteractiveTransition:
    """An interactive transition ``source --action--> target``."""

    source: int
    action: str
    target: int


@dataclass(frozen=True, slots=True)
class MarkovianTransition:
    """A Markovian transition ``source --rate--> target`` (rate > 0)."""

    source: int
    rate: float
    target: int


class IOIMC:
    """Explicit-state input/output interactive Markov chain.

    Parameters
    ----------
    name:
        Human readable name, used in diagnostics and composition bookkeeping.
    signature:
        The :class:`~repro.ioimc.actions.ActionSignature` of the model.
    """

    __slots__ = (
        "name",
        "signature",
        "_itrans",
        "_mtrans",
        "_labels",
        "_state_names",
        "_initial",
        "_num_itrans",
        "_on_cache",
        "_enabled_cache",
        "_emask_cache",
    )

    def __init__(self, name: str, signature: ActionSignature):
        self.name = name
        self.signature = signature
        #: Per state: flat adjacency list of ``(action_id, target)`` pairs.
        self._itrans: List[List[Tuple[int, int]]] = []
        #: Per state: ``target -> accumulated rate``.
        self._mtrans: List[Dict[int, float]] = []
        self._labels: List[FrozenSet[str]] = []
        self._state_names: List[Optional[str]] = []
        self._initial: Optional[int] = None
        self._num_itrans = 0
        # Lazily built per-state caches (invalidated on mutation).
        self._on_cache: List[Optional[Dict[int, Tuple[int, ...]]]] = []
        self._enabled_cache: List[Optional[FrozenSet[int]]] = []
        self._emask_cache: List[int] = []

    # ------------------------------------------------------------------ build
    def add_state(
        self,
        labels: Iterable[str] = (),
        name: Optional[str] = None,
        initial: bool = False,
    ) -> int:
        """Add a state and return its index."""
        index = len(self._itrans)
        self._itrans.append([])
        self._mtrans.append({})
        self._labels.append(frozenset(labels))
        self._state_names.append(name)
        self._on_cache.append(None)
        self._enabled_cache.append(None)
        self._emask_cache.append(-1)
        if initial:
            self._initial = index
        return index

    def add_interactive(self, source: int, action: str, target: int) -> None:
        """Add an interactive transition; the action must be in the signature."""
        aid = intern_action(action)
        if aid not in self.signature.all_ids:
            raise SignatureError(
                f"action {action!r} is not in the signature of {self.name!r}"
            )
        self.add_interactive_id(source, aid, target)

    def add_interactive_id(self, source: int, aid: int, target: int) -> None:
        """Add an interactive transition by interned action id.

        Fast path used by composition and the quotient constructions; the id
        is assumed to belong to the signature (``validate`` checks it again).
        Deduplication goes through the per-action target buckets (O(bucket)
        instead of a scan over the state's whole adjacency), and the per-state
        caches are updated in place rather than invalidated.
        """
        self._check_state(source)
        self._check_state(target)
        buckets = self._on_cache[source]
        if buckets is None:
            buckets = self._build_on_cache(source)
        bucket = buckets.get(aid)
        if bucket is not None and target in bucket:
            return
        buckets[aid] = bucket + (target,) if bucket else (target,)
        self._itrans[source].append((aid, target))
        self._num_itrans += 1
        enabled = self._enabled_cache[source]
        if enabled is not None and aid not in enabled:
            self._enabled_cache[source] = enabled | {aid}
        mask = self._emask_cache[source]
        if mask >= 0:
            self._emask_cache[source] = mask | (1 << aid)

    def _add_interactive_bulk(
        self, source: int, pairs: List[Tuple[int, int]]
    ) -> None:
        """Append pre-deduplicated ``(aid, target)`` pairs in one shot.

        Quotient-construction fast path: the caller guarantees the pairs are
        distinct, the targets valid and the ids in the signature, so the
        per-pair bucket lookups of :meth:`add_interactive_id` are skipped and
        the per-state caches are simply reset.
        """
        self._itrans[source].extend(pairs)
        self._num_itrans += len(pairs)
        self._on_cache[source] = None
        self._enabled_cache[source] = None
        self._emask_cache[source] = -1

    def add_markovian(self, source: int, rate: float, target: int) -> None:
        """Add a Markovian transition; parallel transitions accumulate rates."""
        self._check_state(source)
        self._check_state(target)
        if not rate > 0.0:
            raise ModelError(f"Markovian rates must be positive, got {rate}")
        per_state = self._mtrans[source]
        per_state[target] = per_state.get(target, 0.0) + rate

    def set_initial(self, state: int) -> None:
        self._check_state(state)
        self._initial = state

    def set_labels(self, state: int, labels: Iterable[str]) -> None:
        self._check_state(state)
        self._labels[state] = frozenset(labels)

    def set_state_name(self, state: int, name: str) -> None:
        self._check_state(state)
        self._state_names[state] = name

    # ---------------------------------------------------------------- queries
    @property
    def num_states(self) -> int:
        return len(self._itrans)

    @property
    def num_transitions(self) -> int:
        markovian = sum(len(per_state) for per_state in self._mtrans)
        return self._num_itrans + markovian

    @property
    def initial(self) -> int:
        if self._initial is None:
            raise ModelError(f"I/O-IMC {self.name!r} has no initial state")
        return self._initial

    @property
    def has_initial(self) -> bool:
        return self._initial is not None

    def states(self) -> range:
        return range(self.num_states)

    def labels(self, state: int) -> FrozenSet[str]:
        self._check_state(state)
        return self._labels[state]

    def state_name(self, state: int) -> str:
        self._check_state(state)
        name = self._state_names[state]
        return name if name is not None else str(state)

    def interactive_out(self, state: int) -> Iterator[Tuple[str, int]]:
        """Iterate over explicit interactive transitions ``(action, target)``."""
        self._check_state(state)
        names = ACTIONS.name
        for aid, target in self._itrans[state]:
            yield names(aid), target

    def interactive_pairs(self, state: int) -> Sequence[Tuple[int, int]]:
        """The raw ``(action_id, target)`` adjacency of ``state`` (read-only)."""
        return self._itrans[state]

    def interactive_on(self, state: int, action: str) -> Tuple[int, ...]:
        """Explicit targets of ``action`` from ``state`` (no implicit loops)."""
        aid = ACTIONS.lookup(action)
        if aid < 0:
            self._check_state(state)
            return ()
        return self.interactive_on_id(state, aid)

    def interactive_on_id(self, state: int, aid: int) -> Tuple[int, ...]:
        """Explicit targets of the interned action ``aid`` from ``state``."""
        self._check_state(state)
        cache = self._on_cache[state]
        if cache is None:
            cache = self._build_on_cache(state)
        return cache.get(aid, ())

    def _build_on_cache(self, state: int) -> Dict[int, Tuple[int, ...]]:
        cache: Dict[int, Tuple[int, ...]] = {}
        for pair_aid, target in self._itrans[state]:
            existing = cache.get(pair_aid)
            cache[pair_aid] = existing + (target,) if existing else (target,)
        self._on_cache[state] = cache
        return cache

    def markovian_out(self, state: int) -> Iterator[Tuple[float, int]]:
        """Iterate over Markovian transitions ``(rate, target)``."""
        self._check_state(state)
        for target, rate in self._mtrans[state].items():
            yield rate, target

    def markovian_dict(self, state: int) -> Mapping[int, float]:
        """The raw ``target -> rate`` mapping of ``state`` (read-only)."""
        return self._mtrans[state]

    def exit_rate(self, state: int) -> float:
        """Total Markovian exit rate of ``state``."""
        self._check_state(state)
        return sum(self._mtrans[state].values())

    def actions_enabled(self, state: int) -> FrozenSet[str]:
        """Actions with an explicit interactive transition from ``state``."""
        names = ACTIONS.name
        return frozenset(names(aid) for aid in self.enabled_ids(state))

    def enabled_ids(self, state: int) -> FrozenSet[int]:
        """Interned ids of the actions enabled in ``state`` (cached)."""
        self._check_state(state)
        enabled = self._enabled_cache[state]
        if enabled is None:
            enabled = frozenset(aid for aid, _target in self._itrans[state])
            self._enabled_cache[state] = enabled
        return enabled

    def enabled_mask(self, state: int) -> int:
        """Bitset of the action ids enabled in ``state`` (cached)."""
        self._check_state(state)
        mask = self._emask_cache[state]
        if mask < 0:
            mask = 0
            for aid, _target in self._itrans[state]:
                mask |= 1 << aid
            self._emask_cache[state] = mask
        return mask

    def internal_successors(self, state: int) -> Tuple[int, ...]:
        """Targets of internal transitions from ``state``."""
        internal = self.signature.internal_ids
        return tuple(
            target for aid, target in self._itrans[state] if aid in internal
        )

    def is_stable(self, state: int) -> bool:
        """A state is stable if it has no internal transition enabled."""
        return not (self.enabled_mask(state) & self.signature.internal_mask)

    def is_urgent(self, state: int) -> bool:
        """A state is urgent if an output or internal transition is enabled.

        In an urgent state no time may pass (maximal progress), hence its
        Markovian transitions can never fire.
        """
        return bool(self.enabled_mask(state) & self.signature.urgent_mask)

    def transitions(self) -> Iterator[object]:
        """Iterate over all transitions as dataclass records."""
        for state in self.states():
            for action, target in self.interactive_out(state):
                yield InteractiveTransition(state, action, target)
            for rate, target in self.markovian_out(state):
                yield MarkovianTransition(state, rate, target)

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`ModelError` if bad."""
        if self._initial is None:
            raise ModelError(f"I/O-IMC {self.name!r} has no initial state")
        known = self.signature.all_ids
        num_states = self.num_states
        for state in self.states():
            for aid, target in self._itrans[state]:
                if aid not in known:
                    raise SignatureError(
                        f"state {state} of {self.name!r} uses unknown action "
                        f"{ACTIONS.name(aid)!r}"
                    )
                if not 0 <= target < num_states:
                    raise ModelError(
                        f"interactive transition from {state} targets missing state {target}"
                    )
            for target, rate in self._mtrans[state].items():
                if not rate > 0.0:
                    raise ModelError(f"non-positive Markovian rate at state {state}")
                if not 0 <= target < num_states:
                    raise ModelError(
                        f"Markovian transition from {state} targets missing state {target}"
                    )

    # ---------------------------------------------------------------- pickling
    # Interned action ids are only meaningful inside the process that created
    # them (see :class:`~repro.ioimc.actions.ActionInterner`), so a model
    # crosses process boundaries *by name*: the state carries an
    # ``old id -> action name`` table for every id the adjacency uses, and
    # unpickling re-interns the names and remaps the transitions.  Under a
    # forked worker the two tables usually coincide and the remap is a no-op.

    def __getstate__(self) -> dict:
        used = {aid for pairs in self._itrans for aid, _target in pairs}
        names = ACTIONS.name
        return {
            "name": self.name,
            "signature": self.signature,
            "itrans": self._itrans,
            "mtrans": self._mtrans,
            "labels": self._labels,
            "state_names": self._state_names,
            "initial": self._initial,
            "actions": {aid: names(aid) for aid in used},
        }

    def __setstate__(self, state: dict) -> None:
        remap = {
            old: intern_action(name) for old, name in state["actions"].items()
        }
        itrans = state["itrans"]
        if any(old != new for old, new in remap.items()):
            itrans = [
                [(remap[aid], target) for aid, target in pairs] for pairs in itrans
            ]
        self.name = state["name"]
        self.signature = state["signature"]
        self._itrans = itrans
        self._mtrans = state["mtrans"]
        self._labels = state["labels"]
        self._state_names = state["state_names"]
        self._initial = state["initial"]
        self._num_itrans = sum(len(pairs) for pairs in itrans)
        num = len(itrans)
        self._on_cache = [None] * num
        self._enabled_cache = [None] * num
        self._emask_cache = [-1] * num

    # -------------------------------------------------------- transformations
    def _skeleton(self, name: Optional[str] = None, signature: Optional[ActionSignature] = None) -> "IOIMC":
        """A copy with the same states/labels/initial but no transitions."""
        clone = IOIMC(
            name if name is not None else self.name,
            signature if signature is not None else self.signature,
        )
        clone._labels = list(self._labels)
        clone._state_names = list(self._state_names)
        num = self.num_states
        clone._itrans = [[] for _ in range(num)]
        clone._mtrans = [{} for _ in range(num)]
        clone._on_cache = [None] * num
        clone._enabled_cache = [None] * num
        clone._emask_cache = [-1] * num
        clone._initial = self._initial
        return clone

    def _set_interactive_raw(self, state: int, pairs: List[Tuple[int, int]]) -> None:
        """Replace the adjacency of ``state`` wholesale (no dedup, no checks)."""
        self._num_itrans += len(pairs) - len(self._itrans[state])
        self._itrans[state] = pairs
        self._invalidate(state)

    def _set_markovian_raw(self, state: int, rates: Dict[int, float]) -> None:
        """Replace the Markovian transitions of ``state`` wholesale."""
        self._mtrans[state] = rates

    def copy(self, name: Optional[str] = None) -> "IOIMC":
        """Deep copy of the model (optionally renamed)."""
        clone = self._skeleton(name)
        for state in self.states():
            clone._set_interactive_raw(state, list(self._itrans[state]))
            clone._set_markovian_raw(state, dict(self._mtrans[state]))
        return clone

    def hide(self, actions: Iterable[str], name: Optional[str] = None) -> "IOIMC":
        """Return a copy in which the given output actions are internal.

        Hiding only reclassifies actions — the interned ids (and hence the
        whole transition structure) are unchanged, so this is a cheap copy.
        """
        to_hide = frozenset(actions)
        hidden = self._skeleton(
            name if name is not None else f"hide({self.name})",
            self.signature.hide(to_hide),
        )
        for state in self.states():
            hidden._set_interactive_raw(state, list(self._itrans[state]))
            hidden._set_markovian_raw(state, dict(self._mtrans[state]))
        return hidden

    def rename_actions(
        self, mapping: Mapping[str, str], name: Optional[str] = None
    ) -> "IOIMC":
        """Return a copy with actions renamed according to ``mapping``."""
        renamed = self._skeleton(
            name if name is not None else self.name,
            self.signature.rename(mapping),
        )
        id_map = {
            intern_action(old): intern_action(new) for old, new in mapping.items()
        }
        for state in self.states():
            renamed._set_interactive_raw(
                state,
                [(id_map.get(aid, aid), target) for aid, target in self._itrans[state]],
            )
            renamed._set_markovian_raw(state, dict(self._mtrans[state]))
        return renamed

    def reachable_states(self) -> FrozenSet[int]:
        """States reachable from the initial state via any transition."""
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            state = frontier.pop()
            for _aid, target in self._itrans[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
            for target in self._mtrans[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def restrict_to_reachable(self, name: Optional[str] = None) -> "IOIMC":
        """Return a copy containing only states reachable from the initial state."""
        reachable = sorted(self.reachable_states())
        if len(reachable) == self.num_states:
            return self.copy(name)
        remap = {old: new for new, old in enumerate(reachable)}
        restricted = IOIMC(name if name is not None else self.name, self.signature)
        for old in reachable:
            restricted.add_state(labels=self._labels[old], name=self._state_names[old])
        for old in reachable:
            new = remap[old]
            restricted._set_interactive_raw(
                new,
                [
                    (aid, remap[target])
                    for aid, target in self._itrans[old]
                    if target in remap
                ],
            )
            restricted._set_markovian_raw(
                new,
                {
                    remap[target]: rate
                    for target, rate in self._mtrans[old].items()
                    if target in remap
                },
            )
        restricted.set_initial(remap[self.initial])
        return restricted

    def relabel_states(self, labelling: Mapping[int, Iterable[str]]) -> "IOIMC":
        """Return a copy with the labels of the given states replaced."""
        clone = self.copy()
        for state, labels in labelling.items():
            clone.set_labels(state, labels)
        return clone

    # ----------------------------------------------------------------- export
    def to_dot(self) -> str:
        """Render the model as a Graphviz ``dot`` digraph (for documentation)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in self.states():
            shape = "doublecircle" if "failed" in self._labels[state] else "circle"
            label = self.state_name(state)
            if self._labels[state]:
                label += "\\n" + ",".join(sorted(self._labels[state]))
            lines.append(f'  s{state} [shape={shape}, label="{label}"];')
        if self._initial is not None:
            lines.append("  init [shape=point];")
            lines.append(f"  init -> s{self.initial};")
        for state in self.states():
            for action, target in self.interactive_out(state):
                kind = self.signature.classify(action)
                lines.append(
                    f'  s{state} -> s{target} [label="{format_action(action, kind)}"];'
                )
            for rate, target in self.markovian_out(state):
                lines.append(
                    f'  s{state} -> s{target} [label="{rate:g}", style=dashed];'
                )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line summary used by the aggregation statistics and benches."""
        return (
            f"{self.name}: {self.num_states} states, "
            f"{self.num_transitions} transitions, signature {self.signature}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"IOIMC({self.name!r}, states={self.num_states}, transitions={self.num_transitions})"

    # ---------------------------------------------------------------- private
    def _invalidate(self, state: int) -> None:
        self._on_cache[state] = None
        self._enabled_cache[state] = None
        self._emask_cache[state] = -1

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.num_states:
            raise ModelError(
                f"state {state} does not exist in {self.name!r} "
                f"(has {self.num_states} states)"
            )
