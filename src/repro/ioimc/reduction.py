"""The aggregation pipeline used after every composition step.

The paper's compositional aggregation interleaves parallel composition with
state-space reduction.  This module wires the individual reductions into a
single :func:`aggregate` entry point:

1. restriction to reachable states,
2. maximal progress (urgency) pruning,
3. removal of internal self-loops,
4. compression of deterministic internal transitions (vanishing states whose
   only behaviour is a single internal step),
5. bisimulation minimisation (weak by default, strong as a cross-check),
6. another reachability restriction.

Every step preserves the reliability measures computed by the analysis layer;
the pipeline records before/after statistics so benchmarks can report the
"largest intermediate model" figures from Section 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ModelError
from .bisimulation import ALGORITHMS, minimize_strong, minimize_weak
from .maximal_progress import apply_maximal_progress
from .model import IOIMC
from .partition import DEFAULT_RATE_DIGITS


@dataclass
class AggregationOptions:
    """Configuration of the aggregation pipeline.

    Attributes
    ----------
    method:
        ``"weak"`` (paper default), ``"strong"``, ``"tau"`` (only steps 1-4) or
        ``"none"`` (reachability restriction only).
    urgent_outputs:
        Whether output actions make a state urgent for maximal progress
        (I/O-IMC semantics; ``True`` in the paper).
    respect_labels:
        Keep differently labelled states apart during minimisation.
    minimiser:
        Bisimulation refinement engine: ``"closure"`` (default, saturation-free
        closure-then-strong refinement with batched frontiers),
        ``"splitter"`` (per-splitter partition refinement on the tau-SCC
        condensation) or ``"signature"`` (the seed signature-refinement
        reference).  All three compute identical quotients.
    rate_digits:
        Significant digits compared when two aggregate Markovian rates are
        tested for equality during refinement (default
        :data:`~repro.ioimc.partition.DEFAULT_RATE_DIGITS`); all engines
        honour the same precision.
    minimisation_processes:
        Worker processes for intra-minimisation multi-core (1 = serial).
        Connected components of the transition graph refine in parallel; a
        single-component model — every reachability-restricted product of one
        root — always refines serially, so this only pays off on disconnected
        scenario unions.
    """

    method: str = "weak"
    urgent_outputs: bool = True
    respect_labels: bool = True
    minimiser: str = "closure"
    rate_digits: int = DEFAULT_RATE_DIGITS
    minimisation_processes: int = 1

    def __post_init__(self) -> None:
        if self.method not in {"weak", "strong", "tau", "none"}:
            raise ModelError(f"unknown aggregation method {self.method!r}")
        if self.minimiser not in ALGORITHMS:
            raise ModelError(
                f"unknown minimiser {self.minimiser!r}; choose one of {ALGORITHMS}"
            )
        if not isinstance(self.rate_digits, int) or self.rate_digits < 1:
            raise ModelError(
                f"rate_digits must be a positive integer, got {self.rate_digits!r}"
            )
        if int(self.minimisation_processes) < 1:
            raise ModelError(
                "minimisation_processes must be >= 1, got "
                f"{self.minimisation_processes!r}"
            )


@dataclass
class AggregationStatistics:
    """Size of a model before and after one aggregation call."""

    states_before: int = 0
    transitions_before: int = 0
    states_after: int = 0
    transitions_after: int = 0

    @property
    def state_reduction(self) -> float:
        """Fraction of states removed (0.0 if the model was already minimal)."""
        if self.states_before == 0:
            return 0.0
        return 1.0 - self.states_after / self.states_before


def remove_internal_self_loops(model: IOIMC) -> IOIMC:
    """Drop internal transitions from a state to itself.

    Weak bisimulation (and every measure we compute) is insensitive to internal
    self-loops; removing them keeps later reductions simple and avoids
    spurious "unstable" states.
    """
    internal = model.signature.internal_ids
    cleaned = model._skeleton()
    for state in model.states():
        cleaned._set_interactive_raw(
            state,
            [
                (aid, target)
                for aid, target in model.interactive_pairs(state)
                if target != state or aid not in internal
            ],
        )
        cleaned._set_markovian_raw(state, dict(model.markovian_dict(state)))
    return cleaned


def compress_deterministic_tau(model: IOIMC) -> IOIMC:
    """Eliminate states whose only behaviour is a single internal transition.

    Such states are vanishing (no time is spent in them) and deterministic, so
    redirecting their incoming transitions to their unique successor is weak
    bisimulation preserving.  Chains of such states collapse in one pass.
    """
    internal = model.signature.internal_ids
    forward: Dict[int, int] = {}
    for state in model.states():
        pairs = model.interactive_pairs(state)
        if len(pairs) != 1:
            continue
        aid, target = pairs[0]
        if aid not in internal:
            continue
        if target == state:
            continue
        if model.markovian_dict(state):
            continue
        forward[state] = target

    if not forward:
        return model

    # A cycle of deterministic internal transitions (a divergence) cannot be
    # compressed away entirely: keep one representative per cycle so that every
    # forwarding chain terminates in a kept state.
    for start in list(forward):
        if start not in forward:
            continue
        path = []
        on_path = {}
        state = start
        while state in forward and state not in on_path:
            on_path[state] = len(path)
            path.append(state)
            state = forward[state]
        if state in on_path:  # found a cycle: keep its smallest member
            representative = min(path[on_path[state]:])
            del forward[representative]

    def resolve(state: int) -> int:
        while state in forward:
            state = forward[state]
        return state

    resolved = {state: resolve(state) for state in model.states()}
    keep = sorted(state for state in model.states() if state not in forward)
    remap = {old: new for new, old in enumerate(keep)}

    compressed = IOIMC(model.name, model.signature)
    for old in keep:
        compressed.add_state(labels=model.labels(old), name=model.state_name(old))
    for old in keep:
        new = remap[old]
        pairs: List[Tuple[int, int]] = []
        for aid, target in model.interactive_pairs(old):
            pair = (aid, remap[resolved[target]])
            if pair not in pairs:
                pairs.append(pair)
        compressed._set_interactive_raw(new, pairs)
        rates: Dict[int, float] = {}
        for target, rate in model.markovian_dict(old).items():
            resolved_target = remap[resolved[target]]
            rates[resolved_target] = rates.get(resolved_target, 0.0) + rate
        compressed._set_markovian_raw(new, rates)
    compressed.set_initial(remap[resolved[model.initial]])
    return compressed


def aggregate(
    model: IOIMC,
    options: Optional[AggregationOptions] = None,
) -> tuple[IOIMC, AggregationStatistics]:
    """Run the full aggregation pipeline on ``model``.

    Returns the reduced model together with before/after statistics.
    """
    options = options or AggregationOptions()
    stats = AggregationStatistics(
        states_before=model.num_states,
        transitions_before=model.num_transitions,
    )

    reduced = model.restrict_to_reachable()
    if options.method != "none":
        # The individual reductions can enable each other (e.g. quotienting may
        # create a deterministic internal chain that can then be compressed),
        # so the sequence is iterated until a fixpoint is reached.  Two or
        # three rounds suffice in practice; the bound is purely defensive.
        for _round in range(10):
            size_before = (reduced.num_states, reduced.num_transitions)
            reduced = apply_maximal_progress(reduced, urgent_outputs=options.urgent_outputs)
            reduced = remove_internal_self_loops(reduced)
            reduced = compress_deterministic_tau(reduced)
            reduced = reduced.restrict_to_reachable()
            if options.method == "weak":
                reduced = minimize_weak(
                    reduced,
                    respect_labels=options.respect_labels,
                    algorithm=options.minimiser,
                    rate_digits=options.rate_digits,
                    processes=options.minimisation_processes,
                )
            elif options.method == "strong":
                reduced = minimize_strong(
                    reduced,
                    respect_labels=options.respect_labels,
                    algorithm=options.minimiser,
                    rate_digits=options.rate_digits,
                    processes=options.minimisation_processes,
                )
            # re-run maximal progress: quotienting may have exposed new urgency
            reduced = apply_maximal_progress(reduced, urgent_outputs=options.urgent_outputs)
            reduced = reduced.restrict_to_reachable()
            if (reduced.num_states, reduced.num_transitions) == size_before:
                break

    reduced.name = model.name
    stats.states_after = reduced.num_states
    stats.transitions_after = reduced.num_transitions
    return reduced, stats
