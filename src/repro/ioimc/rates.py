"""Symbolic (parametric) Markovian rates.

The rate-sweep engine (:mod:`repro.core.sweep`) aggregates a fault tree
*once* and re-instantiates only the CTMC rates per parameter sample.  That is
sound because every operation the pipeline applies to Markovian rates —
copying them through parallel composition, pruning them under maximal
progress, summing them into quotient blocks during bisimulation minimisation,
accumulating them while eliminating vanishing states — keeps each rate a
**non-negative linear form** over the declared basic-event rate parameters::

    rate = const + sum_i coeff_i * lambda_i

:class:`ParametricRate` represents exactly that form and behaves like a
number wherever the pipeline does arithmetic (``+`` with floats and other
forms, scaling by a dormancy factor, ``> 0`` checks, ``float()`` coercion to
the nominal value), so the whole aggregation stack runs unchanged on
parametric models.  Equality and hashing are *structural*: two rates with
coincidentally equal nominal values but different parameter dependencies are
kept apart, which is what makes the minimised quotient valid for **every**
positive parameter assignment, not just the nominal one (see
``canonical_key`` and :func:`repro.ioimc.partition.canonical_rate`).
"""

from __future__ import annotations

from typing import Callable, Mapping, Tuple, Union

from ..errors import ModelError

RateLike = Union[float, "ParametricRate"]
_Rounder = Callable[[float], float]


class ParametricRate:
    """An immutable linear rate form ``const + sum(coeff * param)``.

    Parameters
    ----------
    const:
        The constant (parameter-free) part of the rate.
    coeffs:
        Mapping from parameter name to its (positive) coefficient.
    nominals:
        Mapping from parameter name to the parameter's nominal *value* (not
        its contribution); parameters a partial assignment leaves out
        evaluate at exactly these values.  Within one pipeline run every
        parameter has a single declared nominal, so merging forms never
        conflicts.
    """

    __slots__ = ("const", "coeffs", "nominals")

    def __init__(
        self,
        const: float,
        coeffs: Mapping[str, float],
        nominals: Mapping[str, float],
    ):
        object.__setattr__(self, "const", float(const))
        object.__setattr__(self, "coeffs", dict(coeffs))
        object.__setattr__(self, "nominals", dict(nominals))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("ParametricRate is immutable")

    def __reduce__(self):
        # The immutability guard blocks the default slot-based __setstate__;
        # rebuild through the constructor instead (models holding parametric
        # rates may travel to batch worker processes by pickle).
        return (ParametricRate, (self.const, self.coeffs, self.nominals))

    # ------------------------------------------------------------ construction
    @classmethod
    def for_parameter(
        cls, parameter: str, nominal_value: float, coefficient: float = 1.0
    ) -> "ParametricRate":
        """The form ``coefficient * parameter`` with the given nominal value."""
        if not coefficient > 0.0:
            raise ModelError(
                f"parametric rate coefficients must be positive, got {coefficient}"
            )
        return cls(0.0, {parameter: coefficient}, {parameter: nominal_value})

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: RateLike) -> "ParametricRate":
        if isinstance(other, ParametricRate):
            coeffs = dict(self.coeffs)
            for parameter, coefficient in other.coeffs.items():
                coeffs[parameter] = coeffs.get(parameter, 0.0) + coefficient
            nominals = dict(self.nominals)
            nominals.update(other.nominals)
            return ParametricRate(self.const + other.const, coeffs, nominals)
        if isinstance(other, (int, float)):
            return ParametricRate(self.const + other, self.coeffs, self.nominals)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, factor: float) -> "ParametricRate":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ParametricRate(
            self.const * factor,
            {parameter: coefficient * factor for parameter, coefficient in self.coeffs.items()},
            self.nominals,
        )

    __rmul__ = __mul__

    # ------------------------------------------------------------ comparisons
    # Order comparisons against numbers (``rate > 0.0`` guards throughout the
    # pipeline) use the nominal value; equality stays structural so hashing
    # into rate classes never conflates distinct forms.
    def _cmp_value(self, other: RateLike) -> Tuple[float, float]:
        if isinstance(other, ParametricRate):
            return self.nominal, other.nominal
        return self.nominal, float(other)

    def __gt__(self, other: RateLike) -> bool:
        mine, theirs = self._cmp_value(other)
        return mine > theirs

    def __ge__(self, other: RateLike) -> bool:
        mine, theirs = self._cmp_value(other)
        return mine >= theirs

    def __lt__(self, other: RateLike) -> bool:
        mine, theirs = self._cmp_value(other)
        return mine < theirs

    def __le__(self, other: RateLike) -> bool:
        mine, theirs = self._cmp_value(other)
        return mine <= theirs

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ParametricRate):
            return self.const == other.const and self.coeffs == other.coeffs
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.const, tuple(sorted(self.coeffs.items()))))

    # ------------------------------------------------------------- evaluation
    @property
    def nominal(self) -> float:
        """The numeric value under the nominal parameter assignment."""
        value = self.const
        for parameter, coefficient in self.coeffs.items():
            value += coefficient * self.nominals[parameter]
        return value

    def __float__(self) -> float:
        return self.nominal

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """The numeric rate under ``assignment`` (nominal for absent params)."""
        value = self.const
        nominals = self.nominals
        for parameter, coefficient in self.coeffs.items():
            value += coefficient * assignment.get(parameter, nominals[parameter])
        return value

    @property
    def parameters(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    # ------------------------------------------------------------- canonical
    def canonical_key(self, round_to: "_Rounder") -> Tuple[object, ...]:
        """A hashable token for rate-class bucketing during minimisation.

        ``round_to`` is the significant-digit rounding used for plain float
        rates; applying it per component keeps the same tolerance for
        floating-point noise while never conflating different forms.
        """
        return (
            "param-rate",
            round_to(self.const),
            tuple(
                (parameter, round_to(coefficient))
                for parameter, coefficient in sorted(self.coeffs.items())
            ),
        )

    # ---------------------------------------------------------------- display
    def __format__(self, spec: str) -> str:
        return format(self.nominal, spec)

    def __repr__(self) -> str:
        terms = [f"{coefficient:g}*{parameter}" for parameter, coefficient in sorted(self.coeffs.items())]
        if self.const:
            terms.insert(0, f"{self.const:g}")
        return f"ParametricRate({' + '.join(terms) or '0'} ~ {self.nominal:g})"


def evaluate_rate(rate: RateLike, assignment: Mapping[str, float]) -> float:
    """Numeric value of a (possibly parametric) rate under ``assignment``."""
    if isinstance(rate, ParametricRate):
        return rate.evaluate(assignment)
    return float(rate)


def rate_parameters(rate: RateLike) -> Tuple[str, ...]:
    """The parameter names a rate depends on (empty for plain floats)."""
    if isinstance(rate, ParametricRate):
        return rate.parameters
    return ()
