"""Input/output interactive Markov chains (I/O-IMC).

This package provides the process-algebraic substrate of the reproduction:
models (:class:`IOIMC`), action signatures, declarative element behaviours,
parallel composition, hiding, maximal progress and bisimulation-based
aggregation.  It knows nothing about fault trees; the DFT semantics lives in
:mod:`repro.core`.
"""

from .actions import (
    ACTIONS,
    ActionInterner,
    ActionSignature,
    ActionType,
    action_name,
    format_action,
    intern_action,
    signature,
)
from .behavior import ElementBehavior, ExplicitBehavior, build_ioimc
from .bisimulation import (
    ALGORITHMS,
    minimize_strong,
    minimize_weak,
    quotient_strong,
    quotient_weak,
    strong_bisimulation_partition,
    weak_bisimulation_partition,
)
from .composition import closed_actions, hide_closed, parallel, parallel_many
from .maximal_progress import apply_maximal_progress, count_pruned_transitions
from .model import IOIMC, InteractiveTransition, MarkovianTransition
from .rates import ParametricRate, evaluate_rate, rate_parameters
from .partition import (
    DEFAULT_RATE_DIGITS,
    RefinablePartition,
    TauCondensation,
    canonical_rate,
)
from .reduction import (
    AggregationOptions,
    AggregationStatistics,
    aggregate,
    compress_deterministic_tau,
    remove_internal_self_loops,
)

__all__ = [
    "ACTIONS",
    "ALGORITHMS",
    "DEFAULT_RATE_DIGITS",
    "RefinablePartition",
    "TauCondensation",
    "canonical_rate",
    "ParametricRate",
    "evaluate_rate",
    "rate_parameters",
    "ActionInterner",
    "ActionSignature",
    "ActionType",
    "action_name",
    "intern_action",
    "AggregationOptions",
    "AggregationStatistics",
    "ElementBehavior",
    "ExplicitBehavior",
    "IOIMC",
    "InteractiveTransition",
    "MarkovianTransition",
    "aggregate",
    "apply_maximal_progress",
    "build_ioimc",
    "closed_actions",
    "compress_deterministic_tau",
    "count_pruned_transitions",
    "format_action",
    "hide_closed",
    "minimize_strong",
    "minimize_weak",
    "parallel",
    "parallel_many",
    "quotient_strong",
    "quotient_weak",
    "remove_internal_self_loops",
    "signature",
    "strong_bisimulation_partition",
    "weak_bisimulation_partition",
]
