"""Baselines the paper compares against.

* :mod:`repro.baselines.monolithic` — DIFTree's whole-tree Markov-chain
  generation (the state-space-explosion comparison point of Section 5.2), also
  used by the test-suite as an independent implementation of the DFT semantics;
* :mod:`repro.baselines.bdd` — a compact ROBDD engine used to solve static
  modules;
* :mod:`repro.baselines.diftree` — the modular DIFTree analysis combining the
  two, including its restriction that only static contexts may detach
  sub-modules.
"""

from .bdd import BDDManager, BDDNode
from .diftree import DiftreeAnalyzer, DiftreeResult, ModuleSolution, diftree_unreliability
from .monolithic import (
    MonolithicMarkovGenerator,
    MonolithicResult,
    MonolithicState,
    monolithic_unreliability,
)

__all__ = [
    "BDDManager",
    "BDDNode",
    "DiftreeAnalyzer",
    "DiftreeResult",
    "ModuleSolution",
    "MonolithicMarkovGenerator",
    "MonolithicResult",
    "MonolithicState",
    "diftree_unreliability",
    "monolithic_unreliability",
]
