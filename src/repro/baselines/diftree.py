"""The DIFTree-style modular analysis (the paper's baseline methodology).

DIFTree (Dugan et al. 1997) analyses a DFT by

1. splitting it into independent modules (:func:`repro.dft.modules.diftree_modules`),
2. solving *static* modules with binary decision diagrams,
3. solving *dynamic* modules by converting them — monolithically — into a
   Markov chain,
4. replacing each solved module by a basic event with a constant failure
   probability inside its (static) parent module.

The crucial restriction reproduced here is that a module can only be detached
when its parent context is static; a dynamic gate therefore drags its whole
sub-tree into one Markov chain.  The cascaded PAND system of Section 5.2 shows
how this blows up the state space compared to the compositional approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dft.elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    VotingGate,
)
from ..dft.modules import Module, diftree_modules
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError
from .bdd import BDDManager, BDDNode
from .monolithic import MonolithicMarkovGenerator


@dataclass
class ModuleSolution:
    """Result of solving one DIFTree module."""

    root: str
    dynamic: bool
    probability: float
    #: Markov-chain size for dynamic modules, BDD node count for static ones.
    states: int
    transitions: int

    def summary(self) -> str:
        kind = "dynamic (Markov chain)" if self.dynamic else "static (BDD)"
        return (
            f"module {self.root!r}: {kind}, {self.states} states/nodes, "
            f"{self.transitions} transitions, P(fail) = {self.probability:.6f}"
        )


@dataclass
class DiftreeResult:
    """Outcome of a full DIFTree analysis."""

    unreliability: float
    time: float
    modules: List[ModuleSolution] = field(default_factory=list)

    @property
    def largest_chain_states(self) -> int:
        """States of the biggest Markov chain generated for a dynamic module."""
        return max((m.states for m in self.modules if m.dynamic), default=0)

    @property
    def largest_chain_transitions(self) -> int:
        return max((m.transitions for m in self.modules if m.dynamic), default=0)

    def summary(self) -> str:
        return (
            f"DIFTree unreliability(t={self.time:g}) = {self.unreliability:.6f}; "
            f"{len(self.modules)} modules, biggest Markov chain "
            f"{self.largest_chain_states} states / {self.largest_chain_transitions} transitions"
        )


class DiftreeAnalyzer:
    """Modular DFT analysis following the DIFTree methodology."""

    def __init__(self, tree: DynamicFaultTree):
        self.tree = tree
        tree.validate()
        if tree.is_repairable:
            raise AnalysisError("the DIFTree baseline does not support repairable trees")
        self._modules = diftree_modules(tree)
        self._module_by_root: Dict[str, Module] = {m.root: m for m in self._modules}

    @property
    def modules(self) -> List[Module]:
        return list(self._modules)

    # ------------------------------------------------------------------ solve
    def analyze(self, time: float) -> DiftreeResult:
        """Compute the system unreliability at mission ``time``."""
        if time < 0.0:
            raise AnalysisError("mission time must be non-negative")
        solved: Dict[str, ModuleSolution] = {}
        order = [
            name for name in self.tree.topological_order() if name in self._module_by_root
        ]
        for root in order:
            module = self._module_by_root[root]
            if module.dynamic:
                solved[root] = self._solve_dynamic(module, time)
            else:
                solved[root] = self._solve_static(module, time, solved)

        top_root = self.tree.top
        if top_root not in solved:
            raise AnalysisError(
                f"the top event {top_root!r} was not covered by any module"
            )
        result = DiftreeResult(unreliability=solved[top_root].probability, time=time)
        result.modules = [solved[root] for root in order]
        return result

    def unreliability(self, time: float) -> float:
        return self.analyze(time).unreliability

    # ------------------------------------------------------- dynamic modules
    def _solve_dynamic(self, module: Module, time: float) -> ModuleSolution:
        subtree = self._subtree(module)
        generator = MonolithicMarkovGenerator(subtree)
        chain = generator.build()
        from ..ctmc.transient import probability_reach_label

        probability = probability_reach_label(chain.ctmc, "failed", time)
        return ModuleSolution(
            root=module.root,
            dynamic=True,
            probability=probability,
            states=chain.num_states,
            transitions=chain.num_transitions,
        )

    def _subtree(self, module: Module) -> DynamicFaultTree:
        subtree = DynamicFaultTree(f"{self.tree.name}::{module.root}")
        for name in self.tree.topological_order():
            if name in module.members:
                subtree.add(self.tree.element(name))
        subtree.set_top(module.root)
        return subtree

    # -------------------------------------------------------- static modules
    def _solve_static(
        self, module: Module, time: float, solved: Dict[str, ModuleSolution]
    ) -> ModuleSolution:
        # Collect the variables of the structure function: basic events inside
        # the module and detached child modules (pseudo events).
        variables: List[str] = []
        probabilities: Dict[str, float] = {}

        def register(name: str, probability: float) -> None:
            if name not in probabilities:
                variables.append(name)
                probabilities[name] = probability

        for member in sorted(module.members):
            element = self.tree.element(member)
            if isinstance(element, BasicEvent):
                register(member, 1.0 - math.exp(-element.failure_rate * time))
        for child in module.detached:
            if child not in solved:
                raise AnalysisError(
                    f"module {module.root!r} references unsolved sub-module {child!r}"
                )
            register(child, solved[child].probability)

        manager = BDDManager(variables)
        cache: Dict[str, BDDNode] = {}

        def build(name: str) -> BDDNode:
            if name in cache:
                return cache[name]
            if name in probabilities and (
                name not in module.members
                or isinstance(self.tree.element(name), BasicEvent)
            ):
                node = manager.var(name)
            else:
                element = self.tree.element(name)
                if isinstance(element, (FdepGate, InhibitionConstraint)):
                    raise AnalysisError(
                        f"static module {module.root!r} unexpectedly contains "
                        f"constraint {name!r}"
                    )
                if isinstance(element, AndGate):
                    node = manager.conjoin(build(child) for child in element.inputs)
                elif isinstance(element, OrGate):
                    node = manager.disjoin(build(child) for child in element.inputs)
                elif isinstance(element, VotingGate):
                    node = manager.at_least(
                        element.threshold, [build(child) for child in element.inputs]
                    )
                else:
                    raise AnalysisError(
                        f"static module {module.root!r} contains dynamic element {name!r}"
                    )
            cache[name] = node
            return node

        top_node = build(module.root)
        probability = manager.probability(top_node, probabilities)
        return ModuleSolution(
            root=module.root,
            dynamic=False,
            probability=probability,
            states=manager.node_count(top_node),
            transitions=0,
        )


def diftree_unreliability(tree: DynamicFaultTree, time: float) -> float:
    """Convenience wrapper for the DIFTree baseline."""
    return DiftreeAnalyzer(tree).unreliability(time)
