"""A small reduced ordered binary decision diagram (ROBDD) engine.

DIFTree (the baseline methodology of the paper, Section 2) solves *static*
modules of a fault tree with binary decision diagrams: the module's structure
function is built bottom-up with the ITE (if-then-else) operator and the
failure probability is evaluated by a Shannon expansion over the diagram.

The implementation is deliberately compact but complete: hash-consed nodes,
memoised ITE, restriction, satisfying-probability evaluation and minimal cut
sets (useful for diagnostics and for testing the static analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError


@dataclass(frozen=True)
class BDDNode:
    """A node of the shared BDD forest.

    ``variable`` is the index of the decision variable (smaller = closer to the
    root); terminal nodes use ``variable = None`` and ``value`` 0/1.
    """

    variable: Optional[int]
    low: Optional["BDDNode"]
    high: Optional["BDDNode"]
    value: Optional[int] = None

    @property
    def is_terminal(self) -> bool:
        return self.variable is None


class BDDManager:
    """Hash-consing manager for ROBDDs over a fixed variable ordering."""

    def __init__(self, variables: Sequence[str]):
        if len(set(variables)) != len(variables):
            raise AnalysisError("BDD variable names must be unique")
        self._order: Tuple[str, ...] = tuple(variables)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._order)}
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BDDNode] = {}
        self.zero = BDDNode(variable=None, low=None, high=None, value=0)
        self.one = BDDNode(variable=None, low=None, high=None, value=1)

    # ------------------------------------------------------------------ nodes
    @property
    def variables(self) -> Tuple[str, ...]:
        return self._order

    def variable_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise AnalysisError(f"unknown BDD variable {name!r}") from None

    def var(self, name: str) -> BDDNode:
        """The BDD of the single variable ``name``."""
        return self._make(self.variable_index(name), self.zero, self.one)

    def _make(self, variable: int, low: BDDNode, high: BDDNode) -> BDDNode:
        if low is high:
            return low
        key = (variable, id(low), id(high))
        node = self._unique.get(key)
        if node is None:
            node = BDDNode(variable=variable, low=low, high=high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------- ITE
    def ite(self, condition: BDDNode, then: BDDNode, otherwise: BDDNode) -> BDDNode:
        """If-then-else: the core BDD operation."""
        if condition is self.one:
            return then
        if condition is self.zero:
            return otherwise
        if then is otherwise:
            return then
        if then is self.one and otherwise is self.zero:
            return condition
        key = (id(condition), id(then), id(otherwise))
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            node.variable
            for node in (condition, then, otherwise)
            if not node.is_terminal
        )
        low = self.ite(
            self._cofactor(condition, top, False),
            self._cofactor(then, top, False),
            self._cofactor(otherwise, top, False),
        )
        high = self.ite(
            self._cofactor(condition, top, True),
            self._cofactor(then, top, True),
            self._cofactor(otherwise, top, True),
        )
        result = self._make(top, low, high)
        self._ite_cache[key] = result
        return result

    @staticmethod
    def _cofactor(node: BDDNode, variable: int, value: bool) -> BDDNode:
        if node.is_terminal or node.variable != variable:
            return node
        return node.high if value else node.low

    # ------------------------------------------------------------ connectives
    def apply_not(self, node: BDDNode) -> BDDNode:
        return self.ite(node, self.zero, self.one)

    def apply_and(self, left: BDDNode, right: BDDNode) -> BDDNode:
        return self.ite(left, right, self.zero)

    def apply_or(self, left: BDDNode, right: BDDNode) -> BDDNode:
        return self.ite(left, self.one, right)

    def conjoin(self, nodes: Iterable[BDDNode]) -> BDDNode:
        result = self.one
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Iterable[BDDNode]) -> BDDNode:
        result = self.zero
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def at_least(self, threshold: int, nodes: Sequence[BDDNode]) -> BDDNode:
        """BDD of "at least ``threshold`` of ``nodes`` are true" (K/M gate)."""
        if threshold <= 0:
            return self.one
        if threshold > len(nodes):
            return self.zero
        if not nodes:
            return self.zero
        head, tail = nodes[0], nodes[1:]
        with_head = self.at_least(threshold - 1, tail)
        without_head = self.at_least(threshold, tail)
        return self.ite(head, with_head, without_head)

    # -------------------------------------------------------------- analysis
    def probability(self, node: BDDNode, var_probabilities: Mapping[str, float]) -> float:
        """Probability of the function being true under independent variables."""
        cache: Dict[int, float] = {}

        def walk(current: BDDNode) -> float:
            if current.is_terminal:
                return float(current.value)
            key = id(current)
            if key in cache:
                return cache[key]
            name = self._order[current.variable]
            if name not in var_probabilities:
                raise AnalysisError(f"no probability given for BDD variable {name!r}")
            p = var_probabilities[name]
            if not 0.0 <= p <= 1.0:
                raise AnalysisError(f"probability of {name!r} must lie in [0, 1], got {p}")
            value = p * walk(current.high) + (1.0 - p) * walk(current.low)
            cache[key] = value
            return value

        return walk(node)

    def node_count(self, node: BDDNode) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        seen: set = set()

        def walk(current: BDDNode) -> None:
            if current.is_terminal or id(current) in seen:
                return
            seen.add(id(current))
            walk(current.low)
            walk(current.high)

        walk(node)
        return len(seen)

    def minimal_cut_sets(self, node: BDDNode) -> List[FrozenSet[str]]:
        """Minimal sets of true variables that make the function true.

        Computed from the prime paths of the BDD; intended for small static
        modules (diagnostics and testing), not industrial-size trees.
        """
        paths: List[FrozenSet[str]] = []

        def walk(current: BDDNode, chosen: FrozenSet[str]) -> None:
            if current is self.one:
                paths.append(chosen)
                return
            if current is self.zero:
                return
            name = self._order[current.variable]
            walk(current.high, chosen | {name})
            walk(current.low, chosen)

        walk(node, frozenset())
        minimal = []
        for candidate in sorted(paths, key=len):
            if not any(existing <= candidate for existing in minimal):
                minimal.append(candidate)
        return minimal
