"""Monolithic Markov-chain generation for DFTs (the DIFTree approach).

Section 4 of the paper describes how DIFTree converts a dynamic fault tree to
a Markov chain: starting from the state in which every basic event is
operational, each operational basic event is failed one at a time (at its
current failure rate); the DFT is re-evaluated after every failure to decide
whether the resulting state is an operational or a failed system state, and
operational states are expanded further.  Every state records the status of
*all* basic events (plus bookkeeping such as spare allocation), which is why
"the state-space grows exponentially with the number of basic events" — the
comparison point for the compositional approach (Section 5.2).

The generator below reproduces that algorithm faithfully for the element types
supported by the library.  It also serves as an *independent* implementation
of the DFT semantics used by the test-suite to cross-validate the
compositional pipeline.

Deterministic resolution of simultaneity
----------------------------------------

When an FDEP trigger fails several elements at the same instant, the DFT
semantics is inherently non-deterministic (Section 4.4).  Like the classical
tools (and like the formalisation in Coppit et al. that the paper cites), this
baseline resolves such races deterministically: simultaneous failures are
interpreted as happening in left-to-right order (so a PAND whose inputs fail
together counts as "in order", and the left-most competing spare gate grabs a
shared spare first).  The compositional pipeline instead reports CTMDP bounds;
the deterministic value always lies inside those bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..ctmc import CTMC
from ..dft.elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError


@dataclass(frozen=True)
class MonolithicState:
    """One tangible state of the monolithic Markov chain.

    ``failed`` contains every element (basic event or gate) currently counted
    as failed; ``active`` the elements switched to active mode; ``using`` maps
    each spare gate to the unit it currently operates on (``None`` once
    exhausted); ``taken`` the spares claimed by some gate; ``pand_progress``
    the length of the correctly-ordered failed prefix per PAND gate (``-1``
    once the gate is disabled); ``inhibited`` the elements that can no longer
    fail because an inhibitor beat them to it.
    """

    failed: FrozenSet[str]
    active: FrozenSet[str]
    using: Tuple[Tuple[str, Optional[str]], ...]
    taken: FrozenSet[str]
    pand_progress: Tuple[Tuple[str, int], ...]
    inhibited: FrozenSet[str]

    def uses(self) -> Dict[str, Optional[str]]:
        return dict(self.using)

    def progress(self) -> Dict[str, int]:
        return dict(self.pand_progress)


@dataclass
class MonolithicResult:
    """The generated chain together with its size statistics."""

    ctmc: CTMC
    num_states: int
    num_transitions: int
    num_failed_states: int

    def summary(self) -> str:
        return (
            f"monolithic chain: {self.num_states} states, "
            f"{self.num_transitions} transitions "
            f"({self.num_failed_states} system-failure states)"
        )


class MonolithicMarkovGenerator:
    """Generates the whole-tree Markov chain exactly like DIFTree."""

    def __init__(self, tree: DynamicFaultTree, top: Optional[str] = None):
        self.tree = tree
        self.top = top if top is not None else tree.top
        if tree.is_repairable:
            raise AnalysisError(
                "the monolithic DIFTree baseline does not support repairable trees"
            )
        self._members = self._relevant_elements()
        self._order = [name for name in tree.topological_order() if name in self._members]
        self._basic_events = [
            name for name in self._order if isinstance(tree.element(name), BasicEvent)
        ]
        self._seq_successor_of: Dict[str, str] = {}
        for gate in tree.seq_gates():
            if gate.name not in self._members:
                continue
            for previous, current in zip(gate.inputs, gate.inputs[1:]):
                self._seq_successor_of[current] = previous

    # ----------------------------------------------------------- state space
    def initial_state(self) -> MonolithicState:
        active = frozenset(self._initially_active())
        using = tuple(
            sorted(
                (gate.name, gate.primary)
                for gate in self.tree.spare_gates()
                if gate.name in self._members
            )
        )
        progress = tuple(
            sorted(
                (gate.name, 0)
                for gate in self.tree.gates()
                if isinstance(gate, PandGate) and gate.name in self._members
            )
        )
        state = MonolithicState(
            failed=frozenset(),
            active=active,
            using=using,
            taken=frozenset(),
            pand_progress=progress,
            inhibited=frozenset(),
        )
        return self._propagate(state)

    def enabled_failures(self, state: MonolithicState) -> List[Tuple[str, float]]:
        """Basic events that may fail in ``state`` and their current rates."""
        failures = []
        for name in self._basic_events:
            if name in state.failed or name in state.inhibited:
                continue
            event: BasicEvent = self.tree.element(name)  # type: ignore[assignment]
            predecessor = self._seq_successor_of.get(name)
            if predecessor is not None and predecessor not in state.failed:
                continue  # a SEQ gate keeps this event cold until its turn
            rate = event.failure_rate if name in state.active else event.dormant_rate
            if rate > 0.0:
                failures.append((name, rate))
        return failures

    def fail(self, state: MonolithicState, basic_event: str) -> MonolithicState:
        """Successor state after ``basic_event`` fails (with full propagation)."""
        if basic_event in state.failed:
            raise AnalysisError(f"basic event {basic_event!r} already failed")
        updated = MonolithicState(
            failed=state.failed | {basic_event},
            active=state.active,
            using=state.using,
            taken=state.taken,
            pand_progress=state.pand_progress,
            inhibited=state.inhibited,
        )
        return self._propagate(updated)

    def is_system_failed(self, state: MonolithicState) -> bool:
        return self.top in state.failed

    # -------------------------------------------------------------- building
    def build(self, expand_failed_states: bool = False) -> MonolithicResult:
        """Explore the full chain.

        ``expand_failed_states=False`` reproduces DIFTree's behaviour of
        treating system-failure states as absorbing.
        """
        initial = self.initial_state()
        index: Dict[MonolithicState, int] = {initial: 0}
        worklist: List[MonolithicState] = [initial]
        transitions: List[Tuple[int, int, float]] = []

        while worklist:
            state = worklist.pop()
            source = index[state]
            if self.is_system_failed(state) and not expand_failed_states:
                continue
            for basic_event, rate in self.enabled_failures(state):
                successor = self.fail(state, basic_event)
                if successor not in index:
                    index[successor] = len(index)
                    worklist.append(successor)
                transitions.append((source, index[successor], rate))

        ctmc = CTMC(len(index), initial=0)
        failed_states = 0
        for state, state_index in index.items():
            if self.is_system_failed(state):
                ctmc.set_labels(state_index, ("failed",))
                failed_states += 1
        for source, target, rate in transitions:
            if source != target:
                ctmc.add_rate(source, target, rate)
        return MonolithicResult(
            ctmc=ctmc,
            num_states=len(index),
            num_transitions=len(transitions),
            num_failed_states=failed_states,
        )

    def unreliability(self, time: float, expand_failed_states: bool = False) -> float:
        """Probability that the top event has occurred by ``time``."""
        result = self.build(expand_failed_states=expand_failed_states)
        from ..ctmc.transient import probability_reach_label

        return probability_reach_label(result.ctmc, "failed", time)

    # ---------------------------------------------------------------- helpers
    def _relevant_elements(self) -> FrozenSet[str]:
        relevant: Set[str] = set(self.tree.descendants(self.top))
        changed = True
        while changed:
            changed = False
            for constraint in list(self.tree.fdep_gates()) + list(self.tree.inhibitions()):
                if constraint.name in relevant:
                    continue
                if any(child in relevant for child in constraint.inputs):
                    relevant.add(constraint.name)
                    for child in constraint.inputs:
                        members = self.tree.descendants(child)
                        if not members <= relevant:
                            relevant |= members
                            changed = True
                    changed = True
        return frozenset(relevant)

    def _initially_active(self) -> Set[str]:
        """Elements active at time zero (everything outside spare modules)."""
        active: Set[str] = set()

        def activate(name: str) -> None:
            if name in active or name not in self._members:
                return
            active.add(name)
            element = self.tree.element(name)
            if isinstance(element, (AndGate, OrGate, VotingGate, PandGate)):
                for child in element.inputs:
                    activate(child)
            elif isinstance(element, SeqGate):
                if element.inputs:
                    activate(element.inputs[0])
            elif isinstance(element, SpareGate):
                activate(element.primary)
            # Basic events have no children; FDEP/inhibition have no model.

        activate(self.top)
        # Elements only referenced as FDEP triggers (or not referenced at all)
        # are in active service as well.
        for name in self._members:
            element = self.tree.element(name)
            if isinstance(element, (FdepGate, InhibitionConstraint)):
                continue
            parents = [
                parent
                for parent in self.tree.parents(name)
                if parent in self._members
                and not isinstance(
                    self.tree.element(parent), (FdepGate, InhibitionConstraint)
                )
            ]
            if not parents and name != self.top:
                activate(name)
        return active

    def _activate_subtree(self, name: str, active: Set[str], uses: Dict[str, Optional[str]]) -> None:
        """Activate ``name`` and the part of its subtree that is in service."""
        if name in active or name not in self._members:
            return
        active.add(name)
        element = self.tree.element(name)
        if isinstance(element, (AndGate, OrGate, VotingGate, PandGate)):
            for child in element.inputs:
                self._activate_subtree(child, active, uses)
        elif isinstance(element, SeqGate):
            if element.inputs:
                self._activate_subtree(element.inputs[0], active, uses)
        elif isinstance(element, SpareGate):
            self._activate_subtree(element.primary, active, uses)
            current = uses.get(name)
            if current is not None and current != element.primary:
                self._activate_subtree(current, active, uses)

    def _propagate(self, state: MonolithicState) -> MonolithicState:
        """Propagate gate failures, FDEP triggers, spare claims and activation."""
        failed = set(state.failed)
        active = set(state.active)
        uses = state.uses()
        taken = set(state.taken)
        progress = state.progress()
        inhibited = set(state.inhibited)

        while True:
            snapshot = (
                frozenset(failed),
                frozenset(active),
                tuple(sorted(uses.items(), key=lambda item: item[0])),
                frozenset(taken),
                tuple(sorted(progress.items())),
                frozenset(inhibited),
            )

            # Inhibitions: an already-failed inhibitor freezes its target.
            for constraint in self.tree.inhibitions():
                if constraint.name not in self._members:
                    continue
                if (
                    constraint.inhibitor in failed
                    and constraint.target not in failed
                    and constraint.target not in inhibited
                ):
                    inhibited.add(constraint.target)

            # Functional dependencies: a failed trigger fails its dependents.
            for constraint in self.tree.fdep_gates():
                if constraint.name not in self._members:
                    continue
                if constraint.trigger in failed:
                    for dependent in constraint.dependents:
                        if dependent not in failed and dependent not in inhibited:
                            failed.add(dependent)

            # Gate evaluation, children before parents.
            for name in self._order:
                element = self.tree.element(name)
                if isinstance(element, (BasicEvent, FdepGate, InhibitionConstraint)):
                    continue
                if name in failed or name in inhibited:
                    continue
                if isinstance(element, (AndGate, SeqGate)):
                    is_failed = all(child in failed for child in element.inputs)
                elif isinstance(element, OrGate):
                    is_failed = any(child in failed for child in element.inputs)
                elif isinstance(element, VotingGate):
                    is_failed = (
                        sum(1 for child in element.inputs if child in failed)
                        >= element.threshold
                    )
                elif isinstance(element, PandGate):
                    is_failed = self._update_pand(element, failed, progress)
                elif isinstance(element, SpareGate):
                    is_failed = self._update_spare(element, failed, active, uses, taken)
                else:  # pragma: no cover - defensive
                    raise AnalysisError(f"unsupported element {name!r} in the baseline")
                if is_failed:
                    failed.add(name)

            new_snapshot = (
                frozenset(failed),
                frozenset(active),
                tuple(sorted(uses.items(), key=lambda item: item[0])),
                frozenset(taken),
                tuple(sorted(progress.items())),
                frozenset(inhibited),
            )
            if new_snapshot == snapshot:
                break

        return MonolithicState(
            failed=frozenset(failed),
            active=frozenset(active),
            using=tuple(sorted(uses.items(), key=lambda item: item[0])),
            taken=frozenset(taken),
            pand_progress=tuple(sorted(progress.items())),
            inhibited=frozenset(inhibited),
        )

    def _update_pand(
        self, gate: PandGate, failed: Set[str], progress: Dict[str, int]
    ) -> bool:
        """Advance a PAND gate's ordered prefix; return True once it fails."""
        current = progress.get(gate.name, 0)
        if current == -1:
            return False
        # Simultaneous failures resolve left-to-right: first extend the prefix
        # as far as possible, then look for out-of-order failures.
        while current < len(gate.inputs) and gate.inputs[current] in failed:
            current += 1
        if current == len(gate.inputs):
            progress[gate.name] = current
            return True
        if any(gate.inputs[i] in failed for i in range(current + 1, len(gate.inputs))):
            # Some input beyond the prefix failed although its predecessor has
            # not: wrong order, the gate is disabled forever.
            progress[gate.name] = -1
            return False
        progress[gate.name] = current
        return False

    def _update_spare(
        self,
        gate: SpareGate,
        failed: Set[str],
        active: Set[str],
        uses: Dict[str, Optional[str]],
        taken: Set[str],
    ) -> bool:
        """Re-allocate a spare gate's unit; return True once it is exhausted."""
        current = uses.get(gate.name, gate.primary)
        if current is not None and current not in failed:
            return False
        # The current unit has failed: look for a replacement in declared order.
        if gate.name in active:
            for spare in gate.spares:
                if spare in failed or spare in taken:
                    continue
                uses[gate.name] = spare
                taken.add(spare)
                self._activate_subtree(spare, active, uses)
                return False
        else:
            # A dormant gate does not claim spares; it only fails when nothing
            # could ever become available to it.
            if any(
                spare not in failed and spare not in taken for spare in gate.spares
            ):
                uses[gate.name] = None
                return False
        uses[gate.name] = None
        return True


def monolithic_unreliability(tree: DynamicFaultTree, time: float) -> float:
    """Convenience wrapper: whole-tree Markov chain unreliability."""
    return MonolithicMarkovGenerator(tree).unreliability(time)
