"""Repairable systems of Section 7.2, Figures 13-15.

The paper extends the framework with repair by modifying only the elementary
I/O-IMC: a repairable basic event leaves its fired state with rate ``mu`` and
announces a repair signal; gates listen to both failure and repair signals.
The canonical example (Figure 15) is an AND gate over two repairable basic
events, whose composition/aggregation yields the small birth-death CTMC of
Figure 15b; the measure of interest becomes system *unavailability*.
"""

from __future__ import annotations

from typing import Sequence

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree


def repairable_and_system(
    failure_rate: float = 1.0, repair_rate: float = 2.0
) -> DynamicFaultTree:
    """Figure 15a: an AND gate over two repairable basic events.

    The steady-state unavailability has the closed form
    ``(lambda / (lambda + mu)) ** 2``, which the tests use as ground truth.
    """
    builder = FaultTreeBuilder("repairable-and")
    builder.basic_event("A", failure_rate, repair_rate=repair_rate)
    builder.basic_event("B", failure_rate, repair_rate=repair_rate)
    builder.and_gate("system", ["A", "B"])
    return builder.build(top="system")


def repairable_voting_system(
    num_components: int = 3,
    threshold: int = 2,
    failure_rate: float = 1.0,
    repair_rate: float = 5.0,
) -> DynamicFaultTree:
    """A K-out-of-N repairable system (majority-voting style redundancy)."""
    builder = FaultTreeBuilder("repairable-voting")
    names = [f"C{i}" for i in range(1, num_components + 1)]
    builder.basic_events(names, failure_rate=failure_rate, repair_rate=repair_rate)
    builder.voting_gate("system", names, threshold=threshold)
    return builder.build(top="system")


def repairable_plant(
    line_failure_rates: Sequence[float] = (0.1, 0.1),
    pump_failure_rate: float = 0.5,
    repair_rate: float = 2.0,
) -> DynamicFaultTree:
    """A small repairable production plant: two lines, each needing its pump,
    and a shared power feed; the plant is down when both lines are down or the
    power feed is down."""
    builder = FaultTreeBuilder("repairable-plant")
    builder.basic_event("Power", 0.05, repair_rate=repair_rate)
    for index, rate in enumerate(line_failure_rates, start=1):
        builder.basic_event(f"Line{index}", rate, repair_rate=repair_rate)
        builder.basic_event(f"Pump{index}", pump_failure_rate, repair_rate=repair_rate)
        builder.or_gate(f"LineDown{index}", [f"Line{index}", f"Pump{index}"])
    builder.and_gate(
        "BothLinesDown", [f"LineDown{i}" for i in range(1, len(line_failure_rates) + 1)]
    )
    builder.or_gate("system", ["Power", "BothLinesDown"])
    return builder.build(top="system")
