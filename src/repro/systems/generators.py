"""Parametric DFT families for scalability experiments.

The paper's scalability argument (Section 5.2) is made on a single instance of
the cascaded PAND system.  The generators below extend that instance into
families so the benchmark suite can sweep problem sizes and chart how the
compositional peak state space grows compared to the monolithic chain:

* :func:`cascaded_pand_family` — ``k`` AND modules of ``m`` identical basic
  events feeding a left-deep cascade of PAND gates (the paper's CPS is
  ``k=3, m=4``);
* :func:`and_of_or_family` — a purely static benchmark (AND of ORs) used to
  sanity-check the static-analysis path and the BDD baseline;
* :func:`spare_chain_family` — ``k`` subsystems sharing a pool of spares, a
  stress test for the spare-gate semantics and the claim-signal wiring;
* :func:`fdep_cascade_family` — a chain of functional dependencies, stressing
  the firing-auxiliary wiring;
* :func:`random_dft` / :func:`random_corpus` — reproducible pseudo-random
  trees for the batch/corpus throughput benchmarks.
"""

from __future__ import annotations

import random
from typing import List

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree


def cascaded_pand_family(
    num_modules: int = 3, events_per_module: int = 4, failure_rate: float = 1.0
) -> DynamicFaultTree:
    """A generalised cascaded PAND system.

    ``num_modules`` AND modules ``M1 .. Mk`` are combined by a left-deep chain
    of PAND gates: ``PAND(M1, PAND(M2, ... PAND(M_{k-1}, M_k)))``.  With
    ``num_modules=3`` and ``events_per_module=4`` this is exactly the CPS of
    Figure 8 (up to element names).
    """
    if num_modules < 2:
        raise ValueError("the cascade needs at least two modules")
    if events_per_module < 1:
        raise ValueError("each module needs at least one basic event")
    builder = FaultTreeBuilder(f"cascaded-pand-{num_modules}x{events_per_module}")
    module_names = []
    for module_index in range(1, num_modules + 1):
        name = f"M{module_index}"
        events = [f"{name}_{i}" for i in range(1, events_per_module + 1)]
        builder.basic_events(events, failure_rate=failure_rate)
        builder.and_gate(name, events)
        module_names.append(name)
    # Build the right-nested cascade bottom-up.
    current = module_names[-1]
    for index in range(num_modules - 2, 0, -1):
        gate_name = f"P{index + 1}"
        builder.pand_gate(gate_name, [module_names[index], current])
        current = gate_name
    builder.pand_gate("system", [module_names[0], current])
    return builder.build(top="system")


def and_of_or_family(
    num_branches: int = 3, events_per_branch: int = 3, failure_rate: float = 1.0
) -> DynamicFaultTree:
    """A static AND-of-ORs tree (no dynamic gates at all)."""
    if num_branches < 1 or events_per_branch < 1:
        raise ValueError("the family needs at least one branch and one event per branch")
    builder = FaultTreeBuilder(f"and-of-or-{num_branches}x{events_per_branch}")
    branch_names = []
    for branch in range(1, num_branches + 1):
        events = [f"B{branch}_{i}" for i in range(1, events_per_branch + 1)]
        builder.basic_events(events, failure_rate=failure_rate)
        builder.or_gate(f"Branch{branch}", events)
        branch_names.append(f"Branch{branch}")
    builder.and_gate("system", branch_names)
    return builder.build(top="system")


def spare_chain_family(
    num_subsystems: int = 3,
    num_shared_spares: int = 1,
    failure_rate: float = 1.0,
    spare_dormancy: float = 0.0,
) -> DynamicFaultTree:
    """``num_subsystems`` spare gates competing for a pool of shared spares.

    The system fails once every subsystem has failed (AND of the spare gates).
    """
    if num_subsystems < 1:
        raise ValueError("the spare chain needs at least one subsystem")
    if num_shared_spares < 1:
        raise ValueError("the spare chain needs at least one shared spare")
    builder = FaultTreeBuilder(
        f"spare-chain-{num_subsystems}primaries-{num_shared_spares}spares"
    )
    spares = [f"S{i}" for i in range(1, num_shared_spares + 1)]
    for spare in spares:
        builder.basic_event(spare, failure_rate, dormancy=spare_dormancy)
    gate_names = []
    for index in range(1, num_subsystems + 1):
        builder.basic_event(f"P{index}", failure_rate)
        builder.spare_gate(f"G{index}", primary=f"P{index}", spares=spares)
        gate_names.append(f"G{index}")
    builder.and_gate("system", gate_names)
    return builder.build(top="system")


def fdep_cascade_family(
    depth: int = 3, failure_rate: float = 1.0, trigger_rate: float = 0.5
) -> DynamicFaultTree:
    """A chain of functional dependencies: trigger ``T1`` fails ``C1`` which
    triggers ``C2`` and so on; the system is an AND over all components."""
    if depth < 1:
        raise ValueError("the cascade needs at least one stage")
    builder = FaultTreeBuilder(f"fdep-cascade-{depth}")
    builder.basic_event("T1", trigger_rate)
    components = []
    for stage in range(1, depth + 1):
        component = f"C{stage}"
        builder.basic_event(component, failure_rate)
        components.append(component)
        trigger = "T1" if stage == 1 else f"C{stage - 1}"
        builder.fdep(f"F{stage}", trigger=trigger, dependents=[component])
    builder.and_gate("system", components)
    return builder.build(top="system")


def random_dft(
    num_basic_events: int = 7,
    seed: int = 0,
    failure_rate: float = 1.0,
    dynamic: bool = True,
    fdep: bool = False,
    shared_spares: bool = False,
) -> DynamicFaultTree:
    """A reproducible pseudo-random DFT for corpus benchmarks.

    Basic events with jittered failure rates are folded bottom-up into random
    gates of arity 2-3 (OR / AND / voting, plus PAND and cold-spare patterns
    when ``dynamic``) until a single root remains.  The same full argument
    tuple always yields the same tree.

    By default spares are never shared and no functional dependencies exist,
    so the generated trees stay deterministic (their final model is a CTMC).
    Two optional patterns stress the CTMDP/bound analysis paths:

    * ``shared_spares``: occasionally fold three leaves into *two* spare
      gates competing for one shared (cold/warm) spare — the paper's
      Section 6.1 pattern; the claim race keeps the model deterministic but
      exercises the claim-signal wiring;
    * ``fdep``: after the fold, add functional dependencies whose trigger is
      a random leaf and whose dependents are one or two other leaves.  An
      FDEP trigger failing several elements "simultaneously" is the paper's
      source of *inherent non-determinism* (Section 4.4), so corpora built
      with this flag may contain trees whose final model is a CTMDP — use
      bound measures on them.
    """
    if num_basic_events < 2:
        raise ValueError("a random tree needs at least two basic events")
    if (fdep or shared_spares) and not dynamic:
        raise ValueError(
            "the FDEP and shared-spare patterns are dynamic constructs; "
            "they require dynamic=True"
        )
    # The pattern flags only enter the RNG key when enabled, so default
    # corpora are bit-identical with pre-pattern releases (benchmarks and
    # golden tests rely on that reproducibility).
    key = f"random-dft:{num_basic_events}:{seed}:{failure_rate}:{dynamic}"
    if fdep or shared_spares:
        key += f":{fdep}:{shared_spares}"
    rng = random.Random(key)
    builder = FaultTreeBuilder(f"random-{num_basic_events}x{seed}")
    events = [f"E{index}" for index in range(1, num_basic_events + 1)]
    for event in events:
        builder.basic_event(event, failure_rate=failure_rate * rng.uniform(0.5, 2.0))
    leaves = set(events)
    spare_leaves: set = set()
    nodes = list(events)
    rng.shuffle(nodes)
    gate_counter = 0
    while len(nodes) > 1:
        arity = min(len(nodes), rng.choice((2, 2, 3)))
        children = [nodes.pop() for _ in range(arity)]
        gate_counter += 1
        gate = f"G{gate_counter}"
        kinds = ["or", "and", "vote"]
        all_leaves = all(child in leaves for child in children)
        if dynamic:
            kinds.append("pand")
            if all_leaves:
                kinds.append("spare")
        if shared_spares and all_leaves and len(children) == 3:
            kinds.append("shared_spare")
        kind = rng.choice(kinds)
        if kind == "or":
            builder.or_gate(gate, children)
        elif kind == "and":
            builder.and_gate(gate, children)
        elif kind == "vote":
            builder.voting_gate(gate, children, threshold=max(1, arity - 1))
        elif kind == "pand":
            builder.pand_gate(gate, children)
        elif kind == "shared_spare":
            # Two subsystems competing for one shared spare, combined by AND
            # (the pump example of Section 6.1 in miniature).  The shared
            # spare is replaced by a fresh cold/warm event so its dormancy is
            # meaningful.
            primary_a, primary_b, shared = children
            dormancy = rng.choice((0.0, 0.5))
            spare_name = f"S{gate_counter}"
            builder.basic_event(
                spare_name,
                failure_rate=failure_rate * rng.uniform(0.5, 2.0),
                dormancy=dormancy,
            )
            leaves.add(spare_name)
            spare_leaves.update((primary_a, primary_b, shared, spare_name))
            builder.spare_gate(f"{gate}a", primary=primary_a, spares=[spare_name])
            builder.spare_gate(f"{gate}b", primary=primary_b, spares=[spare_name])
            builder.and_gate(gate, [f"{gate}a", f"{gate}b"])
            # the third child re-enters the fold as an ordinary node
            nodes.insert(rng.randrange(len(nodes) + 1), shared)
        else:
            builder.spare_gate(gate, primary=children[0], spares=children[1:])
            spare_leaves.update(children)
        nodes.insert(rng.randrange(len(nodes) + 1), gate)

    if fdep:
        # Dependents are leaves outside every spare module (a spare that is
        # also functionally dependent would entangle activation and firing
        # auxiliaries beyond what the conversion supports cleanly).
        candidates = sorted(leaves - spare_leaves)
        rng.shuffle(candidates)
        num_fdeps = rng.randint(1, max(1, len(candidates) // 3))
        fdep_counter = 0
        for _ in range(num_fdeps):
            if len(candidates) < 2:
                break
            trigger = candidates.pop()
            num_dependents = min(len(candidates), rng.choice((1, 1, 2)))
            dependents = [candidates.pop() for _ in range(num_dependents)]
            fdep_counter += 1
            builder.fdep(f"F{fdep_counter}", trigger=trigger, dependents=dependents)

    return builder.build(top=nodes[0])


def random_corpus(
    count: int = 8,
    num_basic_events: int = 6,
    seed: int = 0,
    failure_rate: float = 1.0,
    dynamic: bool = True,
    fdep: bool = False,
    shared_spares: bool = False,
) -> List[DynamicFaultTree]:
    """``count`` distinct :func:`random_dft` trees (seeds ``seed .. seed+count-1``)."""
    if count < 1:
        raise ValueError("a corpus needs at least one tree")
    return [
        random_dft(
            num_basic_events=num_basic_events,
            seed=seed + offset,
            failure_rate=failure_rate,
            dynamic=dynamic,
            fdep=fdep,
            shared_spares=shared_spares,
        )
        for offset in range(count)
    ]
