"""Inhibition and mutual exclusivity (Section 7.1, Figure 12).

The motivating example is a switch with two failure modes — *failing to open*
and *failing to close* — which are mutually exclusive: the switch can fail in
one mode or the other, never both.  Modelling the two modes as independent
basic events over-counts double failures; two symmetric inhibition auxiliaries
make them exclusive.
"""

from __future__ import annotations

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree


def inhibition_pair(
    inhibitor_rate: float = 1.0, target_rate: float = 1.0
) -> DynamicFaultTree:
    """Figure 12: ``A`` inhibits ``B``; the system fails when ``B`` fails.

    ``B`` only fails if it beats ``A``; the unreliability therefore equals the
    probability that ``B`` fails before ``A`` *and* before the mission time.
    """
    builder = FaultTreeBuilder("inhibition-pair")
    builder.basic_event("A", inhibitor_rate)
    builder.basic_event("B", target_rate)
    builder.inhibition("IA_B", inhibitor="A", target="B")
    builder.or_gate("system", ["B"])
    return builder.build(top="system")


def mutex_switch_bank(
    channels: int = 4,
    fail_open_rate: float = 0.3,
    fail_closed_rate: float = 0.7,
    pump_rate: float = 1.0,
) -> DynamicFaultTree:
    """``channels`` independent mutually-exclusive switches, ANDed together.

    A scaled variant of :func:`mutually_exclusive_switch` for benchmarking
    the CTMDP bound engine: each channel contributes its own exclusive
    failure-mode pair (and therefore its own vanishing choices after
    aggregation), so the closed model's state space grows with ``channels``
    while staying non-deterministic.  Rates are staggered per channel so no
    two channels are symmetric.
    """
    if channels < 1:
        raise ValueError(f"a switch bank needs at least one channel, got {channels}")
    builder = FaultTreeBuilder(f"mutex-switch-bank-{channels}")
    names = []
    for index in range(channels):
        stagger = 1.0 + 0.25 * index
        so, sc, pump = f"SO{index}", f"SC{index}", f"Pump{index}"
        builder.basic_event(so, fail_open_rate * stagger)
        builder.basic_event(sc, fail_closed_rate * stagger)
        builder.basic_event(pump, pump_rate * stagger)
        builder.mutual_exclusion(f"modes{index}", so, sc)
        builder.and_gate(f"open_and_pump{index}", [so, pump])
        builder.or_gate(f"channel{index}", [sc, f"open_and_pump{index}"])
        names.append(f"channel{index}")
    builder.and_gate("system", names)
    return builder.build(top="system")


def mutually_exclusive_switch(
    fail_open_rate: float = 0.3,
    fail_closed_rate: float = 0.7,
    pump_rate: float = 1.0,
) -> DynamicFaultTree:
    """A switch with mutually exclusive failure modes inside a small system.

    The switch can *fail open* (SO) or *fail closed* (SC) but never both.
    Failing closed dooms the system immediately; failing open only matters if
    the backup pump is also lost.
    """
    builder = FaultTreeBuilder("mutually-exclusive-switch")
    builder.basic_event("SO", fail_open_rate)
    builder.basic_event("SC", fail_closed_rate)
    builder.basic_event("Pump", pump_rate)
    builder.mutual_exclusion("switch_modes", "SO", "SC")
    builder.and_gate("OpenAndPump", ["SO", "Pump"])
    builder.or_gate("system", ["SC", "OpenAndPump"])
    return builder.build(top="system")
