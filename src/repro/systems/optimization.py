"""Seeded design-space optimisation scenarios on the paper's case studies.

These are the benchmark/test instances of :mod:`repro.core.optimize`: each
scenario extends a case-study tree with *candidate* redundancy (extra spare
events listed by the spare gates) and bundles it with the discrete choices, a
cost model and a maintenance budget into a
:class:`~repro.core.optimize.DesignProblem`.

The choices are deliberately placed where improvement is reliability-monotone
for the system — spare gates and repair crews feeding OR/AND contexts, or the
*first* input of a PAND — so the Russian-doll pruning bounds are sound
(:func:`~repro.core.optimize.monotonicity_warnings` stays empty on both
scenarios and the property suite pins pruned == exhaustive).  Repair choices
additionally respect the conversion layer's Section-7.2 limitation: a
repairable event may only feed static gates, so the CAS scenario houses them
in a static monitoring unit rather than under the spare/PAND units.
"""

from __future__ import annotations

from ..core.optimize import DesignProblem, RepairChoice, SpareCountChoice
from ..dft.builder import FaultTreeBuilder
from .cas import CAS_RATES


def cas_spares_scenario(
    budget: float = 3.0, mission_time: float = 1.0
) -> DesignProblem:
    """Spares-and-maintenance allocation on the cardiac assist system.

    The CAS of Figure 7 with candidate redundancy added to every unit, plus a
    fourth (static) monitoring unit whose failure also brings the system
    down:

    * a second warm spare CPU ``B2`` (not wired to the common-cause FDEP —
      a premium isolated spare),
    * a second cold spare motor ``MB2``,
    * up to two extra cold pumps ``PS2``/``PS3`` in the shared pool,
    * optional repair crews for the two monitor channels ``M1``/``M2``
      (an AND under the OR top — the static context the repairable
      extension supports), with two staffing levels for ``M2`` so the
      search also allocates the maintenance *rate* budget.

    Each extra spare and each repair-crew staffing step costs 1 unit; the
    default budget of 3 cannot afford everything (the maximal configuration
    costs 7), so the optimiser has to trade the units off against each other.
    """
    builder = FaultTreeBuilder("cas-spares-scenario")

    builder.basic_event("CS", CAS_RATES["CS"])
    builder.basic_event("SS", CAS_RATES["SS"])
    builder.basic_event("P", CAS_RATES["P"])
    builder.basic_event("B", CAS_RATES["B"], dormancy=0.5)
    builder.basic_event("B2", CAS_RATES["B"], dormancy=0.5)
    builder.basic_event("MS", CAS_RATES["MS"])
    builder.basic_event("MA", CAS_RATES["MA"])
    builder.basic_event("MB", CAS_RATES["MB"], dormancy=0.0)
    builder.basic_event("MB2", CAS_RATES["MB"], dormancy=0.0)
    builder.basic_event("PA", CAS_RATES["PA"])
    builder.basic_event("PB", CAS_RATES["PB"])
    builder.basic_event("PS", CAS_RATES["PS"], dormancy=0.0)
    builder.basic_event("PS2", CAS_RATES["PS"], dormancy=0.0)
    builder.basic_event("PS3", CAS_RATES["PS"], dormancy=0.0)
    builder.basic_event("M1", 0.8)
    builder.basic_event("M2", 0.8)

    builder.or_gate("Trigger", ["CS", "SS"])
    builder.spare_gate("CPU_unit", primary="P", spares=["B", "B2"])
    builder.fdep("CPU_fdep", trigger="Trigger", dependents=["P", "B"])

    builder.pand_gate("Switch", ["MS", "MA"])
    builder.spare_gate("Motors", primary="MA", spares=["MB", "MB2"])
    builder.or_gate("Motor_unit", ["Switch", "Motors"])

    builder.spare_gate("Pump_A", primary="PA", spares=["PS", "PS2", "PS3"])
    builder.spare_gate("Pump_B", primary="PB", spares=["PS", "PS2", "PS3"])
    builder.and_gate("Pump_unit", ["Pump_A", "Pump_B"])

    builder.and_gate("Monitor_unit", ["M1", "M2"])

    builder.or_gate(
        "system", ["CPU_unit", "Motor_unit", "Pump_unit", "Monitor_unit"]
    )
    tree = builder.build(top="system")

    return DesignProblem(
        tree=tree,
        choices=(
            SpareCountChoice("CPU_unit", counts=(1, 2), costs=(0.0, 1.0)),
            SpareCountChoice("Motors", counts=(1, 2), costs=(0.0, 1.0)),
            SpareCountChoice(
                ("Pump_A", "Pump_B"), counts=(1, 2, 3), costs=(0.0, 1.0, 2.0)
            ),
            RepairChoice("M1", rates=(None, 2.0), costs=(0.0, 1.0)),
            RepairChoice("M2", rates=(None, 2.0, 8.0), costs=(0.0, 1.0, 2.0)),
        ),
        mission_time=mission_time,
        budget=budget,
    )


def cps_spares_scenario(
    budget: float = 1.0, mission_time: float = 1.0
) -> DesignProblem:
    """Nested sparing inside module A of the cascaded PAND system.

    The CPS of Figure 8 with module ``A`` upgraded: its first and fourth
    events become spare gates with candidate cold spares.  All choices live
    inside ``A`` — the *first* input of the top PAND, the one placement
    where improvement is always monotone-safe — and both spare gates are
    independent modules nested inside module ``A``, so the Russian-doll
    table phase records three nested subproblems.  The default budget of 1
    affords exactly one of the two extra spares.
    """
    builder = FaultTreeBuilder("cps-spares-scenario")
    for module in ("A", "C", "D"):
        names = [f"{module}{i}" for i in range(1, 5)]
        builder.basic_events(names, failure_rate=1.0)
        if module == "A":
            for spare in ("A5", "A6", "A7", "A8"):
                builder.basic_event(spare, 1.0, dormancy=0.0)
            builder.spare_gate("Spare_A1", primary="A1", spares=["A5", "A6"])
            builder.spare_gate("Spare_A4", primary="A4", spares=["A7", "A8"])
            builder.and_gate("A", ["Spare_A1", "A2", "A3", "Spare_A4"])
        else:
            builder.and_gate(module, names)
    builder.pand_gate("B", ["C", "D"])
    builder.pand_gate("system", ["A", "B"])
    tree = builder.build(top="system")

    return DesignProblem(
        tree=tree,
        choices=(
            SpareCountChoice("Spare_A1", counts=(1, 2), costs=(0.0, 1.0)),
            SpareCountChoice("Spare_A4", counts=(1, 2), costs=(0.0, 1.0)),
        ),
        mission_time=mission_time,
        budget=budget,
    )
