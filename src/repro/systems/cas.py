"""The cardiac assist system (CAS) of Section 5.1, Figure 7.

The CAS consists of three independent units, any of which brings the system
down:

* **CPU unit** — a primary CPU ``P`` with a warm spare ``B`` (dormancy 0.5);
  both are functionally dependent on a cross switch ``CS`` and a system
  supervisor ``SS`` (modelled as an OR-trigger of an FDEP gate).
* **Motor unit** — a primary motor ``MA`` with a cold spare ``MB``; the
  switching component ``MS`` is only relevant if it fails *before* the primary
  motor, which is captured by a PAND gate.
* **Pump unit** — two primary pumps ``PA``/``PB`` running in parallel with a
  cold shared spare ``PS``; all three pumps must fail for the unit to fail.

With the failure rates of the paper the system unreliability at mission time
1 is 0.6579 (both with the compositional pipeline and with Galileo/DIFTree).
"""

from __future__ import annotations

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree

#: Failure rates used in the paper (per time unit).
CAS_RATES = {
    "CS": 0.2,
    "SS": 0.2,
    "P": 0.5,
    "B": 0.5,
    "MS": 0.01,
    "MA": 1.0,
    "MB": 1.0,
    "PA": 1.0,
    "PB": 1.0,
    "PS": 1.0,
}

#: Unreliability at mission time 1 reported in the paper.
PAPER_UNRELIABILITY_AT_1 = 0.6579


def cardiac_assist_system() -> DynamicFaultTree:
    """Build the CAS dynamic fault tree of Figure 7."""
    builder = FaultTreeBuilder("cardiac-assist-system")

    # Basic events ---------------------------------------------------------
    builder.basic_event("CS", CAS_RATES["CS"])
    builder.basic_event("SS", CAS_RATES["SS"])
    builder.basic_event("P", CAS_RATES["P"])
    builder.basic_event("B", CAS_RATES["B"], dormancy=0.5)   # warm spare CPU
    builder.basic_event("MS", CAS_RATES["MS"])
    builder.basic_event("MA", CAS_RATES["MA"])
    builder.basic_event("MB", CAS_RATES["MB"], dormancy=0.0)  # cold spare motor
    builder.basic_event("PA", CAS_RATES["PA"])
    builder.basic_event("PB", CAS_RATES["PB"])
    builder.basic_event("PS", CAS_RATES["PS"], dormancy=0.0)  # cold shared spare pump

    # CPU unit --------------------------------------------------------------
    builder.or_gate("Trigger", ["CS", "SS"])
    builder.spare_gate("CPU_unit", primary="P", spares=["B"])
    builder.fdep("CPU_fdep", trigger="Trigger", dependents=["P", "B"])

    # Motor unit ------------------------------------------------------------
    builder.pand_gate("Switch", ["MS", "MA"])
    builder.spare_gate("Motors", primary="MA", spares=["MB"])
    builder.or_gate("Motor_unit", ["Switch", "Motors"])

    # Pump unit ---------------------------------------------------------------
    builder.spare_gate("Pump_A", primary="PA", spares=["PS"])
    builder.spare_gate("Pump_B", primary="PB", spares=["PS"])
    builder.and_gate("Pump_unit", ["Pump_A", "Pump_B"])

    # System ------------------------------------------------------------------
    builder.or_gate("system", ["CPU_unit", "Motor_unit", "Pump_unit"])
    return builder.build(top="system")


#: Names of the three independent units (used by module-level experiments).
CAS_UNITS = ("CPU_unit", "Motor_unit", "Pump_unit")
