"""The inherently non-deterministic configurations of Section 4.4, Figure 6.

Both configurations use an FDEP gate whose trigger fails two elements
"simultaneously":

* :func:`pand_race_system` (Figure 6a) — the two dependent events are the
  inputs of a PAND gate.  Whether the gate counts the simultaneous failure as
  "in order" decides whether the system fails, so the unreliability is only
  bounded by an interval.
* :func:`shared_spare_race_system` (Figure 6b) — the dependent events are the
  primaries of two spare gates sharing a single spare.  The race decides which
  gate grabs the spare; with a symmetric top gate the measure is insensitive
  to it (the bounds coincide), which is itself an instructive outcome.
"""

from __future__ import annotations

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree


def pand_race_system(
    trigger_rate: float = 1.0, component_rate: float = 1.0
) -> DynamicFaultTree:
    """Figure 6a: an FDEP trigger failing both inputs of a PAND gate."""
    builder = FaultTreeBuilder("fdep-pand-race")
    builder.basic_event("T", trigger_rate)
    builder.basic_event("A", component_rate)
    builder.basic_event("B", component_rate)
    builder.pand_gate("system", ["A", "B"])
    builder.fdep("F", trigger="T", dependents=["A", "B"])
    return builder.build(top="system")


def pand_race_bank(
    channels: int = 3,
    trigger_rate: float = 1.0,
    component_rate: float = 1.0,
) -> DynamicFaultTree:
    """``channels`` independent FDEP/PAND races, ANDed together.

    A scaled variant of :func:`pand_race_system` for exercising the CTMDP
    bound engine: every channel keeps its own unresolved simultaneity race,
    so the aggregated model is a genuine CTMDP whose state count (and number
    of non-deterministic vanishing states) grows with ``channels``.  Rates
    are staggered per channel so no two channels are symmetric.
    """
    if channels < 1:
        raise ValueError(f"a race bank needs at least one channel, got {channels}")
    builder = FaultTreeBuilder(f"pand-race-bank-{channels}")
    names = []
    for index in range(channels):
        stagger = 1.0 + 0.25 * index
        builder.basic_event(f"T{index}", trigger_rate * stagger)
        builder.basic_event(f"A{index}", 0.8 * component_rate * stagger)
        builder.basic_event(f"B{index}", 1.2 * component_rate * stagger)
        builder.pand_gate(f"race{index}", [f"A{index}", f"B{index}"])
        builder.fdep(f"F{index}", trigger=f"T{index}", dependents=[f"A{index}", f"B{index}"])
        names.append(f"race{index}")
    builder.and_gate("system", names)
    return builder.build(top="system")


def shared_spare_race_system(
    trigger_rate: float = 1.0,
    component_rate: float = 1.0,
    spare_rate: float = 1.0,
) -> DynamicFaultTree:
    """Figure 6b: an FDEP trigger failing the primaries of two gates sharing a spare."""
    builder = FaultTreeBuilder("fdep-shared-spare-race")
    builder.basic_event("T", trigger_rate)
    builder.basic_event("A", component_rate)
    builder.basic_event("B", component_rate)
    builder.basic_event("S", spare_rate, dormancy=0.0)
    builder.spare_gate("WSP_A", primary="A", spares=["S"])
    builder.spare_gate("WSP_B", primary="B", spares=["S"])
    builder.fdep("F", trigger="T", dependents=["A", "B"])
    builder.or_gate("system", ["WSP_A", "WSP_B"])
    return builder.build(top="system")
