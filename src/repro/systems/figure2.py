"""The hand-drawn composition example of Figure 2.

Figure 2 of the paper shows two small I/O-IMC ``A`` and ``B``:

* ``A`` outputs action ``a`` and then performs an internal step;
* ``B`` waits for ``a`` (input), races it against a Markovian delay ``lambda``
  and finally outputs ``b``.

Their parallel composition (synchronising on ``a``), the hiding of ``a`` and
the aggregation of the result — four interleaving states collapse into one —
is the paper's illustration of compositional aggregation.  The builders below
reconstruct the two models so that the benchmark ``bench_fig2_composition``
can replay exactly that pipeline.
"""

from __future__ import annotations

from typing import Tuple

from ..ioimc import IOIMC, signature


def model_a(rate: float = 1.0) -> IOIMC:
    """I/O-IMC ``A`` of Figure 2: ``1 --a!--> 2 --a;--> 3`` style process.

    The paper draws ``A`` as a three-state process whose only visible step is
    the output ``a!`` followed by an internal move.
    """
    model = IOIMC("A", signature(outputs=["a"], internals=["internal_a"]))
    s1 = model.add_state(name="1", initial=True)
    s2 = model.add_state(name="2")
    s3 = model.add_state(name="3")
    model.add_interactive(s1, "a", s2)
    model.add_interactive(s2, "internal_a", s3)
    return model


def model_b(rate: float = 1.0) -> IOIMC:
    """I/O-IMC ``B`` of Figure 2.

    ``B`` can receive ``a`` in every state (input-enabledness); from its
    initial state it races the input against an exponential delay, and once
    both have happened it outputs ``b``.
    """
    model = IOIMC("B", signature(inputs=["a"], outputs=["b"]))
    s1 = model.add_state(name="1", initial=True)
    s2 = model.add_state(name="2")
    s3 = model.add_state(name="3")
    s4 = model.add_state(name="4")
    s5 = model.add_state(name="5")
    model.add_markovian(s1, rate, s2)
    model.add_interactive(s1, "a", s3)
    model.add_interactive(s2, "a", s4)
    model.add_markovian(s3, rate, s4)
    model.add_interactive(s4, "b", s5)
    return model


def figure2_models(rate: float = 1.0) -> Tuple[IOIMC, IOIMC]:
    """Both models of Figure 2."""
    return model_a(rate), model_b(rate)
