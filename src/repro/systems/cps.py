"""The cascaded PAND system (CPS) of Section 5.2, Figure 8.

The CPS is the paper's show-case for modular analysis: the top event is a
PAND gate whose inputs are an AND module ``A`` and a second PAND gate ``B``;
``B``'s inputs are two further AND modules ``C`` and ``D``.  Every AND module
consists of four identical basic events with failure rate 1.

Because the top gate is dynamic, the DIFTree methodology cannot detach the
(perfectly independent) AND modules and converts the whole tree — twelve basic
events — into a single Markov chain with thousands of states, whereas the
compositional approach aggregates each module into a handful of states first.
The paper reports 4113 states / 24608 transitions for the monolithic chain
against 156 states / 490 transitions for the largest intermediate I/O-IMC, and
a system unreliability of 0.00135 at mission time 1.
"""

from __future__ import annotations

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree

#: Unreliability at mission time 1 reported in the paper.
PAPER_UNRELIABILITY_AT_1 = 0.00135
#: Monolithic state space reported in the paper for DIFTree.
PAPER_DIFTREE_STATES = 4113
PAPER_DIFTREE_TRANSITIONS = 24608
#: Largest intermediate I/O-IMC reported in the paper.
PAPER_COMPOSITIONAL_PEAK_STATES = 156
PAPER_COMPOSITIONAL_PEAK_TRANSITIONS = 490

#: Names of the three AND modules.
CPS_MODULES = ("A", "C", "D")


def cascaded_pand_system(
    events_per_module: int = 4, failure_rate: float = 1.0
) -> DynamicFaultTree:
    """Build the CPS; ``events_per_module`` generalises the paper's 4.

    The layout follows Figure 8: ``system = PAND(A, B)`` with
    ``B = PAND(C, D)`` and ``A``, ``C``, ``D`` AND gates over
    ``events_per_module`` identical basic events.
    """
    if events_per_module < 1:
        raise ValueError("each module needs at least one basic event")
    builder = FaultTreeBuilder("cascaded-pand-system")
    for module in CPS_MODULES:
        names = [f"{module}{i}" for i in range(1, events_per_module + 1)]
        builder.basic_events(names, failure_rate=failure_rate)
        builder.and_gate(module, names)
    builder.pand_gate("B", ["C", "D"])
    builder.pand_gate("system", ["A", "B"])
    return builder.build(top="system")
