"""The modular model-building examples of Section 6, Figure 10.

Three configurations illustrate the restrictions the I/O-IMC framework lifts:

* :func:`and_spare_system` (Figure 10a) — a spare gate whose primary and spare
  are AND modules of two basic events each: the whole spare module is dormant
  until the primary module has failed.
* :func:`nested_spare_system` (Figure 10b) — the spare module is itself a
  spare gate; activation is passed only to its primary, its own spare stays
  dormant until needed.
* :func:`fdep_gate_trigger_system` (Figure 10c) — an FDEP gate whose dependent
  event is a *gate*: the trigger fails the sub-system as a whole without
  touching the components below it.
"""

from __future__ import annotations

from ..dft.builder import FaultTreeBuilder
from ..dft.tree import DynamicFaultTree


def and_spare_system(
    primary_rate: float = 1.0,
    spare_rate: float = 1.0,
    spare_dormancy: float = 0.0,
) -> DynamicFaultTree:
    """Figure 10a: primary and spare are AND gates over two basic events."""
    builder = FaultTreeBuilder("complex-spare-and")
    builder.basic_event("A", primary_rate)
    builder.basic_event("B", primary_rate)
    builder.basic_event("C", spare_rate, dormancy=spare_dormancy)
    builder.basic_event("D", spare_rate, dormancy=spare_dormancy)
    builder.and_gate("primary", ["A", "B"])
    builder.and_gate("spare", ["C", "D"])
    builder.spare_gate("system", primary="primary", spares=["spare"])
    return builder.build(top="system")


def nested_spare_system(
    primary_rate: float = 1.0,
    spare_rate: float = 1.0,
    spare_dormancy: float = 0.5,
) -> DynamicFaultTree:
    """Figure 10b: the spare module is itself a (warm) spare gate.

    When the outer gate activates the module, only the inner primary ``C`` is
    switched on; the inner spare ``D`` stays dormant until ``C`` fails.
    """
    builder = FaultTreeBuilder("complex-spare-nested")
    builder.basic_event("A", primary_rate)
    builder.basic_event("B", primary_rate)
    builder.basic_event("C", spare_rate, dormancy=spare_dormancy)
    builder.basic_event("D", spare_rate, dormancy=spare_dormancy)
    builder.spare_gate("primary", primary="A", spares=["B"])
    builder.spare_gate("spare", primary="C", spares=["D"])
    builder.spare_gate("system", primary="primary", spares=["spare"])
    return builder.build(top="system")


def fdep_gate_trigger_system(
    trigger_rate: float = 0.5,
    component_rate: float = 1.0,
) -> DynamicFaultTree:
    """Figure 10c: an FDEP whose dependent event is a gate.

    The trigger ``T`` fails the sub-system ``A`` (an AND over ``B`` and ``C``)
    as a whole, but none of the components below it: the basic event ``C`` is
    shared with a second sub-system ``CE`` that is *not* affected by the
    trigger.  Because the system needs *both* sub-systems to fail, the
    difference between "the trigger fails the gate" and "the trigger fails the
    gate's components" is observable in the unreliability (failing the
    components would drag ``CE`` down as well).
    """
    builder = FaultTreeBuilder("fdep-gate-dependent")
    builder.basic_event("T", trigger_rate)
    builder.basic_event("B", component_rate)
    builder.basic_event("C", component_rate)
    builder.basic_event("E", component_rate)
    builder.and_gate("A", ["B", "C"])
    builder.and_gate("CE", ["C", "E"])
    builder.fdep("F", trigger="T", dependents=["A"])
    builder.and_gate("system", ["A", "CE"])
    return builder.build(top="system")
