"""The paper's case studies and parametric benchmark families."""

from .cas import CAS_RATES, CAS_UNITS, PAPER_UNRELIABILITY_AT_1 as CAS_PAPER_UNRELIABILITY, cardiac_assist_system
from .complex_spares import and_spare_system, fdep_gate_trigger_system, nested_spare_system
from .cps import (
    CPS_MODULES,
    PAPER_COMPOSITIONAL_PEAK_STATES,
    PAPER_COMPOSITIONAL_PEAK_TRANSITIONS,
    PAPER_DIFTREE_STATES,
    PAPER_DIFTREE_TRANSITIONS,
    PAPER_UNRELIABILITY_AT_1 as CPS_PAPER_UNRELIABILITY,
    cascaded_pand_system,
)
from .figure2 import figure2_models, model_a, model_b
from .generators import (
    and_of_or_family,
    cascaded_pand_family,
    fdep_cascade_family,
    random_corpus,
    random_dft,
    spare_chain_family,
)
from .mutex import inhibition_pair, mutex_switch_bank, mutually_exclusive_switch
from .nondeterminism import pand_race_bank, pand_race_system, shared_spare_race_system
from .optimization import cas_spares_scenario, cps_spares_scenario
from .repairable import repairable_and_system, repairable_plant, repairable_voting_system

__all__ = [
    "CAS_PAPER_UNRELIABILITY",
    "CAS_RATES",
    "CAS_UNITS",
    "CPS_MODULES",
    "CPS_PAPER_UNRELIABILITY",
    "PAPER_COMPOSITIONAL_PEAK_STATES",
    "PAPER_COMPOSITIONAL_PEAK_TRANSITIONS",
    "PAPER_DIFTREE_STATES",
    "PAPER_DIFTREE_TRANSITIONS",
    "and_of_or_family",
    "and_spare_system",
    "cardiac_assist_system",
    "cas_spares_scenario",
    "cascaded_pand_family",
    "cascaded_pand_system",
    "cps_spares_scenario",
    "fdep_cascade_family",
    "fdep_gate_trigger_system",
    "figure2_models",
    "inhibition_pair",
    "model_a",
    "model_b",
    "mutex_switch_bank",
    "mutually_exclusive_switch",
    "nested_spare_system",
    "pand_race_bank",
    "pand_race_system",
    "random_corpus",
    "random_dft",
    "repairable_and_system",
    "repairable_plant",
    "repairable_voting_system",
    "shared_spare_race_system",
    "spare_chain_family",
]
