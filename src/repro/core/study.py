"""The query engine: plan and evaluate measure queries on fault trees.

A :class:`Study` owns the pipeline for one tree —

    DFT  ->  I/O-IMC community  ->  compositional aggregation  ->  CTMC/CTMDP

— caches every intermediate artefact, and evaluates a declarative
:class:`~repro.core.measures.Query` against the final Markov model.  The
engine plans shared work across the query's measures:

* one conversion and one aggregation per tree, whatever the query asks for;
* one **vectorised uniformisation sweep** over the union of all requested
  mission times (the matvec series ``pi(0) * P^k`` is shared, only the
  per-time Poisson weights differ — see
  :func:`repro.ctmc.transient.transient_distributions`);
* for non-deterministic models, one backward value-iteration sweep per bound
  direction over all bound times, with a shared Poisson term cache.

:class:`BatchStudy` lifts the engine over a corpus of trees (Galileo files or
in-memory trees) with optional process-parallelism; the CLI's ``batch``
subcommand is a thin shell around it.
"""

from __future__ import annotations

import time as _time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from ..ctmc import CTMC, CTMDP, ctmc_from_ioimc, ctmdp_from_ioimc
from ..ctmc.builders import CtmcSkeleton, CtmdpSkeleton, ctmdp_skeleton_from_ioimc
from ..ctmc.kernel import CtmdpKernel, TransientKernel
from ..dft.hashing import canonical_assignment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from ..service.store import SkeletonStore
from ..dft import galileo
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError, NondeterminismError, ReproError
from ..ioimc.model import IOIMC
from ..ioimc.reduction import AggregationOptions
from . import signals
from .aggregation import (
    CompositionStatistics,
    CompositionalAggregationOptions,
    CompositionalAggregator,
)
from .conversion import Community, ConversionOptions, DftToIoimcConverter
from .measures import (
    MTTF,
    ImportanceRanking,
    Measure,
    Query,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
)
from .results import (
    BatchResult,
    BatchRow,
    MeasureResult,
    ModelInfo,
    RestoredStatistics,
    StudyResult,
    write_batch_jsonl,
)

QueryLike = Union[Query, Measure, Sequence[Measure]]


@dataclass
class StudyOptions:
    """Options of the full compositional analysis pipeline."""

    conversion: ConversionOptions = field(default_factory=ConversionOptions)
    aggregation: AggregationOptions = field(default_factory=AggregationOptions)
    ordering: str = "linked"
    #: Fuse maximal progress into composition (see the aggregation engine).
    fuse: bool = True
    #: Truncation tolerance of the uniformisation series.
    tolerance: float = 1e-12
    #: Worker processes for collapsing independent module groups of the
    #: ``modular`` plan in parallel (1 = serial; flat orderings ignore it).
    aggregation_processes: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.tolerance < 1.0:
            raise AnalysisError(
                f"the truncation tolerance must be in (0, 1), got {self.tolerance}"
            )
        if int(self.aggregation_processes) < 1:
            raise AnalysisError(
                f"aggregation_processes must be >= 1, got {self.aggregation_processes}"
            )

    def composition_options(self) -> CompositionalAggregationOptions:
        return CompositionalAggregationOptions(
            ordering=self.ordering,
            aggregation=self.aggregation,
            fuse=self.fuse,
            processes=self.aggregation_processes,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ordering": self.ordering,
            "aggregation": self.aggregation.method,
            "minimiser": self.aggregation.minimiser,
            "fuse": self.fuse,
            "tolerance": self.tolerance,
            "aggregation_processes": self.aggregation_processes,
            "minimisation_processes": self.aggregation.minimisation_processes,
        }


def _as_query(query: QueryLike) -> Query:
    return query if isinstance(query, Query) else Query(query)


# ---------------------------------------------------------------------------
# model-level evaluation (shared by Study and the rate-sweep engine)
# ---------------------------------------------------------------------------

def _ctmc_point_values(
    model: CTMC, query: Query, tolerance: float
) -> Dict[float, float]:
    """Failed-state occupancy at the union of all requested times (one sweep)."""
    times = query.transient_times()
    if not times:
        return {}
    curve = model.probability_of_label_curve(
        signals.FAILED_LABEL, times, tolerance=tolerance
    )
    return dict(zip(times, (float(value) for value in curve)))


def _query_bound_times(query: Query) -> Tuple[float, ...]:
    """Sorted union of the mission times of every bound measure in ``query``."""
    return tuple(
        sorted(
            {
                time
                for measure in query
                if isinstance(measure, UnreliabilityBounds)
                for time in measure.times  # type: ignore[union-attr]
            }
        )
    )


def _ctmdp_bound_values(
    model: CTMDP, query: Query, tolerance: float
) -> Dict[float, Tuple[float, float]]:
    """Reachability bounds at the union of all bound times (one sweep pair)."""
    times = _query_bound_times(query)
    if not times:
        return {}
    lower, upper = model.reachability_bounds_curve(
        signals.FAILED_LABEL, times, tolerance=tolerance
    )
    return {
        time: (float(low), float(high))
        for time, low, high in zip(times, lower, upper)
    }


#: Per-direction gradient payload of the parametric CTMDP kernel:
#: direction ("max"/"min") -> (bound curve by time, parameter -> gradient by
#: time).  Assembled by :func:`gradient_values_from_kernel`, consumed by the
#: importance-ranking branch of :func:`_evaluate_measure`.
GradientValues = Dict[
    str, Tuple[Dict[float, float], Dict[str, Dict[float, float]]]
]


def gradient_values_from_kernel(
    kernel: CtmdpKernel, query: Query, tolerance: float
) -> Optional[GradientValues]:
    """Run one gradient sweep per direction the query's rankings need.

    The kernel must already hold a loaded sample.  Returns ``None`` when the
    query contains no :class:`~repro.core.measures.ImportanceRanking`.
    """
    needed: Dict[str, set] = {}
    for measure in query:
        if isinstance(measure, ImportanceRanking):
            needed.setdefault(measure.direction, set()).update(measure.times)  # type: ignore[arg-type]
    if not needed:
        return None
    payload: GradientValues = {}
    for direction, time_set in sorted(needed.items()):
        times = tuple(sorted(time_set))
        curve, grads = kernel.gradient_curve(
            signals.FAILED_LABEL,
            times,
            maximize=(direction == "max"),
            tolerance=tolerance,
        )
        payload[direction] = (
            {time: float(value) for time, value in zip(times, curve)},
            {
                name: {
                    time: float(grads[i, j]) for i, time in enumerate(times)
                }
                for j, name in enumerate(kernel.parameters)
            },
        )
    return payload


def _evaluate_measure(
    model: Optional[Union[CTMC, CTMDP]],
    measure: Measure,
    point_values: Dict[float, float],
    bound_curves: Dict[float, Tuple[float, float]],
    nondeterministic: bool = False,
    gradient_values: Optional[GradientValues] = None,
) -> MeasureResult:
    nondeterministic = nondeterministic or isinstance(model, CTMDP)
    if isinstance(measure, Unreliability):
        if nondeterministic:
            raise AnalysisError(
                "the model is non-deterministic (CTMDP); use UnreliabilityBounds "
                "to obtain the interval of possible values"
            )
        times: Tuple[float, ...] = measure.times  # type: ignore[assignment]
        return MeasureResult(
            kind=measure.kind,
            times=times,
            values=tuple(point_values[time] for time in times),
        )
    if isinstance(measure, UnreliabilityBounds):
        times = measure.times  # type: ignore[assignment]
        lower = tuple(bound_curves[time][0] for time in times)
        upper = tuple(bound_curves[time][1] for time in times)
        return MeasureResult(kind=measure.kind, times=times, lower=lower, upper=upper)
    if isinstance(measure, ImportanceRanking):
        if gradient_values is None or measure.direction not in gradient_values:
            raise AnalysisError(
                "importance rankings need the parametric gradient engine, "
                "which was not run for this evaluation"
            )
        curve_by_time, per_param = gradient_values[measure.direction]
        if not per_param:
            raise AnalysisError(
                "the model has no declared rate parameters; wrap the tree with "
                "with_rate_parameters(...) to rank its failure rates"
            )
        times = measure.times  # type: ignore[assignment]
        gradients = {
            name: tuple(per_param[name][time] for time in times)
            for name in sorted(per_param)
        }
        last = times[-1]
        ranking = tuple(
            sorted(per_param, key=lambda name: (-abs(per_param[name][last]), name))
        )
        return MeasureResult(
            kind=measure.kind,
            times=times,
            values=tuple(curve_by_time[time] for time in times),
            gradients=gradients,
            ranking=ranking,
        )
    if isinstance(measure, Unavailability):
        if nondeterministic:
            raise AnalysisError(
                "unavailability of non-deterministic models is not supported"
            )
        if measure.steady_state:
            value = model.steady_state_probability_of_label(signals.FAILED_LABEL)
            return MeasureResult(
                kind=measure.kind, values=(float(value),), steady_state=True
            )
        assert measure.time is not None
        return MeasureResult(
            kind=measure.kind,
            times=(measure.time,),
            values=(point_values[measure.time],),
            steady_state=False,
        )
    if isinstance(measure, MTTF):
        if nondeterministic:
            raise AnalysisError("MTTF of non-deterministic models is not supported")
        value = model.mean_time_to_label(signals.FAILED_LABEL)
        return MeasureResult(kind=measure.kind, values=(float(value),))
    raise AnalysisError(f"unsupported measure: {measure!r}")


def _measure_needs_model(measure: Measure) -> bool:
    """True iff ``measure`` reads the generator beyond transient point values."""
    return isinstance(measure, MTTF) or (
        isinstance(measure, Unavailability) and measure.steady_state
    )


def query_needs_model(query: QueryLike) -> bool:
    """True iff evaluating ``query`` needs more than transient point values.

    MTTF and steady-state unavailability read the generator itself; every
    other measure is assembled from the failed-state occupancy curve alone.
    The rate-sweep kernel uses this to skip building a concrete CTMC per
    sample whenever the query is purely transient.
    """
    return any(_measure_needs_model(measure) for measure in _as_query(query))


def measures_from_curves(
    model: Optional[Union[CTMC, CTMDP]],
    query: Query,
    point_values: Dict[float, float],
    bound_curves: Dict[float, Tuple[float, float]],
    on_error: str = "raise",
    nondeterministic: bool = False,
    gradient_values: Optional[GradientValues] = None,
) -> Tuple[MeasureResult, ...]:
    """Assemble every measure of ``query`` from precomputed curve values.

    ``model`` may be ``None`` when the query is purely transient (see
    :func:`query_needs_model`); measures that do need the model then fail
    individually under ``on_error="record"``.  ``nondeterministic=True``
    marks a model-free evaluation as a CTMDP one (the kernel path), so
    deterministic-only measures fail with the CTMDP diagnostics rather than
    the missing-model one.  ``gradient_values`` feeds importance rankings.
    """
    if on_error not in ("raise", "record"):
        raise AnalysisError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    evaluated = []
    for measure in query:
        try:
            if model is None and not nondeterministic and _measure_needs_model(measure):
                raise AnalysisError(
                    f"measure {measure.kind!r} needs the concrete Markov model, "
                    "which was not instantiated"
                )
            evaluated.append(
                _evaluate_measure(
                    model,
                    measure,
                    point_values,
                    bound_curves,
                    nondeterministic=nondeterministic,
                    gradient_values=gradient_values,
                )
            )
        except AnalysisError as error:
            if on_error == "raise":
                raise
            evaluated.append(MeasureResult(kind=measure.kind, error=str(error)))
    return tuple(evaluated)


def evaluate_query_on_model(
    model: Union[CTMC, CTMDP],
    query: QueryLike,
    tolerance: float = 1e-12,
    on_error: str = "raise",
    gradient_values: Optional[GradientValues] = None,
) -> Tuple[MeasureResult, ...]:
    """Evaluate every measure of ``query`` directly on a Markov model.

    This is the planning core of :meth:`Study.evaluate` without the pipeline:
    one vectorised transient sweep over the union of all mission times (or one
    bound-curve sweep pair for CTMDPs), then each measure reads its values.
    The rate-sweep engine calls it once per instantiated sample.  Importance
    rankings need ``gradient_values`` from a parametric kernel (a concrete
    model carries evaluated floats, so it cannot be differentiated itself).
    """
    if on_error not in ("raise", "record"):
        raise AnalysisError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    query = _as_query(query)
    if isinstance(model, CTMC):
        point_values = _ctmc_point_values(model, query, tolerance)
        bound_curves: Dict[float, Tuple[float, float]] = {
            time: (value, value) for time, value in point_values.items()
        }
    else:
        point_values = {}
        bound_curves = _ctmdp_bound_values(model, query, tolerance)
    return measures_from_curves(
        model,
        query,
        point_values,
        bound_curves,
        on_error=on_error,
        gradient_values=gradient_values,
    )


def _query_wants_gradients(query: Query) -> bool:
    return any(isinstance(measure, ImportanceRanking) for measure in query)


def _degenerate_envelope(skeleton: CtmcSkeleton) -> CtmdpSkeleton:
    """The choice-free CTMDP view of a CTMC skeleton (bounds coincide).

    Used to differentiate deterministic models: the CTMDP kernel's gradient
    sweep works unchanged on a skeleton with no vanishing choices.
    """
    return CtmdpSkeleton(
        num_states=skeleton.num_states,
        initial=skeleton.initial,
        labels=skeleton.labels,
        choices=((),) * skeleton.num_states,
        edges=skeleton.edges,
    )


def evaluate_skeleton_query(
    skeleton: Union[CtmcSkeleton, CtmdpSkeleton],
    query: QueryLike,
    assignment: Optional[Mapping[str, float]] = None,
    tolerance: float = 1e-12,
    on_error: str = "raise",
    kernel: Optional[Union[TransientKernel, CtmdpKernel]] = None,
) -> Tuple[MeasureResult, ...]:
    """Evaluate ``query`` on a rate-independent skeleton under ``assignment``.

    This is the cached-pipeline analogue of :func:`evaluate_query_on_model`:
    CTMC skeletons run on a shared-structure :class:`TransientKernel` and
    CTMDP skeletons on a :class:`CtmdpKernel` (pass ``kernel`` to reuse one
    across calls — its CSR pattern and Poisson terms then survive between
    requests), instantiating a concrete model only when a measure reads the
    generator itself.  The skeleton store's serving paths and ``Study``'s
    ``skeleton_cache=`` mode both evaluate through here, which is what makes
    a served response bit-identical to the in-process result.
    """
    query = _as_query(query)
    if isinstance(skeleton, CtmcSkeleton):
        if isinstance(kernel, CtmdpKernel):
            raise AnalysisError("a CTMC skeleton needs a TransientKernel, not a CtmdpKernel")
        if kernel is not None and kernel.skeleton is not skeleton:
            raise AnalysisError("the transient kernel belongs to a different skeleton")
        if kernel is None:
            kernel = TransientKernel(skeleton)
        kernel.load(None if assignment is None else dict(assignment))
        times = query.transient_times()
        curve = kernel.probability_of_label_curve(
            signals.FAILED_LABEL, times, tolerance
        )
        point_values = dict(zip(times, (float(value) for value in curve)))
        bound_curves = {time: (value, value) for time, value in point_values.items()}
        gradient_values: Optional[GradientValues] = None
        if _query_wants_gradients(query):
            envelope_kernel = _degenerate_envelope(skeleton).ctmdp_kernel()
            envelope_kernel.load(None if assignment is None else dict(assignment))
            gradient_values = gradient_values_from_kernel(
                envelope_kernel, query, tolerance
            )
        model: Optional[Union[CTMC, CTMDP]] = None
        if query_needs_model(query):
            model = skeleton.instantiate(assignment)
        return measures_from_curves(
            model,
            query,
            point_values,
            bound_curves,
            on_error=on_error,
            gradient_values=gradient_values,
        )
    if isinstance(kernel, TransientKernel):
        raise AnalysisError("a CTMDP skeleton needs a CtmdpKernel, not a TransientKernel")
    if kernel is not None and kernel.skeleton is not skeleton:
        raise AnalysisError("the CTMDP kernel belongs to a different skeleton")
    if kernel is None:
        kernel = skeleton.ctmdp_kernel()
    kernel.load(None if assignment is None else dict(assignment))
    bound_times = _query_bound_times(query)
    bound_curves = {}
    if bound_times:
        lower, upper = kernel.reachability_bounds_curve(
            signals.FAILED_LABEL, bound_times, tolerance=tolerance
        )
        bound_curves = {
            time: (float(low), float(high))
            for time, low, high in zip(bound_times, lower, upper)
        }
    gradient_values = gradient_values_from_kernel(kernel, query, tolerance)
    return measures_from_curves(
        None,
        query,
        {},
        bound_curves,
        on_error=on_error,
        nondeterministic=True,
        gradient_values=gradient_values,
    )


class Study:
    """Plans and runs the compositional pipeline for one fault tree.

    With a ``skeleton_cache`` (a :class:`~repro.service.store.SkeletonStore`)
    the pipeline is content-addressed: a hit on the tree's structural hash
    skips conversion, aggregation and minimisation entirely and evaluates on
    the cached skeleton under the tree's canonical rate assignment; a miss
    builds and persists the entry for every later tree of the same structure.
    """

    def __init__(
        self,
        tree: DynamicFaultTree,
        options: Optional[StudyOptions] = None,
        skeleton_cache: Optional["SkeletonStore"] = None,
    ):
        self.tree = tree
        self.options = options or StudyOptions()
        self.skeleton_cache = skeleton_cache
        self._community: Optional[Community] = None
        self._final: Optional[IOIMC] = None
        self._statistics: Optional[CompositionStatistics] = None
        self._markov: Optional[Union[CTMC, CTMDP]] = None
        self._timings: Dict[str, float] = {}
        self._cache_entry = None
        self._cache_hit = False
        self._cache_kernel: Optional[Union[TransientKernel, CtmdpKernel]] = None
        self._cache_assignment: Optional[Dict[str, float]] = None
        self._gradient_kernel: Optional[CtmdpKernel] = None

    # ------------------------------------------------------------- pipeline
    @property
    def community(self) -> Community:
        """The I/O-IMC community of the fault tree (cached)."""
        if self._community is None:
            start = _time.perf_counter()
            converter = DftToIoimcConverter(self.tree, self.options.conversion)
            self._community = converter.convert()
            self._timings["conversion"] = _time.perf_counter() - start
        return self._community

    @property
    def final_ioimc(self) -> IOIMC:
        """The single aggregated I/O-IMC of the whole system (cached)."""
        if self._final is None:
            community = self.community
            start = _time.perf_counter()
            aggregator = CompositionalAggregator(
                community.models(),
                self.options.composition_options(),
                community=community,
            )
            self._final, self._statistics = aggregator.run()
            self._timings["aggregation"] = _time.perf_counter() - start
        return self._final

    @property
    def statistics(self) -> CompositionStatistics:
        """Composition statistics (peak intermediate sizes, per-step records)."""
        self.final_ioimc
        assert self._statistics is not None
        return self._statistics

    @property
    def markov_model(self) -> Union[CTMC, CTMDP]:
        """The final CTMC, or CTMDP if non-determinism remains (cached)."""
        if self._markov is None:
            final = self.final_ioimc
            start = _time.perf_counter()
            try:
                self._markov = ctmc_from_ioimc(final)
            except NondeterminismError:
                self._markov = ctmdp_from_ioimc(final)
            self._timings["markov"] = _time.perf_counter() - start
        return self._markov

    @property
    def is_nondeterministic(self) -> bool:
        """True iff the aggregated model is a CTMDP rather than a CTMC."""
        if self.skeleton_cache is not None:
            return self._cached_entry().nondeterministic
        return isinstance(self.markov_model, CTMDP)

    # ----------------------------------------------------------- cached path
    def _cached_entry(self):
        """The store entry of this tree's structural class (fetched once)."""
        if self._cache_entry is None:
            assert self.skeleton_cache is not None
            start = _time.perf_counter()
            self._cache_entry, self._cache_hit = self.skeleton_cache.get_or_build(
                self.tree, self.options
            )
            self._timings["cache"] = _time.perf_counter() - start
        return self._cache_entry

    def _evaluate_cached(self, query: Query, on_error: str) -> StudyResult:
        entry = self._cached_entry()
        start = _time.perf_counter()
        if self._cache_kernel is None:
            if isinstance(entry.skeleton, CtmcSkeleton):
                self._cache_kernel = TransientKernel(entry.skeleton, buffer=entry.buffer)
            elif isinstance(entry.skeleton, CtmdpSkeleton):
                self._cache_kernel = entry.skeleton.ctmdp_kernel()
        if self._cache_assignment is None:
            # One canonical tree walk per Study, not per evaluate() call.
            self._cache_assignment = canonical_assignment(self.tree)
        measures = evaluate_skeleton_query(
            entry.skeleton,
            query,
            self._cache_assignment,
            tolerance=self.options.tolerance,
            on_error=on_error,
            kernel=self._cache_kernel,
        )
        self._timings["evaluation"] = _time.perf_counter() - start
        self._timings["total"] = self._timings.get("cache", 0.0) + self._timings["evaluation"]
        options = self.options.to_dict()
        options["skeleton_cache"] = "hit" if self._cache_hit else "miss"
        return StudyResult(
            tree_name=self.tree.name,
            tree_summary=self.tree.summary(),
            measures=measures,
            model=entry.model,
            statistics=RestoredStatistics(dict(entry.statistics)),
            options=options,
            timings=self.timings,
        )

    @property
    def timings(self) -> Dict[str, float]:
        """Wall-clock seconds of every pipeline stage run so far."""
        return dict(self._timings)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, query: QueryLike, on_error: str = "raise") -> StudyResult:
        """Evaluate all of ``query``'s measures with shared planned work.

        ``on_error="raise"`` (default) propagates the first measure that
        cannot be evaluated (e.g. MTTF of a non-deterministic model);
        ``on_error="record"`` evaluates every measure independently and
        stores per-measure failures in :attr:`MeasureResult.error`, so one
        unsupported measure does not discard the others' values (the CLI and
        the batch runner use this mode).
        """
        query = _as_query(query)
        if self.skeleton_cache is not None:
            return self._evaluate_cached(query, on_error)
        model = self.markov_model
        start = _time.perf_counter()
        gradient_values: Optional[GradientValues] = None
        if _query_wants_gradients(query):
            # Differentiation needs the symbolic rates, which the concrete
            # model no longer carries: run the parametric CTMDP kernel on the
            # aggregated I/O-IMC's envelope (deterministic models included —
            # their envelope has no choices and both bounds coincide).
            if self._gradient_kernel is None:
                self._gradient_kernel = ctmdp_skeleton_from_ioimc(
                    self.final_ioimc
                ).ctmdp_kernel()
                self._gradient_kernel.load()
            gradient_values = gradient_values_from_kernel(
                self._gradient_kernel, query, self.options.tolerance
            )
        measures = evaluate_query_on_model(
            model,
            query,
            tolerance=self.options.tolerance,
            on_error=on_error,
            gradient_values=gradient_values,
        )
        self._timings["evaluation"] = _time.perf_counter() - start
        self._timings["total"] = sum(
            self._timings.get(key, 0.0)
            for key in ("conversion", "aggregation", "markov", "evaluation")
        )
        return StudyResult(
            tree_name=self.tree.name,
            tree_summary=self.tree.summary(),
            measures=measures,
            model=self._model_info(model),
            statistics=self.statistics,
            options=self.options.to_dict(),
            timings=self.timings,
        )

    def _model_info(self, model: Union[CTMC, CTMDP]) -> ModelInfo:
        final = self.final_ioimc
        return ModelInfo(
            kind="ctmdp" if isinstance(model, CTMDP) else "ctmc",
            states=model.num_states,
            nondeterministic=isinstance(model, CTMDP),
            final_ioimc_states=final.num_states,
            final_ioimc_transitions=final.num_transitions,
            community_size=len(self.community.members),
        )


def evaluate(
    tree: DynamicFaultTree,
    query: QueryLike,
    options: Optional[StudyOptions] = None,
) -> StudyResult:
    """Evaluate ``query`` on ``tree`` with a fresh :class:`Study`."""
    return Study(tree, options).evaluate(query)


# ---------------------------------------------------------------------------
# corpus runner
# ---------------------------------------------------------------------------

Source = Union[str, Path, DynamicFaultTree]


@dataclass(frozen=True)
class _BatchItem:
    """One batch work unit: a Galileo file path or an in-memory tree.

    Files are parsed inside the worker (so a corrupt file becomes that row's
    error, not the pool's); in-memory trees travel by pickle, which preserves
    failure rates exactly where a Galileo round-trip would quantise them.
    """

    name: str
    path: Optional[str]
    tree: Optional[DynamicFaultTree]


def _evaluate_batch_chunk(
    jobs: Sequence[Tuple[_BatchItem, Query, Optional[StudyOptions]]]
) -> List[BatchRow]:
    """Worker entry point for chunked scheduling: one pickle per chunk."""
    return [_evaluate_batch_item(job) for job in jobs]


def _evaluate_batch_item(
    job: Tuple[_BatchItem, Query, Optional[StudyOptions]]
) -> BatchRow:
    item, query, options = job
    start = _time.perf_counter()
    try:
        if item.path is not None:
            tree = galileo.parse_file(item.path)
        else:
            assert item.tree is not None
            tree = item.tree
        # Record per-measure failures (an unsupported MTTF must not discard
        # the bounds computed for the same tree); tree-level errors below
        # still fail the whole row.
        result = Study(tree, options).evaluate(query, on_error="record")
        return BatchRow(
            name=item.name,
            source=item.path,
            result=result,
            error=None,
            wall_seconds=_time.perf_counter() - start,
        )
    except (ReproError, OSError, UnicodeDecodeError) as error:
        return BatchRow(
            name=item.name,
            source=item.path,
            result=None,
            error=str(error),
            wall_seconds=_time.perf_counter() - start,
        )


class BatchStudy:
    """Evaluates one query over many trees (a corpus), optionally in parallel.

    ``sources`` may mix paths to Galileo ``.dft`` files and in-memory
    :class:`~repro.dft.tree.DynamicFaultTree` objects; files are parsed in the
    worker, in-memory trees are pickled to it (rate-exact, no Galileo
    round-trip).
    """

    def __init__(
        self,
        sources: Iterable[Source],
        query: QueryLike,
        options: Optional[StudyOptions] = None,
    ):
        self.query = _as_query(query)
        self.options = options
        self._items: List[_BatchItem] = []
        for source in sources:
            if isinstance(source, DynamicFaultTree):
                self._items.append(_BatchItem(name=source.name, path=None, tree=source))
            else:
                path = str(source)
                self._items.append(_BatchItem(name=Path(path).stem, path=path, tree=None))
        if not self._items:
            raise AnalysisError("a batch study needs at least one tree")
        # Row names must be unambiguous: where two corpus members share a name
        # (a/x.dft and b/x.dft, or two in-memory trees named alike), fall back
        # to the full path; anything still ambiguous (identical paths, equal
        # tree names) gets an index suffix.
        name_counts: Dict[str, int] = {}
        for item in self._items:
            name_counts[item.name] = name_counts.get(item.name, 0) + 1
        resolved = [
            item.path
            if name_counts[item.name] > 1 and item.path is not None
            else item.name
            for item in self._items
        ]
        resolved_counts: Dict[str, int] = {}
        for name in resolved:
            resolved_counts[name] = resolved_counts.get(name, 0) + 1
        self._items = [
            _BatchItem(
                name=name if resolved_counts[name] == 1 else f"{name}#{index}",
                path=item.path,
                tree=item.tree,
            )
            for index, (name, item) in enumerate(zip(resolved, self._items))
        ]

    def __len__(self) -> int:
        return len(self._items)

    def _resolve_workers(self, processes: Optional[int]) -> int:
        workers = 1 if processes is None else int(processes)
        if workers < 1:
            raise AnalysisError(f"processes must be >= 1, got {processes}")
        return workers if len(self._items) > 1 else 1

    def iter_rows(
        self,
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> Iterator[BatchRow]:
        """Yield per-tree rows as they are produced, in corpus order.

        With ``processes > 1`` the corpus is cut into chunks of ``chunk_size``
        trees (default: a multiple of the worker count) and at most a small
        window of chunks is in flight at any time — so a million-tree corpus
        neither materialises all rows nor floods the executor with futures.
        """
        workers = self._resolve_workers(processes)
        jobs = [(item, self.query, self.options) for item in self._items]
        if workers == 1:
            for job in jobs:
                yield _evaluate_batch_item(job)
            return
        if chunk_size is None:
            # Aim for ~4 chunks per worker so stragglers rebalance, but never
            # sub-single-tree chunks.
            chunk = max(1, min(64, len(jobs) // (workers * 4) or 1))
        else:
            chunk = int(chunk_size)
            if chunk < 1:
                raise AnalysisError(f"chunk_size must be >= 1, got {chunk_size}")
        max_pending = workers + 2
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: Deque = deque()
            next_index = 0
            while next_index < len(jobs) or pending:
                while next_index < len(jobs) and len(pending) < max_pending:
                    batch = jobs[next_index : next_index + chunk]
                    pending.append(pool.submit(_evaluate_batch_chunk, batch))
                    next_index += len(batch)
                for row in pending.popleft().result():
                    yield row

    def run(
        self,
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
        sink: Optional[TextIO] = None,
    ) -> BatchResult:
        """Analyse every tree; ``processes > 1`` fans out over worker processes.

        With a ``sink`` (a writable text handle) rows are streamed to it as
        ``repro.batch/2`` JSONL records instead of being collected — the
        returned :class:`BatchResult` then carries the aggregate only
        (``rows=()``); :func:`repro.core.results.read_batch_jsonl` loads the
        rows back.
        """
        workers = self._resolve_workers(processes)
        rows_iter = self.iter_rows(processes=workers, chunk_size=chunk_size)
        if sink is not None:
            return write_batch_jsonl(rows_iter, sink, processes=workers)
        start = _time.perf_counter()
        rows = list(rows_iter)
        return BatchResult(
            rows=tuple(rows),
            wall_seconds=_time.perf_counter() - start,
            processes=workers,
        )
