"""Conversion of a dynamic fault tree into a community of I/O-IMC.

This module implements Step 1 of the paper's analysis algorithm (Section 5):
"Map each DFT element to its corresponding (aggregated) I/O-IMC and match all
inputs and outputs."  The mapping is one-to-one except for the auxiliary
models:

* a **firing auxiliary** per functionally dependent element (Section 4.3),
* an **inhibition auxiliary** per inhibited element (Section 7.1),
* an **activation auxiliary** per element with several activation sources
  (Section 4 / 6.1),
* a single **monitor** that labels system-failure states for the analysis.

The non-obvious part is the *activation wiring* of Section 6.1 (complex
spares).  For every element the converter determines whether it is always
active or which signals activate it:

* elements not used inside any spare module are active from the start;
* the primary of a spare gate shares the gate's own activation;
* a spare is activated by the claim signal of whichever sharing gate takes it
  (all claim signals are merged by the spare's activation auxiliary);
* children of static/PAND/SEQ gates inherit the activation of their parent —
  the same action name is simply wired through, no extra model is needed;
* the inputs of a SEQ gate are activated by the failure of their left
  neighbour, which realises the paper's observation that SEQ is a cold-spare
  in disguise (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..dft.elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from ..dft.tree import DynamicFaultTree
from ..errors import ConversionError
from ..ioimc.behavior import ElementBehavior
from ..ioimc.model import IOIMC
from ..ioimc.reduction import AggregationOptions, aggregate
from . import signals
from .semantics import (
    ActivationAuxiliaryBehavior,
    BasicEventBehavior,
    FiringAuxiliaryBehavior,
    InhibitionAuxiliaryBehavior,
    MonitorBehavior,
    PandGateBehavior,
    RepairableStaticGateBehavior,
    SpareGateBehavior,
    StaticGateBehavior,
)

#: Marker meaning "the element is active from time zero".
ALWAYS_ACTIVE = "ALWAYS_ACTIVE"


@dataclass
class CommunityMember:
    """One I/O-IMC of the community, with provenance information."""

    name: str
    kind: str
    model: IOIMC
    element: Optional[str] = None

    @property
    def num_states(self) -> int:
        return self.model.num_states


@dataclass
class Community:
    """The set of I/O-IMC a DFT was converted into."""

    tree: DynamicFaultTree
    members: List[CommunityMember] = field(default_factory=list)
    top_fire_action: str = ""
    monitored_label: str = signals.FAILED_LABEL

    def models(self) -> List[IOIMC]:
        return [member.model for member in self.members]

    def member(self, name: str) -> CommunityMember:
        for member in self.members:
            if member.name == name:
                return member
        raise ConversionError(f"no community member named {name!r}")

    def member_for_element(self, element: str) -> CommunityMember:
        for member in self.members:
            if member.element == element and member.kind in {"basic_event", "gate"}:
                return member
        raise ConversionError(f"no community member models element {element!r}")

    def plan(self):
        """The modular aggregation plan of this community.

        Derived from the fault tree's independent-module decomposition; used
        by the ``ordering="modular"`` strategy of the aggregation engine.
        """
        from .planning import build_plan

        return build_plan(self)

    @property
    def total_states(self) -> int:
        return sum(member.num_states for member in self.members)

    @property
    def total_transitions(self) -> int:
        return sum(member.model.num_transitions for member in self.members)

    def summary(self) -> str:
        return (
            f"community of {len(self.members)} I/O-IMC, "
            f"{self.total_states} states, {self.total_transitions} transitions in total"
        )


@dataclass
class ConversionOptions:
    """Options controlling the DFT -> I/O-IMC conversion."""

    #: Aggregate every elementary model before composing (paper: "aggregated").
    pre_aggregate: bool = True
    #: Aggregation settings used for the per-element minimisation.
    aggregation: AggregationOptions = field(default_factory=AggregationOptions)
    #: Add the analysis monitor listening to the top event.
    include_monitor: bool = True


class DftToIoimcConverter:
    """Converts a validated :class:`DynamicFaultTree` into a :class:`Community`."""

    def __init__(self, tree: DynamicFaultTree, options: Optional[ConversionOptions] = None):
        self.tree = tree
        self.options = options or ConversionOptions()
        tree.validate()
        self._relevant = self._relevant_elements()
        self._repairable = self._repairable_elements()
        self._needs_firing_aux, self._needs_inhibition_aux = self._auxiliary_targets()
        self._activation_spec_cache: Dict[str, object] = {}
        self._resolved_activation_cache: Dict[str, Optional[str]] = {}
        self._activation_auxiliaries: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------ public API
    def convert(self) -> Community:
        """Build the full community for the tree."""
        self._check_supported()
        behaviors = self._element_behaviors()
        behaviors.extend(self._auxiliary_behaviors())
        if self.options.include_monitor:
            behaviors.append(self._monitor_behavior())

        community = Community(
            tree=self.tree,
            top_fire_action=signals.fire(self.tree.top),
        )
        for kind, element, behavior in behaviors:
            model = behavior.to_ioimc()
            if self.options.pre_aggregate:
                model, _stats = aggregate(model, self.options.aggregation)
            community.members.append(
                CommunityMember(name=behavior.name, kind=kind, model=model, element=element)
            )
        self._check_community(community)
        return community

    def elementary_model(self, element: str) -> IOIMC:
        """The (aggregated) elementary I/O-IMC of a single element."""
        community = self.convert()
        return community.member_for_element(element).model

    # ------------------------------------------------------- relevant elements
    def _relevant_elements(self) -> FrozenSet[str]:
        """Elements that need a model: the top's cone plus attached constraints."""
        relevant: Set[str] = set(self.tree.descendants(self.tree.top))
        changed = True
        while changed:
            changed = False
            for constraint in list(self.tree.fdep_gates()) + list(self.tree.inhibitions()):
                if constraint.name in relevant:
                    continue
                if any(child in relevant for child in constraint.inputs):
                    relevant.add(constraint.name)
                    for child in constraint.inputs:
                        new_members = self.tree.descendants(child)
                        if not new_members <= relevant:
                            relevant |= new_members
                            changed = True
                    changed = True
        return frozenset(relevant)

    def _logic_elements(self) -> List[str]:
        """Relevant elements that get their own behaviour (no constraint gates)."""
        names = []
        for name in self.tree.topological_order():
            if name not in self._relevant:
                continue
            element = self.tree.element(name)
            if isinstance(element, (FdepGate, InhibitionConstraint)):
                continue
            names.append(name)
        return names

    def _repairable_elements(self) -> FrozenSet[str]:
        """Elements whose failure can be undone (bottom-up closure)."""
        repairable: Set[str] = set()
        for name in self.tree.topological_order():
            element = self.tree.element(name)
            if isinstance(element, BasicEvent):
                if element.is_repairable:
                    repairable.add(name)
            elif isinstance(element, (AndGate, OrGate, VotingGate, SeqGate)):
                if any(child in repairable for child in element.inputs):
                    repairable.add(name)
            elif isinstance(element, (PandGate, SpareGate)):
                if any(child in repairable for child in element.inputs):
                    repairable.add(name)
        return frozenset(repairable)

    # -------------------------------------------------------------- supported?
    def _check_supported(self) -> None:
        if not self._repairable:
            return
        for name in self._logic_elements():
            element = self.tree.element(name)
            if name in self._repairable and isinstance(element, (PandGate, SpareGate, SeqGate)):
                raise ConversionError(
                    f"element {name!r} mixes repairable inputs with a dynamic gate; "
                    "the repairable extension covers basic events and static gates "
                    "(as in Section 7.2 of the paper)"
                )
        for name in self._needs_firing_aux:
            if name in self._repairable:
                raise ConversionError(
                    f"element {name!r} is both repairable and functionally dependent; "
                    "this combination is not supported"
                )
        for name in self._needs_inhibition_aux:
            if name in self._repairable:
                raise ConversionError(
                    f"element {name!r} is both repairable and inhibited; "
                    "this combination is not supported"
                )

    # ---------------------------------------------------------- firing wiring
    def _auxiliary_targets(self) -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, Tuple[str, ...]]]:
        """Elements needing a firing auxiliary (FDEP) or inhibition auxiliary."""
        firing: Dict[str, Tuple[str, ...]] = {}
        inhibition: Dict[str, Tuple[str, ...]] = {}
        for gate in self.tree.fdep_gates():
            if gate.name not in self._relevant:
                continue
            for dependent in gate.dependents:
                triggers = firing.get(dependent, ())
                firing[dependent] = triggers + (gate.trigger,)
        for constraint in self.tree.inhibitions():
            if constraint.name not in self._relevant:
                continue
            inhibitors = inhibition.get(constraint.target, ())
            inhibition[constraint.target] = inhibitors + (constraint.inhibitor,)
        overlap = set(firing) & set(inhibition)
        if overlap:
            raise ConversionError(
                "elements cannot be both functionally dependent and inhibited: "
                + ", ".join(sorted(overlap))
            )
        return firing, inhibition

    def _own_fire_action(self, name: str) -> str:
        """The action the element's own model emits when it fails."""
        if name in self._needs_firing_aux or name in self._needs_inhibition_aux:
            return signals.fire_isolated(name)
        return signals.fire(name)

    # ------------------------------------------------------ activation wiring
    def _activation_spec(self, name: str) -> object:
        """``ALWAYS_ACTIVE`` or the sorted tuple of activation source actions."""
        if name in self._activation_spec_cache:
            return self._activation_spec_cache[name]
        # Breaking potential (invalid) cycles defensively: mark as in-progress.
        self._activation_spec_cache[name] = ALWAYS_ACTIVE

        sources: Set[str] = set()
        always = False
        contributing_parents = 0

        if name == self.tree.top:
            always = True
            contributing_parents += 1

        for parent_name in self.tree.parents(name):
            if parent_name not in self._relevant:
                continue
            parent = self.tree.element(parent_name)
            if isinstance(parent, SpareGate):
                contributing_parents += 1
                if name == parent.primary:
                    inherited = self._resolved_activation(parent_name)
                    if inherited is None:
                        always = True
                    else:
                        sources.add(inherited)
                else:  # name is one of the spares
                    sources.add(signals.claim(name, parent_name))
            elif isinstance(parent, SeqGate):
                contributing_parents += 1
                position = parent.inputs.index(name)
                if position == 0:
                    inherited = self._resolved_activation(parent_name)
                    if inherited is None:
                        always = True
                    else:
                        sources.add(inherited)
                else:
                    sources.add(signals.fire(parent.inputs[position - 1]))
            elif isinstance(parent, (AndGate, OrGate, VotingGate, PandGate)):
                contributing_parents += 1
                inherited = self._resolved_activation(parent_name)
                if inherited is None:
                    always = True
                else:
                    sources.add(inherited)
            # FDEP gates and inhibitions do not influence activation.

        if contributing_parents == 0:
            always = True

        spec: object
        if always:
            spec = ALWAYS_ACTIVE
        else:
            spec = tuple(sorted(sources))
        self._activation_spec_cache[name] = spec
        return spec

    def _resolved_activation(self, name: str) -> Optional[str]:
        """The single action activating ``name`` (``None`` = always active).

        Registers an activation auxiliary when several sources must be merged.
        """
        if name in self._resolved_activation_cache:
            return self._resolved_activation_cache[name]
        spec = self._activation_spec(name)
        if spec == ALWAYS_ACTIVE:
            resolved: Optional[str] = None
        else:
            sources: Tuple[str, ...] = spec  # type: ignore[assignment]
            if len(sources) == 1:
                resolved = sources[0]
            else:
                resolved = signals.activate(name)
                self._activation_auxiliaries[name] = sources
        self._resolved_activation_cache[name] = resolved
        return resolved

    # ------------------------------------------------------------- behaviours
    def _element_behaviors(self) -> List[Tuple[str, Optional[str], ElementBehavior]]:
        behaviors: List[Tuple[str, Optional[str], ElementBehavior]] = []
        for name in self._logic_elements():
            element = self.tree.element(name)
            if isinstance(element, BasicEvent):
                behaviors.append(("basic_event", name, self._basic_event_behavior(element)))
            elif isinstance(element, (AndGate, OrGate, VotingGate)):
                behaviors.append(("gate", name, self._static_gate_behavior(element)))
            elif isinstance(element, SeqGate):
                behaviors.append(("gate", name, self._seq_gate_behavior(element)))
            elif isinstance(element, PandGate):
                behaviors.append(("gate", name, self._pand_gate_behavior(element)))
            elif isinstance(element, SpareGate):
                behaviors.append(("gate", name, self._spare_gate_behavior(element)))
            else:  # pragma: no cover - defensive
                raise ConversionError(f"no behaviour defined for element {name!r}")
        return behaviors

    def _basic_event_behavior(self, event: BasicEvent) -> ElementBehavior:
        activation = self._resolved_activation(event.name)
        effective_event = event
        if self._is_seq_follower(event.name):
            # SEQ gates emulate a cold spare (paper, footnote 4): an input may
            # not fail at all before its left neighbour has failed, whatever
            # its declared dormancy factor says.
            effective_event = BasicEvent(
                name=event.name,
                failure_rate=event.failure_rate,
                dormancy=0.0,
                repair_rate=event.repair_rate,
                failure_rate_param=event.failure_rate_param,
                repair_rate_param=event.repair_rate_param,
            )
        return BasicEventBehavior(
            effective_event,
            fire_action=self._own_fire_action(event.name),
            activation_action=activation,
            repair_action=signals.repair(event.name) if event.is_repairable else None,
        )

    def _is_seq_follower(self, name: str) -> bool:
        """True iff ``name`` is a non-first input of some SEQ gate."""
        for gate in self.tree.seq_gates():
            if gate.name in self._relevant and name in gate.inputs[1:]:
                return True
        return False

    def _threshold(self, element) -> int:
        if isinstance(element, AndGate):
            return len(element.inputs)
        if isinstance(element, OrGate):
            return 1
        if isinstance(element, VotingGate):
            return element.threshold
        if isinstance(element, SeqGate):
            return len(element.inputs)
        raise ConversionError(f"element {element.name!r} has no failure threshold")

    def _static_gate_behavior(self, element) -> ElementBehavior:
        input_fires = [signals.fire(child) for child in element.inputs]
        threshold = self._threshold(element)
        if element.name in self._repairable:
            repair_to_fire = {
                signals.repair(child): signals.fire(child)
                for child in element.inputs
                if child in self._repairable
            }
            return RepairableStaticGateBehavior(
                element.name,
                input_fire_actions=input_fires,
                repair_to_fire=repair_to_fire,
                threshold=threshold,
                fire_action=self._own_fire_action(element.name),
                repair_action=signals.repair(element.name),
            )
        return StaticGateBehavior(
            element.name,
            input_fire_actions=input_fires,
            threshold=threshold,
            fire_action=self._own_fire_action(element.name),
        )

    def _seq_gate_behavior(self, element: SeqGate) -> ElementBehavior:
        for child in element.inputs[1:]:
            if not isinstance(self.tree.element(child), BasicEvent):
                raise ConversionError(
                    f"SEQ gate {element.name!r}: input {child!r} is a gate; the "
                    "cold-spare emulation of SEQ supports basic events only"
                )
        return self._static_gate_behavior(element)

    def _pand_gate_behavior(self, element: PandGate) -> ElementBehavior:
        return PandGateBehavior(
            element.name,
            input_fire_actions=[signals.fire(child) for child in element.inputs],
            fire_action=self._own_fire_action(element.name),
        )

    def _spare_gate_behavior(self, element: SpareGate) -> ElementBehavior:
        competitor_claims: Dict[int, Sequence[str]] = {}
        for index, spare in enumerate(element.spares):
            competitors = [
                gate.name
                for gate in self.tree.spare_gates_using(spare)
                if gate.name != element.name and gate.name in self._relevant
            ]
            if competitors:
                competitor_claims[index] = [
                    signals.claim(spare, competitor) for competitor in competitors
                ]
        return SpareGateBehavior(
            element.name,
            primary_fire_action=signals.fire(element.primary),
            spare_fire_actions=[signals.fire(spare) for spare in element.spares],
            claim_actions=[signals.claim(spare, element.name) for spare in element.spares],
            competitor_claim_actions=competitor_claims,
            fire_action=self._own_fire_action(element.name),
            activation_action=self._resolved_activation(element.name),
        )

    def _auxiliary_behaviors(self) -> List[Tuple[str, Optional[str], ElementBehavior]]:
        behaviors: List[Tuple[str, Optional[str], ElementBehavior]] = []
        for dependent, triggers in sorted(self._needs_firing_aux.items()):
            if dependent not in self._relevant:
                continue
            behaviors.append(
                (
                    "firing_auxiliary",
                    dependent,
                    FiringAuxiliaryBehavior(
                        dependent,
                        isolated_fire_action=signals.fire_isolated(dependent),
                        trigger_fire_actions=[signals.fire(t) for t in dict.fromkeys(triggers)],
                        fire_action=signals.fire(dependent),
                    ),
                )
            )
        for target, inhibitors in sorted(self._needs_inhibition_aux.items()):
            if target not in self._relevant:
                continue
            behaviors.append(
                (
                    "inhibition_auxiliary",
                    target,
                    InhibitionAuxiliaryBehavior(
                        target,
                        isolated_fire_action=signals.fire_isolated(target),
                        inhibitor_fire_actions=[signals.fire(i) for i in dict.fromkeys(inhibitors)],
                        fire_action=signals.fire(target),
                    ),
                )
            )
        # Activation auxiliaries are registered lazily while resolving
        # activations; make sure every logic element has been resolved.
        for name in self._logic_elements():
            self._resolved_activation(name)
        for element, sources in sorted(self._activation_auxiliaries.items()):
            behaviors.append(
                (
                    "activation_auxiliary",
                    element,
                    ActivationAuxiliaryBehavior(
                        element,
                        source_actions=sources,
                        activation_action=signals.activate(element),
                    ),
                )
            )
        return behaviors

    def _monitor_behavior(self) -> Tuple[str, Optional[str], ElementBehavior]:
        top = self.tree.top
        repair_action = signals.repair(top) if top in self._repairable else None
        return (
            "monitor",
            top,
            MonitorBehavior(top, fire_action=signals.fire(top), repair_action=repair_action),
        )

    # ----------------------------------------------------------------- checks
    def _check_community(self, community: Community) -> None:
        """Every input action must be produced by exactly one member."""
        produced: Dict[str, str] = {}
        for member in community.members:
            for action in member.model.signature.outputs:
                if action in produced:
                    raise ConversionError(
                        f"action {action!r} is produced by both {produced[action]!r} "
                        f"and {member.name!r}"
                    )
                produced[action] = member.name
        for member in community.members:
            for action in member.model.signature.inputs:
                if action not in produced:
                    raise ConversionError(
                        f"member {member.name!r} listens to {action!r} but no member "
                        "produces it"
                    )


def convert(tree: DynamicFaultTree, options: Optional[ConversionOptions] = None) -> Community:
    """Convenience wrapper: convert ``tree`` into its I/O-IMC community."""
    return DftToIoimcConverter(tree, options).convert()
