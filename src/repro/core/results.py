"""Structured, JSON-serialisable analysis results.

The engine returns typed result objects instead of bare floats so callers (and
the CLI's ``--json`` mode) get values, bounds and provenance in one place:

* :class:`MeasureResult` — the evaluated values of one measure spec,
* :class:`ModelInfo` — the shape of the final aggregated model,
* :class:`StudyResult` — everything computed for one tree by one query,
* :class:`BatchRow` / :class:`BatchResult` — the corpus runner's output,
* :class:`SweepRow` / :class:`SweepResult` — the rate-sweep engine's output.

``to_dict`` produces plain JSON-safe structures; ``StudyResult.to_json`` is
what ``repro analyze --json`` prints (schema tag ``repro.study/1``).

Streaming sinks: :func:`write_batch_jsonl` emits one self-describing JSON
object per batch row (schema tag ``repro.batch/2``) followed by a final
aggregate record, so million-tree corpora never materialise all rows in
memory; :func:`read_batch_jsonl` reconstructs the equivalent
:class:`BatchResult` (``from_dict`` counterparts exist for every row-level
type, so the round-trip is loss-free at the JSON level).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import AnalysisError
from .aggregation import CompositionStatistics

STUDY_SCHEMA = "repro.study/1"
BATCH_SCHEMA = "repro.batch/1"
#: Per-row schema of the streaming JSONL batch sink.
BATCH_ROW_SCHEMA = "repro.batch/2"
#: ``repro.sweep/2`` adds the shared-structure kernel's per-row
#: instantiate/solve timing split and the worker-process metadata of
#: parallel sweeps; ``repro.sweep/3`` adds the optional per-row parametric
#: ``gradients`` payload (∂measure/∂parameter curves) of gradient-enabled
#: sweeps; rows without gradients are unchanged from ``repro.sweep/2``.
SWEEP_SCHEMA = "repro.sweep/3"
#: Design-space optimisation report of :func:`repro.core.optimize.optimize`:
#: the winning design, its unreliability bounds, Russian-doll module tables,
#: pruning statistics and (for CTMDP designs) the extracted argbest scheduler.
OPTIMIZE_SCHEMA = "repro.optimize/1"


@dataclass(frozen=True)
class MeasureResult:
    """The evaluated value(s) of one measure.

    Timed measures carry parallel ``times``/``values`` tuples (and, for bound
    measures, ``lower``/``upper`` envelopes); time-less measures (MTTF,
    steady-state unavailability) carry a single entry in ``values``.
    """

    kind: str
    times: Optional[Tuple[float, ...]] = None
    values: Optional[Tuple[float, ...]] = None
    lower: Optional[Tuple[float, ...]] = None
    upper: Optional[Tuple[float, ...]] = None
    steady_state: Optional[bool] = None
    #: Parameter name -> gradient curve (∂value/∂parameter at each time),
    #: carried by importance-ranking measures.
    gradients: Optional[Dict[str, Tuple[float, ...]]] = None
    #: Parameters ordered by decreasing |gradient| at the last mission time.
    ranking: Optional[Tuple[str, ...]] = None
    #: Set instead of values when the engine ran with ``on_error="record"``
    #: and this measure could not be evaluated (the others still were).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def value(self) -> float:
        """The single scalar value (errors if the measure is a curve)."""
        if self.error is not None:
            raise AnalysisError(f"measure {self.kind!r} failed: {self.error}")
        if self.values is None or len(self.values) != 1:
            raise AnalysisError(
                f"measure {self.kind!r} holds {0 if self.values is None else len(self.values)} "
                "values; use .values / .lower / .upper for curves"
            )
        return self.values[0]

    @property
    def bounds(self) -> Tuple[float, float]:
        """The single (lower, upper) pair (errors if the measure is a curve)."""
        if self.error is not None:
            raise AnalysisError(f"measure {self.kind!r} failed: {self.error}")
        if self.lower is None or self.upper is None or len(self.lower) != 1:
            raise AnalysisError(f"measure {self.kind!r} does not hold a single bound pair")
        return self.lower[0], self.upper[0]

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind}
        if self.error is not None:
            payload["error"] = self.error
        if self.steady_state is not None:
            payload["steady_state"] = self.steady_state
        if self.times is not None:
            payload["times"] = list(self.times)
        if self.values is not None:
            payload["values"] = list(self.values)
        if self.lower is not None:
            payload["lower"] = list(self.lower)
        if self.upper is not None:
            payload["upper"] = list(self.upper)
        if self.gradients is not None:
            payload["gradients"] = {
                name: list(curve) for name, curve in self.gradients.items()
            }
        if self.ranking is not None:
            payload["ranking"] = list(self.ranking)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MeasureResult":
        def floats(key: str) -> Optional[Tuple[float, ...]]:
            raw = payload.get(key)
            return None if raw is None else tuple(float(v) for v in raw)  # type: ignore[union-attr]

        raw_gradients = payload.get("gradients")
        raw_ranking = payload.get("ranking")
        return cls(
            kind=str(payload["kind"]),
            times=floats("times"),
            values=floats("values"),
            lower=floats("lower"),
            upper=floats("upper"),
            steady_state=payload.get("steady_state"),  # type: ignore[arg-type]
            gradients=(
                None
                if raw_gradients is None
                else {
                    str(name): tuple(float(v) for v in curve)
                    for name, curve in raw_gradients.items()  # type: ignore[union-attr]
                }
            ),
            ranking=(
                None
                if raw_ranking is None
                else tuple(str(name) for name in raw_ranking)  # type: ignore[union-attr]
            ),
            error=payload.get("error"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ModelInfo:
    """Shape of the final aggregated model a study evaluated its measures on."""

    kind: str  # "ctmc" or "ctmdp"
    states: int
    nondeterministic: bool
    final_ioimc_states: int
    final_ioimc_transitions: int
    community_size: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "states": self.states,
            "nondeterministic": self.nondeterministic,
            "final_ioimc_states": self.final_ioimc_states,
            "final_ioimc_transitions": self.final_ioimc_transitions,
            "community_size": self.community_size,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelInfo":
        return cls(
            kind=str(payload["kind"]),
            states=int(payload["states"]),  # type: ignore[arg-type]
            nondeterministic=bool(payload["nondeterministic"]),
            final_ioimc_states=int(payload["final_ioimc_states"]),  # type: ignore[arg-type]
            final_ioimc_transitions=int(payload["final_ioimc_transitions"]),  # type: ignore[arg-type]
            community_size=int(payload["community_size"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RestoredStatistics:
    """Composition statistics read back from serialised form.

    The JSON row of a batch run records the statistics *summary* (peaks and
    final sizes, no per-step records); this stand-in replays exactly that
    payload so a round-trip through the JSONL sink is loss-free at the JSON
    level.  It offers the same read attributes the summary payload carries.
    """

    payload: Dict[str, object]

    def to_dict(self, include_steps: bool = True) -> Dict[str, object]:
        data = dict(self.payload)
        if not include_steps:
            data.pop("steps", None)
        return data

    def __getattr__(self, name: str):
        # Never resolve private/dunder probes through the payload: pickle and
        # deepcopy ask for __setstate__/__deepcopy__ before `payload` exists,
        # which would otherwise recurse through this very method.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.payload[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass(frozen=True)
class StudyResult:
    """Everything one :class:`~repro.core.study.Study` computed for one query."""

    tree_name: str
    tree_summary: str
    measures: Tuple[MeasureResult, ...]
    model: ModelInfo
    statistics: Union[CompositionStatistics, RestoredStatistics]
    options: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    def __iter__(self) -> Iterator[MeasureResult]:
        return iter(self.measures)

    def __getitem__(self, kind: str) -> MeasureResult:
        """The first measure result of the given kind."""
        for measure in self.measures:
            if measure.kind == kind:
                return measure
        raise KeyError(kind)

    def __contains__(self, kind: str) -> bool:
        return any(measure.kind == kind for measure in self.measures)

    def to_dict(self, include_steps: bool = True) -> Dict[str, object]:
        return {
            "schema": STUDY_SCHEMA,
            "tree": {"name": self.tree_name, "summary": self.tree_summary},
            "options": dict(self.options),
            "model": self.model.to_dict(),
            "measures": [measure.to_dict() for measure in self.measures],
            "statistics": self.statistics.to_dict(include_steps=include_steps),
            "timings": dict(self.timings),
        }

    def to_json(self, indent: Optional[int] = 2, include_steps: bool = True) -> str:
        return json.dumps(self.to_dict(include_steps=include_steps), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StudyResult":
        tree = payload.get("tree", {})
        return cls(
            tree_name=str(tree.get("name", "")),  # type: ignore[union-attr]
            tree_summary=str(tree.get("summary", "")),  # type: ignore[union-attr]
            measures=tuple(
                MeasureResult.from_dict(measure)  # type: ignore[arg-type]
                for measure in payload.get("measures", ())
            ),
            model=ModelInfo.from_dict(payload["model"]),  # type: ignore[arg-type]
            statistics=RestoredStatistics(dict(payload.get("statistics", {}))),  # type: ignore[arg-type]
            options=dict(payload.get("options", {})),  # type: ignore[arg-type]
            timings=dict(payload.get("timings", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BatchRow:
    """One tree's outcome inside a batch run (a result or an error)."""

    name: str
    source: Optional[str]
    result: Optional[StudyResult]
    error: Optional[str]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "source": self.source,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
        }
        if self.result is not None:
            payload["result"] = self.result.to_dict(include_steps=False)
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BatchRow":
        result = payload.get("result")
        return cls(
            name=str(payload["name"]),
            source=payload.get("source"),  # type: ignore[arg-type]
            result=None if result is None else StudyResult.from_dict(result),  # type: ignore[arg-type]
            error=payload.get("error"),  # type: ignore[arg-type]
            wall_seconds=float(payload.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BatchResult:
    """Per-tree rows plus aggregate timing of one corpus run.

    A result whose rows were streamed to a JSONL sink carries ``rows=()``
    but keeps the aggregate counters in ``streamed_trees`` /
    ``streamed_failed`` / ``streamed_tree_seconds``, so ``len``,
    ``num_failed`` and ``summary()`` stay truthful either way.
    """

    rows: Tuple[BatchRow, ...]
    wall_seconds: float
    processes: int
    streamed_trees: Optional[int] = None
    streamed_failed: Optional[int] = None
    streamed_tree_seconds: Optional[float] = None

    def __iter__(self) -> Iterator[BatchRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        if not self.rows and self.streamed_trees is not None:
            return self.streamed_trees
        return len(self.rows)

    @property
    def num_failed(self) -> int:
        if not self.rows and self.streamed_failed is not None:
            return self.streamed_failed
        return sum(1 for row in self.rows if not row.ok)

    @property
    def num_ok(self) -> int:
        return len(self) - self.num_failed

    @property
    def tree_seconds(self) -> float:
        """Summed per-tree wall time (exceeds ``wall_seconds`` when parallel)."""
        if not self.rows and self.streamed_tree_seconds is not None:
            return self.streamed_tree_seconds
        return sum(row.wall_seconds for row in self.rows)

    def summary(self) -> str:
        count = len(self)
        mean = self.tree_seconds / count if count else 0.0
        return (
            f"{count} trees analysed ({self.num_failed} failed) in "
            f"{self.wall_seconds:.3f}s wall ({self.tree_seconds:.3f}s tree time, "
            f"{mean:.3f}s/tree, {self.processes} process"
            f"{'es' if self.processes != 1 else ''})"
        )

    def to_dict(self) -> Dict[str, object]:
        count = len(self)
        return {
            "schema": BATCH_SCHEMA,
            "rows": [row.to_dict() for row in self.rows],
            "aggregate": {
                "trees": count,
                "failed": self.num_failed,
                "wall_seconds": self.wall_seconds,
                "tree_seconds": self.tree_seconds,
                "mean_tree_seconds": (self.tree_seconds / count if count else 0.0),
                "processes": self.processes,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# streaming JSONL batch sink (schema repro.batch/2)
# ---------------------------------------------------------------------------

def batch_row_record(row: BatchRow) -> Dict[str, object]:
    """The self-describing JSONL record of one batch row."""
    payload: Dict[str, object] = {"schema": BATCH_ROW_SCHEMA, "kind": "row"}
    payload.update(row.to_dict())
    return payload


def batch_aggregate_record(
    rows: int, failed: int, wall_seconds: float, tree_seconds: float, processes: int
) -> Dict[str, object]:
    """The trailing aggregate record of a streamed batch run."""
    return {
        "schema": BATCH_ROW_SCHEMA,
        "kind": "aggregate",
        "trees": rows,
        "failed": failed,
        "wall_seconds": wall_seconds,
        "tree_seconds": tree_seconds,
        "processes": processes,
    }


def write_batch_jsonl(
    rows: Iterable[BatchRow], handle: IO[str], processes: int = 1
) -> BatchResult:
    """Stream ``rows`` to ``handle`` as JSONL and return the aggregate result.

    Each row is written (and flushed) as soon as it arrives, so the memory
    footprint is one row, not the corpus.  The returned :class:`BatchResult`
    carries **no rows** (``rows=()``) — the rows live in the sink; use
    :func:`read_batch_jsonl` to load them back — but it keeps the aggregate
    counters, so ``num_failed`` / ``summary()`` report the streamed corpus.
    """
    import time as _time

    count = 0
    failed = 0
    tree_seconds = 0.0
    start = _time.perf_counter()
    for row in rows:
        handle.write(json.dumps(batch_row_record(row)) + "\n")
        handle.flush()
        count += 1
        if not row.ok:
            failed += 1
        tree_seconds += row.wall_seconds
    wall = _time.perf_counter() - start
    handle.write(
        json.dumps(
            batch_aggregate_record(count, failed, wall, tree_seconds, processes)
        )
        + "\n"
    )
    handle.flush()
    return BatchResult(
        rows=(),
        wall_seconds=wall,
        processes=processes,
        streamed_trees=count,
        streamed_failed=failed,
        streamed_tree_seconds=tree_seconds,
    )


def read_batch_jsonl(handle: IO[str]) -> BatchResult:
    """Reconstruct a :class:`BatchResult` from a ``repro.batch/2`` JSONL sink."""
    rows: List[BatchRow] = []
    aggregate: Optional[Dict[str, object]] = None
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise AnalysisError(
                f"line {line_number} of the batch sink is not valid JSON: {error}"
            ) from error
        schema = record.get("schema")
        if schema != BATCH_ROW_SCHEMA:
            raise AnalysisError(
                f"line {line_number} of the batch sink has schema {schema!r}; "
                f"expected {BATCH_ROW_SCHEMA!r}"
            )
        kind = record.get("kind")
        if kind == "row":
            rows.append(BatchRow.from_dict(record))
        elif kind == "aggregate":
            aggregate = record
        else:
            raise AnalysisError(
                f"line {line_number} of the batch sink has unknown kind {kind!r}"
            )
    if aggregate is None:
        # Truncated sink (e.g. the run was interrupted): reconstruct the
        # aggregate from the rows that made it to disk.
        return BatchResult(
            rows=tuple(rows),
            wall_seconds=sum(row.wall_seconds for row in rows),
            processes=1,
        )
    return BatchResult(
        rows=tuple(rows),
        wall_seconds=float(aggregate.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
        processes=int(aggregate.get("processes", 1)),  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------------
# rate-sweep results (schema repro.sweep/3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepRow:
    """The measures of one parameter sample inside a rate sweep.

    ``instantiate_seconds`` / ``solve_seconds`` split the row's wall time
    into rate instantiation (CSR refill, plus a full CTMC build when a
    measure needs it) and the uniformisation solve — the per-sample numbers
    the shared-structure kernel optimises.
    """

    sample: Dict[str, float]
    measures: Tuple[MeasureResult, ...]
    wall_seconds: float
    error: Optional[str] = None
    instantiate_seconds: Optional[float] = None
    solve_seconds: Optional[float] = None
    #: Parameter name -> gradient curve (∂measure/∂parameter at the query's
    #: mission times), present only on gradient-enabled sweeps.
    gradients: Optional[Dict[str, Tuple[float, ...]]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, kind: str) -> MeasureResult:
        for measure in self.measures:
            if measure.kind == kind:
                return measure
        raise KeyError(kind)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "sample": dict(self.sample),
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
        }
        if self.instantiate_seconds is not None:
            payload["instantiate_seconds"] = self.instantiate_seconds
        if self.solve_seconds is not None:
            payload["solve_seconds"] = self.solve_seconds
        if self.measures:
            payload["measures"] = [measure.to_dict() for measure in self.measures]
        if self.gradients is not None:
            payload["gradients"] = {
                name: list(curve) for name, curve in self.gradients.items()
            }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepRow":
        def seconds(key: str) -> Optional[float]:
            raw = payload.get(key)
            return None if raw is None else float(raw)  # type: ignore[arg-type]

        raw_gradients = payload.get("gradients")
        return cls(
            sample={str(k): float(v) for k, v in payload.get("sample", {}).items()},  # type: ignore[union-attr]
            measures=tuple(
                MeasureResult.from_dict(measure)  # type: ignore[arg-type]
                for measure in payload.get("measures", ())
            ),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            error=payload.get("error"),  # type: ignore[arg-type]
            instantiate_seconds=seconds("instantiate_seconds"),
            solve_seconds=seconds("solve_seconds"),
            gradients=(
                None
                if raw_gradients is None
                else {
                    str(name): tuple(float(v) for v in curve)
                    for name, curve in raw_gradients.items()  # type: ignore[union-attr]
                }
            ),
        )


@dataclass(frozen=True)
class SweepResult:
    """Everything one rate sweep computed: shared pipeline work + all samples."""

    tree_name: str
    parameters: Tuple[str, ...]
    rows: Tuple[SweepRow, ...]
    model: ModelInfo
    options: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    #: Worker processes the samples ran on (1 = serial).
    processes: int = 1

    def __iter__(self) -> Iterator[SweepRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def num_ok(self) -> int:
        return sum(1 for row in self.rows if row.ok)

    @property
    def num_failed(self) -> int:
        return len(self.rows) - self.num_ok

    def values(self, kind: str) -> List[Tuple[Dict[str, float], MeasureResult]]:
        """(sample, measure) pairs of one measure kind over all ok rows."""
        return [(row.sample, row[kind]) for row in self.rows if row.ok]

    def summary(self) -> str:
        shared = self.timings.get("shared", 0.0)
        samples = self.timings.get("samples", 0.0)
        return (
            f"{len(self.rows)} samples over {', '.join(self.parameters)} "
            f"({self.num_failed} failed); shared pipeline {shared:.3f}s, "
            f"all samples {samples:.3f}s, {self.processes} process"
            f"{'es' if self.processes != 1 else ''}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SWEEP_SCHEMA,
            "tree": self.tree_name,
            "parameters": list(self.parameters),
            "options": dict(self.options),
            "model": self.model.to_dict(),
            "rows": [row.to_dict() for row in self.rows],
            "aggregate": {
                "samples": len(self.rows),
                "failed": self.num_failed,
                "processes": self.processes,
            },
            "timings": dict(self.timings),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# design-space optimisation results (repro.optimize/1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptimizeChoice:
    """One design choice's selected option in the winning design."""

    name: str
    option_index: int
    option: str
    cost: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "option_index": self.option_index,
            "option": self.option,
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "OptimizeChoice":
        return cls(
            name=str(payload["name"]),
            option_index=int(payload["option_index"]),  # type: ignore[arg-type]
            option=str(payload["option"]),
            cost=float(payload["cost"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ModuleTableInfo:
    """Summary of one Russian-doll module table (innermost-first records)."""

    module: str
    choices: Tuple[str, ...]
    records: int
    best_lower: float
    best_upper: float
    best_cost: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "choices": list(self.choices),
            "records": self.records,
            "best_lower": self.best_lower,
            "best_upper": self.best_upper,
            "best_cost": self.best_cost,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleTableInfo":
        return cls(
            module=str(payload["module"]),
            choices=tuple(str(name) for name in payload["choices"]),  # type: ignore[union-attr]
            records=int(payload["records"]),  # type: ignore[arg-type]
            best_lower=float(payload["best_lower"]),  # type: ignore[arg-type]
            best_upper=float(payload["best_upper"]),  # type: ignore[arg-type]
            best_cost=float(payload["best_cost"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SchedulerChoice:
    """One contested CTMDP state's argbest pick in a reported bound.

    ``agreement`` is the fraction of backward-sweep steps whose argbest
    matched the reported (deepest-iterate) ``successor``; 1.0 means the
    scheduler is time-abstract for this state.
    """

    state: int
    successor: int
    agreement: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "successor": self.successor,
            "agreement": self.agreement,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SchedulerChoice":
        return cls(
            state=int(payload["state"]),  # type: ignore[arg-type]
            successor=int(payload["successor"]),  # type: ignore[arg-type]
            agreement=float(payload["agreement"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class OptimizeResult:
    """Everything one design-space optimisation computed."""

    tree_name: str
    mission_time: float
    budget: Optional[float]
    exhaustive: bool
    best_design: Tuple[OptimizeChoice, ...]
    #: The objective of the winner: its worst-case unreliability at the
    #: mission time (== ``best_upper``; equals ``best_lower`` for CTMCs).
    best_value: float
    best_lower: float
    best_upper: float
    best_cost: float
    nondeterministic: bool
    #: Exact within-budget assignment count (None when the raw space is too
    #: large to count), the denominator of :attr:`pruning_ratio`.
    leaves_feasible: Optional[int]
    leaves_evaluated: int
    bound_evaluations: int
    pruned_by_cost: int
    pruned_by_table: int
    pruned_by_envelope: int
    module_tables: Tuple[ModuleTableInfo, ...] = ()
    #: Argbest scheduler of the winner's worst-case bound (CTMDP winners).
    scheduler: Tuple[SchedulerChoice, ...] = ()
    #: Argbest scheduler of the root pruning bound (the all-optimistic
    #: completion's lower envelope), when that completion is a CTMDP.
    pruning_scheduler: Tuple[SchedulerChoice, ...] = ()
    warnings: Tuple[str, ...] = ()
    cache: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def pruning_ratio(self) -> Optional[float]:
        """Evaluated leaves / feasible leaves (None if the count is unknown)."""
        if not self.leaves_feasible:
            return None
        return self.leaves_evaluated / self.leaves_feasible

    def summary(self) -> str:
        design = ", ".join(
            f"{choice.name}={choice.option}" for choice in self.best_design
        )
        ratio = self.pruning_ratio
        pruning = (
            "exhaustive"
            if self.exhaustive
            else f"{self.leaves_evaluated}/{self.leaves_feasible} leaves"
            + (f" ({ratio:.0%})" if ratio is not None else "")
        )
        return (
            f"best design [{design}] cost {self.best_cost:g}: "
            f"unreliability(t={self.mission_time:g}) = {self.best_value:.6f}; "
            f"{pruning}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": OPTIMIZE_SCHEMA,
            "tree": self.tree_name,
            "mission_time": self.mission_time,
            "budget": self.budget,
            "exhaustive": self.exhaustive,
            "best": {
                "design": [choice.to_dict() for choice in self.best_design],
                "value": self.best_value,
                "lower": self.best_lower,
                "upper": self.best_upper,
                "cost": self.best_cost,
                "nondeterministic": self.nondeterministic,
            },
            "search": {
                "leaves_feasible": self.leaves_feasible,
                "leaves_evaluated": self.leaves_evaluated,
                "bound_evaluations": self.bound_evaluations,
                "pruned_by_cost": self.pruned_by_cost,
                "pruned_by_table": self.pruned_by_table,
                "pruned_by_envelope": self.pruned_by_envelope,
                "pruning_ratio": self.pruning_ratio,
            },
            "module_tables": [table.to_dict() for table in self.module_tables],
            "scheduler": [choice.to_dict() for choice in self.scheduler],
            "pruning_scheduler": [
                choice.to_dict() for choice in self.pruning_scheduler
            ],
            "warnings": list(self.warnings),
            "cache": dict(self.cache),
            "timings": dict(self.timings),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "OptimizeResult":
        schema = payload.get("schema")
        if schema != OPTIMIZE_SCHEMA:
            raise AnalysisError(
                f"unsupported optimize schema {schema!r}; "
                f"expected {OPTIMIZE_SCHEMA!r}"
            )
        best = payload["best"]
        search = payload["search"]
        raw_budget = payload.get("budget")
        raw_feasible = search.get("leaves_feasible")  # type: ignore[union-attr]
        return cls(
            tree_name=str(payload["tree"]),
            mission_time=float(payload["mission_time"]),  # type: ignore[arg-type]
            budget=None if raw_budget is None else float(raw_budget),  # type: ignore[arg-type]
            exhaustive=bool(payload["exhaustive"]),
            best_design=tuple(
                OptimizeChoice.from_dict(entry) for entry in best["design"]  # type: ignore[index]
            ),
            best_value=float(best["value"]),  # type: ignore[index]
            best_lower=float(best["lower"]),  # type: ignore[index]
            best_upper=float(best["upper"]),  # type: ignore[index]
            best_cost=float(best["cost"]),  # type: ignore[index]
            nondeterministic=bool(best["nondeterministic"]),  # type: ignore[index]
            leaves_feasible=None if raw_feasible is None else int(raw_feasible),
            leaves_evaluated=int(search["leaves_evaluated"]),  # type: ignore[index]
            bound_evaluations=int(search["bound_evaluations"]),  # type: ignore[index]
            pruned_by_cost=int(search["pruned_by_cost"]),  # type: ignore[index]
            pruned_by_table=int(search["pruned_by_table"]),  # type: ignore[index]
            pruned_by_envelope=int(search["pruned_by_envelope"]),  # type: ignore[index]
            module_tables=tuple(
                ModuleTableInfo.from_dict(entry)
                for entry in payload.get("module_tables", [])  # type: ignore[union-attr]
            ),
            scheduler=tuple(
                SchedulerChoice.from_dict(entry)
                for entry in payload.get("scheduler", [])  # type: ignore[union-attr]
            ),
            pruning_scheduler=tuple(
                SchedulerChoice.from_dict(entry)
                for entry in payload.get("pruning_scheduler", [])  # type: ignore[union-attr]
            ),
            warnings=tuple(str(entry) for entry in payload.get("warnings", [])),  # type: ignore[union-attr]
            cache={
                str(key): int(value)  # type: ignore[arg-type]
                for key, value in payload.get("cache", {}).items()  # type: ignore[union-attr]
            },
            timings={
                str(key): float(value)  # type: ignore[arg-type]
                for key, value in payload.get("timings", {}).items()  # type: ignore[union-attr]
            },
        )
