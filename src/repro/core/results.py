"""Structured, JSON-serialisable analysis results.

The engine returns typed result objects instead of bare floats so callers (and
the CLI's ``--json`` mode) get values, bounds and provenance in one place:

* :class:`MeasureResult` — the evaluated values of one measure spec,
* :class:`ModelInfo` — the shape of the final aggregated model,
* :class:`StudyResult` — everything computed for one tree by one query,
* :class:`BatchRow` / :class:`BatchResult` — the corpus runner's output.

``to_dict`` produces plain JSON-safe structures; ``StudyResult.to_json`` is
what ``repro analyze --json`` prints (schema tag ``repro.study/1``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..errors import AnalysisError
from .aggregation import CompositionStatistics

STUDY_SCHEMA = "repro.study/1"
BATCH_SCHEMA = "repro.batch/1"


@dataclass(frozen=True)
class MeasureResult:
    """The evaluated value(s) of one measure.

    Timed measures carry parallel ``times``/``values`` tuples (and, for bound
    measures, ``lower``/``upper`` envelopes); time-less measures (MTTF,
    steady-state unavailability) carry a single entry in ``values``.
    """

    kind: str
    times: Optional[Tuple[float, ...]] = None
    values: Optional[Tuple[float, ...]] = None
    lower: Optional[Tuple[float, ...]] = None
    upper: Optional[Tuple[float, ...]] = None
    steady_state: Optional[bool] = None
    #: Set instead of values when the engine ran with ``on_error="record"``
    #: and this measure could not be evaluated (the others still were).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def value(self) -> float:
        """The single scalar value (errors if the measure is a curve)."""
        if self.error is not None:
            raise AnalysisError(f"measure {self.kind!r} failed: {self.error}")
        if self.values is None or len(self.values) != 1:
            raise AnalysisError(
                f"measure {self.kind!r} holds {0 if self.values is None else len(self.values)} "
                "values; use .values / .lower / .upper for curves"
            )
        return self.values[0]

    @property
    def bounds(self) -> Tuple[float, float]:
        """The single (lower, upper) pair (errors if the measure is a curve)."""
        if self.error is not None:
            raise AnalysisError(f"measure {self.kind!r} failed: {self.error}")
        if self.lower is None or self.upper is None or len(self.lower) != 1:
            raise AnalysisError(f"measure {self.kind!r} does not hold a single bound pair")
        return self.lower[0], self.upper[0]

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind}
        if self.error is not None:
            payload["error"] = self.error
        if self.steady_state is not None:
            payload["steady_state"] = self.steady_state
        if self.times is not None:
            payload["times"] = list(self.times)
        if self.values is not None:
            payload["values"] = list(self.values)
        if self.lower is not None:
            payload["lower"] = list(self.lower)
        if self.upper is not None:
            payload["upper"] = list(self.upper)
        return payload


@dataclass(frozen=True)
class ModelInfo:
    """Shape of the final aggregated model a study evaluated its measures on."""

    kind: str  # "ctmc" or "ctmdp"
    states: int
    nondeterministic: bool
    final_ioimc_states: int
    final_ioimc_transitions: int
    community_size: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "states": self.states,
            "nondeterministic": self.nondeterministic,
            "final_ioimc_states": self.final_ioimc_states,
            "final_ioimc_transitions": self.final_ioimc_transitions,
            "community_size": self.community_size,
        }


@dataclass(frozen=True)
class StudyResult:
    """Everything one :class:`~repro.core.study.Study` computed for one query."""

    tree_name: str
    tree_summary: str
    measures: Tuple[MeasureResult, ...]
    model: ModelInfo
    statistics: CompositionStatistics
    options: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    def __iter__(self) -> Iterator[MeasureResult]:
        return iter(self.measures)

    def __getitem__(self, kind: str) -> MeasureResult:
        """The first measure result of the given kind."""
        for measure in self.measures:
            if measure.kind == kind:
                return measure
        raise KeyError(kind)

    def __contains__(self, kind: str) -> bool:
        return any(measure.kind == kind for measure in self.measures)

    def to_dict(self, include_steps: bool = True) -> Dict[str, object]:
        return {
            "schema": STUDY_SCHEMA,
            "tree": {"name": self.tree_name, "summary": self.tree_summary},
            "options": dict(self.options),
            "model": self.model.to_dict(),
            "measures": [measure.to_dict() for measure in self.measures],
            "statistics": self.statistics.to_dict(include_steps=include_steps),
            "timings": dict(self.timings),
        }

    def to_json(self, indent: Optional[int] = 2, include_steps: bool = True) -> str:
        return json.dumps(self.to_dict(include_steps=include_steps), indent=indent)


@dataclass(frozen=True)
class BatchRow:
    """One tree's outcome inside a batch run (a result or an error)."""

    name: str
    source: Optional[str]
    result: Optional[StudyResult]
    error: Optional[str]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "source": self.source,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
        }
        if self.result is not None:
            payload["result"] = self.result.to_dict(include_steps=False)
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass(frozen=True)
class BatchResult:
    """Per-tree rows plus aggregate timing of one corpus run."""

    rows: Tuple[BatchRow, ...]
    wall_seconds: float
    processes: int

    def __iter__(self) -> Iterator[BatchRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def num_ok(self) -> int:
        return sum(1 for row in self.rows if row.ok)

    @property
    def num_failed(self) -> int:
        return len(self.rows) - self.num_ok

    @property
    def tree_seconds(self) -> float:
        """Summed per-tree wall time (exceeds ``wall_seconds`` when parallel)."""
        return sum(row.wall_seconds for row in self.rows)

    def summary(self) -> str:
        mean = self.tree_seconds / len(self.rows) if self.rows else 0.0
        return (
            f"{len(self.rows)} trees analysed ({self.num_failed} failed) in "
            f"{self.wall_seconds:.3f}s wall ({self.tree_seconds:.3f}s tree time, "
            f"{mean:.3f}s/tree, {self.processes} process"
            f"{'es' if self.processes != 1 else ''})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": BATCH_SCHEMA,
            "rows": [row.to_dict() for row in self.rows],
            "aggregate": {
                "trees": len(self.rows),
                "failed": self.num_failed,
                "wall_seconds": self.wall_seconds,
                "tree_seconds": self.tree_seconds,
                "mean_tree_seconds": (
                    self.tree_seconds / len(self.rows) if self.rows else 0.0
                ),
                "processes": self.processes,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
