"""The paper's primary contribution: compositional DFT analysis via I/O-IMC.

* :mod:`repro.core.semantics` — elementary I/O-IMC behaviour of every element,
* :mod:`repro.core.conversion` — DFT to I/O-IMC community (signal wiring,
  activation contexts, auxiliaries),
* :mod:`repro.core.aggregation` — the compositional aggregation engine,
* :mod:`repro.core.measures` — declarative measure specs and queries,
* :mod:`repro.core.study` — the query engine (:class:`Study`, :func:`evaluate`,
  :class:`BatchStudy`) with vectorised multi-time evaluation,
* :mod:`repro.core.results` — structured, JSON-serialisable results,
* :mod:`repro.core.analysis` — the legacy one-call-per-measure facade,
* :mod:`repro.core.nondeterminism` — detection of inherent non-determinism.
"""

from . import signals
from .aggregation import (
    CompositionStatistics,
    CompositionStep,
    CompositionalAggregationOptions,
    CompositionalAggregator,
    compositional_aggregate,
)
from .analysis import (
    AnalysisOptions,
    CompositionalAnalyzer,
    mean_time_to_failure,
    unavailability,
    unreliability,
    unreliability_bounds,
)
from .conversion import (
    Community,
    CommunityMember,
    ConversionOptions,
    DftToIoimcConverter,
    convert,
)
from .measures import (
    MTTF,
    ImportanceRanking,
    Measure,
    Query,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
    objective_measure,
)
from .nondeterminism import NondeterminismReport, detect_nondeterminism
from .optimize import (
    DesignProblem,
    RepairChoice,
    SpareCountChoice,
    apply_design,
    monotonicity_warnings,
    optimize,
)
from .planning import AggregationPlan, PlanNode, SharedActionIndex, build_plan
from .results import (
    BatchResult,
    BatchRow,
    MeasureResult,
    ModelInfo,
    ModuleTableInfo,
    OptimizeChoice,
    OptimizeResult,
    SchedulerChoice,
    StudyResult,
    SweepResult,
    SweepRow,
    read_batch_jsonl,
    write_batch_jsonl,
)
from .study import BatchStudy, Study, StudyOptions, evaluate, evaluate_query_on_model
from .sweep import (
    RateSweep,
    SweepStudy,
    substitute_parameters,
    with_rate_parameters,
)
from .sweep import sweep as run_sweep
# Rebind the package attribute to the submodule: exporting the convenience
# function must not shadow `repro.core.sweep` (the module) for attribute
# access like `repro.core.sweep.SweepStudy`.
from . import sweep


__all__ = [
    "AggregationPlan",
    "AnalysisOptions",
    "BatchResult",
    "BatchRow",
    "BatchStudy",
    "Community",
    "CommunityMember",
    "CompositionStatistics",
    "CompositionStep",
    "CompositionalAggregationOptions",
    "CompositionalAggregator",
    "CompositionalAnalyzer",
    "ConversionOptions",
    "DesignProblem",
    "DftToIoimcConverter",
    "ImportanceRanking",
    "MTTF",
    "Measure",
    "MeasureResult",
    "ModelInfo",
    "ModuleTableInfo",
    "NondeterminismReport",
    "OptimizeChoice",
    "OptimizeResult",
    "PlanNode",
    "Query",
    "RepairChoice",
    "SchedulerChoice",
    "SharedActionIndex",
    "SpareCountChoice",
    "Study",
    "StudyOptions",
    "StudyResult",
    "Unavailability",
    "Unreliability",
    "UnreliabilityBounds",
    "apply_design",
    "build_plan",
    "compositional_aggregate",
    "convert",
    "detect_nondeterminism",
    "evaluate",
    "evaluate_query_on_model",
    "monotonicity_warnings",
    "objective_measure",
    "optimize",
    "with_rate_parameters",
    "run_sweep",
    "sweep",
    "substitute_parameters",
    "write_batch_jsonl",
    "read_batch_jsonl",
    "SweepRow",
    "SweepResult",
    "SweepStudy",
    "RateSweep",
    "mean_time_to_failure",
    "signals",
    "unavailability",
    "unreliability",
    "unreliability_bounds",
]
