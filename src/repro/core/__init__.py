"""The paper's primary contribution: compositional DFT analysis via I/O-IMC.

* :mod:`repro.core.semantics` — elementary I/O-IMC behaviour of every element,
* :mod:`repro.core.conversion` — DFT to I/O-IMC community (signal wiring,
  activation contexts, auxiliaries),
* :mod:`repro.core.aggregation` — the compositional aggregation engine,
* :mod:`repro.core.analysis` — unreliability / unavailability / MTTF,
* :mod:`repro.core.nondeterminism` — detection of inherent non-determinism.
"""

from . import signals
from .aggregation import (
    CompositionStatistics,
    CompositionStep,
    CompositionalAggregationOptions,
    CompositionalAggregator,
    compositional_aggregate,
)
from .analysis import (
    AnalysisOptions,
    CompositionalAnalyzer,
    mean_time_to_failure,
    unavailability,
    unreliability,
    unreliability_bounds,
)
from .conversion import (
    Community,
    CommunityMember,
    ConversionOptions,
    DftToIoimcConverter,
    convert,
)
from .nondeterminism import NondeterminismReport, detect_nondeterminism
from .planning import AggregationPlan, PlanNode, SharedActionIndex, build_plan

__all__ = [
    "AggregationPlan",
    "AnalysisOptions",
    "Community",
    "CommunityMember",
    "CompositionStatistics",
    "CompositionStep",
    "CompositionalAggregationOptions",
    "CompositionalAggregator",
    "CompositionalAnalyzer",
    "ConversionOptions",
    "DftToIoimcConverter",
    "NondeterminismReport",
    "PlanNode",
    "SharedActionIndex",
    "build_plan",
    "compositional_aggregate",
    "convert",
    "detect_nondeterminism",
    "mean_time_to_failure",
    "signals",
    "unavailability",
    "unreliability",
    "unreliability_bounds",
]
