"""Top-level DFT analysis API (Step 6 of the paper's algorithm).

:class:`CompositionalAnalyzer` drives the complete pipeline

    DFT  ->  I/O-IMC community  ->  compositional aggregation  ->  CTMC/CTMDP
         ->  unreliability / unavailability / MTTF

and caches the intermediate artefacts so that several measures can be computed
from one aggregation run.  Thin convenience functions (:func:`unreliability`,
:func:`unavailability`, :func:`mean_time_to_failure`) cover the common cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..ctmc import CTMC, CTMDP, ctmc_from_ioimc, ctmdp_from_ioimc
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError, NondeterminismError
from ..ioimc.model import IOIMC
from ..ioimc.reduction import AggregationOptions
from . import signals
from .aggregation import (
    CompositionStatistics,
    CompositionalAggregationOptions,
    CompositionalAggregator,
)
from .conversion import Community, ConversionOptions, DftToIoimcConverter


@dataclass
class AnalysisOptions:
    """Options of the full compositional analysis pipeline."""

    conversion: ConversionOptions = field(default_factory=ConversionOptions)
    aggregation: AggregationOptions = field(default_factory=AggregationOptions)
    ordering: str = "linked"
    #: Fuse maximal progress into composition (see the aggregation engine).
    fuse: bool = True

    def composition_options(self) -> CompositionalAggregationOptions:
        return CompositionalAggregationOptions(
            ordering=self.ordering,
            aggregation=self.aggregation,
            fuse=self.fuse,
        )


@dataclass
class AnalysisResult:
    """A single numeric result together with provenance information."""

    value: float
    measure: str
    time: Optional[float]
    statistics: CompositionStatistics

    def __float__(self) -> float:
        return self.value


class CompositionalAnalyzer:
    """Analyses a DFT with the compositional I/O-IMC pipeline."""

    def __init__(self, tree: DynamicFaultTree, options: Optional[AnalysisOptions] = None):
        self.tree = tree
        self.options = options or AnalysisOptions()
        self._community: Optional[Community] = None
        self._final: Optional[IOIMC] = None
        self._statistics: Optional[CompositionStatistics] = None
        self._markov: Optional[Union[CTMC, CTMDP]] = None

    # ------------------------------------------------------------- pipeline
    @property
    def community(self) -> Community:
        """The I/O-IMC community of the fault tree (cached)."""
        if self._community is None:
            converter = DftToIoimcConverter(self.tree, self.options.conversion)
            self._community = converter.convert()
        return self._community

    @property
    def final_ioimc(self) -> IOIMC:
        """The single aggregated I/O-IMC of the whole system (cached)."""
        if self._final is None:
            aggregator = CompositionalAggregator(
                self.community.models(),
                self.options.composition_options(),
                community=self.community,
            )
            self._final, self._statistics = aggregator.run()
        return self._final

    @property
    def statistics(self) -> CompositionStatistics:
        """Composition statistics (peak intermediate sizes, per-step records)."""
        self.final_ioimc
        assert self._statistics is not None
        return self._statistics

    @property
    def markov_model(self) -> Union[CTMC, CTMDP]:
        """The final CTMC, or CTMDP if non-determinism remains (cached)."""
        if self._markov is None:
            final = self.final_ioimc
            try:
                self._markov = ctmc_from_ioimc(final)
            except NondeterminismError:
                self._markov = ctmdp_from_ioimc(final)
        return self._markov

    @property
    def is_nondeterministic(self) -> bool:
        """True iff the aggregated model is a CTMDP rather than a CTMC."""
        return isinstance(self.markov_model, CTMDP)

    # ------------------------------------------------------------- measures
    def unreliability(self, time: float) -> float:
        """Probability that the system has failed by ``time``.

        Raises :class:`~repro.errors.AnalysisError` if the model is
        non-deterministic; use :meth:`unreliability_bounds` in that case.
        """
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError(
                "the model is non-deterministic (CTMDP); use unreliability_bounds() "
                "to obtain the interval of possible values"
            )
        return model.probability_of_label(signals.FAILED_LABEL, time)

    def unreliability_bounds(self, time: float) -> Tuple[float, float]:
        """(min, max) probability of system failure by ``time``.

        For a deterministic model both bounds coincide with the unreliability.
        """
        model = self.markov_model
        if isinstance(model, CTMC):
            value = model.probability_of_label(signals.FAILED_LABEL, time)
            return value, value
        return model.reachability_bounds(signals.FAILED_LABEL, time)

    def unreliability_curve(self, times: Sequence[float]) -> np.ndarray:
        """Unreliability at each of the given mission times."""
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError(
                "the model is non-deterministic (CTMDP); evaluate bounds per time point"
            )
        return np.array(
            [model.probability_of_label(signals.FAILED_LABEL, float(t)) for t in times]
        )

    def unavailability(self, time: Optional[float] = None) -> float:
        """Unavailability of a repairable system.

        With ``time`` given this is the probability of being failed at that
        instant; without it, the steady-state (long-run) unavailability.
        """
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError("unavailability of non-deterministic models is not supported")
        if time is not None:
            return model.probability_of_label(signals.FAILED_LABEL, time)
        return model.steady_state_probability_of_label(signals.FAILED_LABEL)

    def mean_time_to_failure(self) -> float:
        """Expected time until the system first fails."""
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError("MTTF of non-deterministic models is not supported")
        return model.mean_time_to_label(signals.FAILED_LABEL)

    # ------------------------------------------------------------- reporting
    def report(self, time: float = 1.0) -> str:
        """Human-readable multi-line report used by the examples."""
        lines = [
            f"Fault tree       : {self.tree.summary()}",
            f"Community        : {self.community.summary()}",
            f"Aggregation      : {self.statistics.summary()}",
            f"Final model      : {self.final_ioimc.num_states} states, "
            f"{self.final_ioimc.num_transitions} transitions",
        ]
        if self.is_nondeterministic:
            low, high = self.unreliability_bounds(time)
            lines.append(
                f"Unreliability(t={time:g}) in [{low:.6f}, {high:.6f}] (non-deterministic model)"
            )
        else:
            lines.append(f"Unreliability(t={time:g}) = {self.unreliability(time):.6f}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# convenience functions
# ---------------------------------------------------------------------------

def unreliability(
    tree: DynamicFaultTree, time: float, options: Optional[AnalysisOptions] = None
) -> float:
    """Unreliability of ``tree`` at mission ``time`` via the compositional pipeline."""
    return CompositionalAnalyzer(tree, options).unreliability(time)


def unreliability_bounds(
    tree: DynamicFaultTree, time: float, options: Optional[AnalysisOptions] = None
) -> Tuple[float, float]:
    """Unreliability bounds (identical for deterministic models)."""
    return CompositionalAnalyzer(tree, options).unreliability_bounds(time)


def unavailability(
    tree: DynamicFaultTree,
    time: Optional[float] = None,
    options: Optional[AnalysisOptions] = None,
) -> float:
    """(Steady-state) unavailability of a repairable fault tree."""
    return CompositionalAnalyzer(tree, options).unavailability(time)


def mean_time_to_failure(
    tree: DynamicFaultTree, options: Optional[AnalysisOptions] = None
) -> float:
    """Mean time to failure of ``tree``."""
    return CompositionalAnalyzer(tree, options).mean_time_to_failure()
