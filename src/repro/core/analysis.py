"""Legacy single-measure analysis facade (Step 6 of the paper's algorithm).

.. note::
   This module is the **legacy** surface kept for backwards compatibility.
   New code should use the declarative query engine instead::

       from repro import MTTF, Query, Study, Unreliability, evaluate

       result = evaluate(tree, Unreliability([0.5, 1.0]) + MTTF())

   See :mod:`repro.core.measures`, :mod:`repro.core.results` and
   :mod:`repro.core.study`.

:class:`CompositionalAnalyzer` is a thin wrapper over
:class:`~repro.core.study.Study`: the pipeline (conversion, aggregation,
Markov model extraction) lives in the engine and is shared; only the
one-number-per-call measure methods live here.  ``AnalysisOptions`` is an
alias of :class:`~repro.core.study.StudyOptions`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..ctmc import CTMC, CTMDP
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError
from ..ioimc.model import IOIMC
from . import signals
from .aggregation import CompositionStatistics
from .conversion import Community
from .study import Study, StudyOptions

#: Legacy alias — the engine's options object under its historical name.
AnalysisOptions = StudyOptions


class CompositionalAnalyzer:
    """Analyses a DFT with the compositional I/O-IMC pipeline (legacy facade)."""

    def __init__(self, tree: DynamicFaultTree, options: Optional[StudyOptions] = None):
        self._study = Study(tree, options)

    @property
    def tree(self) -> DynamicFaultTree:
        return self._study.tree

    @property
    def options(self) -> StudyOptions:
        return self._study.options

    @property
    def study(self) -> Study:
        """The underlying query engine (shares all cached artefacts)."""
        return self._study

    # ------------------------------------------------------------- pipeline
    @property
    def community(self) -> Community:
        """The I/O-IMC community of the fault tree (cached)."""
        return self._study.community

    @property
    def final_ioimc(self) -> IOIMC:
        """The single aggregated I/O-IMC of the whole system (cached)."""
        return self._study.final_ioimc

    @property
    def statistics(self) -> CompositionStatistics:
        """Composition statistics (peak intermediate sizes, per-step records)."""
        return self._study.statistics

    @property
    def markov_model(self) -> Union[CTMC, CTMDP]:
        """The final CTMC, or CTMDP if non-determinism remains (cached)."""
        return self._study.markov_model

    @property
    def is_nondeterministic(self) -> bool:
        """True iff the aggregated model is a CTMDP rather than a CTMC."""
        return self._study.is_nondeterministic

    # ------------------------------------------------------------- measures
    def unreliability(self, time: float) -> float:
        """Probability that the system has failed by ``time``.

        Raises :class:`~repro.errors.AnalysisError` if the model is
        non-deterministic; use :meth:`unreliability_bounds` in that case.
        """
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError(
                "the model is non-deterministic (CTMDP); use unreliability_bounds() "
                "to obtain the interval of possible values"
            )
        return model.probability_of_label(
            signals.FAILED_LABEL, time, tolerance=self.options.tolerance
        )

    def unreliability_bounds(self, time: float) -> Tuple[float, float]:
        """(min, max) probability of system failure by ``time``.

        For a deterministic model both bounds coincide with the unreliability.
        """
        model = self.markov_model
        if isinstance(model, CTMC):
            value = model.probability_of_label(
                signals.FAILED_LABEL, time, tolerance=self.options.tolerance
            )
            return value, value
        return model.reachability_bounds(
            signals.FAILED_LABEL, time, tolerance=self.options.tolerance
        )

    def unreliability_curve(self, times: Sequence[float]) -> np.ndarray:
        """Unreliability at each of the given mission times (one shared sweep)."""
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError(
                "the model is non-deterministic (CTMDP); use UnreliabilityBounds "
                "or reachability_bounds_curve for the envelope"
            )
        return model.probability_of_label_curve(
            signals.FAILED_LABEL, times, tolerance=self.options.tolerance
        )

    def unavailability(self, time: Optional[float] = None) -> float:
        """Unavailability of a repairable system.

        With ``time`` given this is the probability of being failed at that
        instant; without it, the steady-state (long-run) unavailability.
        """
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError("unavailability of non-deterministic models is not supported")
        if time is not None:
            return model.probability_of_label(
                signals.FAILED_LABEL, time, tolerance=self.options.tolerance
            )
        return model.steady_state_probability_of_label(signals.FAILED_LABEL)

    def mean_time_to_failure(self) -> float:
        """Expected time until the system first fails."""
        model = self.markov_model
        if isinstance(model, CTMDP):
            raise AnalysisError("MTTF of non-deterministic models is not supported")
        return model.mean_time_to_label(signals.FAILED_LABEL)

    # ------------------------------------------------------------- reporting
    def report(self, time: float = 1.0) -> str:
        """Human-readable multi-line report used by the examples."""
        lines = [
            f"Fault tree       : {self.tree.summary()}",
            f"Community        : {self.community.summary()}",
            f"Aggregation      : {self.statistics.summary()}",
            f"Final model      : {self.final_ioimc.num_states} states, "
            f"{self.final_ioimc.num_transitions} transitions",
        ]
        if self.is_nondeterministic:
            low, high = self.unreliability_bounds(time)
            lines.append(
                f"Unreliability(t={time:g}) in [{low:.6f}, {high:.6f}] (non-deterministic model)"
            )
        else:
            lines.append(f"Unreliability(t={time:g}) = {self.unreliability(time):.6f}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# convenience functions
# ---------------------------------------------------------------------------

def unreliability(
    tree: DynamicFaultTree, time: float, options: Optional[StudyOptions] = None
) -> float:
    """Unreliability of ``tree`` at mission ``time`` via the compositional pipeline."""
    return CompositionalAnalyzer(tree, options).unreliability(time)


def unreliability_bounds(
    tree: DynamicFaultTree, time: float, options: Optional[StudyOptions] = None
) -> Tuple[float, float]:
    """Unreliability bounds (identical for deterministic models)."""
    return CompositionalAnalyzer(tree, options).unreliability_bounds(time)


def unavailability(
    tree: DynamicFaultTree,
    time: Optional[float] = None,
    options: Optional[StudyOptions] = None,
) -> float:
    """(Steady-state) unavailability of a repairable fault tree."""
    return CompositionalAnalyzer(tree, options).unavailability(time)


def mean_time_to_failure(
    tree: DynamicFaultTree, options: Optional[StudyOptions] = None
) -> float:
    """Mean time to failure of ``tree``."""
    return CompositionalAnalyzer(tree, options).mean_time_to_failure()
