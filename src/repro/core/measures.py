"""Declarative reliability measures and queries.

The analysis engine (:mod:`repro.core.study`) is driven by *measure specs*
rather than one method call per number: a :class:`Query` bundles everything
that should be computed from one fault tree — unreliability at many mission
times, bounds for non-deterministic models, (steady-state) unavailability,
the mean time to failure — so the engine can plan shared work (one conversion
and aggregation per tree, one vectorised uniformisation sweep over *all*
requested mission times).

Measures are immutable values: they compare by content, serialise to plain
dictionaries (for the JSON CLI output and batch provenance) and compose with
``+`` into queries::

    query = Unreliability([0.5, 1.0, 2.0]) + MTTF()
    result = evaluate(tree, query)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..ctmc.transient import validate_times
from ..errors import AnalysisError

TimesLike = Union[float, int, Sequence[float]]


def _normalise_times(times: TimesLike) -> Tuple[float, ...]:
    if isinstance(times, (int, float)):
        times = (times,)
    normalised = tuple(validate_times(times))
    if not normalised:
        raise AnalysisError("a timed measure needs at least one mission time")
    return normalised


@dataclass(frozen=True)
class Measure:
    """Base class of all measure specs (a single requested quantity)."""

    kind: ClassVar[str] = "measure"

    def transient_times(self) -> Tuple[float, ...]:
        """Mission times whose transient state distribution this measure needs."""
        return ()

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind}

    def __add__(self, other: Union["Measure", "Query"]) -> "Query":
        return Query(self, other)


@dataclass(frozen=True)
class _TimedMeasure(Measure):
    """Shared shape of measures evaluated at a tuple of mission times."""

    times: TimesLike = (1.0,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", _normalise_times(self.times))

    def transient_times(self) -> Tuple[float, ...]:
        return self.times  # type: ignore[return-value]

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "times": list(self.times)}  # type: ignore[arg-type]


@dataclass(frozen=True)
class Unreliability(_TimedMeasure):
    """Probability that the system has failed by each mission time."""

    kind: ClassVar[str] = "unreliability"


@dataclass(frozen=True)
class UnreliabilityBounds(_TimedMeasure):
    """(min, max) failure probability over all resolutions of non-determinism.

    On a deterministic model both bounds coincide with the unreliability, so
    this spec is safe to request regardless of whether the aggregated model
    turns out to be a CTMC or a CTMDP.
    """

    kind: ClassVar[str] = "unreliability_bounds"


@dataclass(frozen=True)
class Unavailability(Measure):
    """Unavailability of a repairable system.

    With a ``time`` this is the probability of being failed at that instant;
    without one it is the steady-state (long-run) unavailability.
    """

    kind: ClassVar[str] = "unavailability"
    time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time is not None:
            object.__setattr__(self, "time", validate_times([self.time])[0])

    @property
    def steady_state(self) -> bool:
        return self.time is None

    def transient_times(self) -> Tuple[float, ...]:
        return () if self.time is None else (self.time,)

    def to_dict(self) -> Dict[str, object]:
        if self.time is None:
            return {"kind": self.kind, "steady_state": True}
        return {"kind": self.kind, "steady_state": False, "time": self.time}


@dataclass(frozen=True)
class ImportanceRanking(_TimedMeasure):
    """Birnbaum-style importance of every rate parameter at each mission time.

    The engine differentiates the (bound on the) unreliability with respect to
    every declared rate parameter — exactly, via the parametric-rate linear
    forms, not by finite differences — and ranks the parameters by the
    magnitude of their gradient at the last mission time.  ``direction``
    selects which bound of a non-deterministic model is differentiated
    ("max" = worst-case unreliability, "min" = best case); deterministic
    models give the same answer either way.
    """

    kind: ClassVar[str] = "importance_ranking"
    direction: str = "max"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.direction not in ("max", "min"):
            raise AnalysisError(
                f"importance direction must be 'max' or 'min', not {self.direction!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["direction"] = self.direction
        return payload


def objective_measure(nondeterministic: bool, times: TimesLike) -> Measure:
    """The measure a design-space objective should request at ``times``.

    A deterministic (CTMC) candidate design is scored by its plain
    unreliability curve; a candidate whose aggregated model keeps
    non-determinism is scored by its worst-case bound, so the optimiser
    (:mod:`repro.core.optimize`) compares every design by the same
    pessimistic yardstick.
    """
    if nondeterministic:
        return UnreliabilityBounds(times)
    return Unreliability(times)


@dataclass(frozen=True)
class MTTF(Measure):
    """Mean time to failure (expected time until the system first fails)."""

    kind: ClassVar[str] = "mttf"


class Query:
    """An ordered bundle of measures evaluated together on one fault tree.

    Accepts measures (and nested queries, which are flattened) either as
    positional arguments or as a single iterable::

        Query(Unreliability([1.0]), MTTF())
        Query([Unreliability([1.0]), MTTF()])
        Query(m for m in measures)
    """

    __slots__ = ("_measures",)

    def __init__(self, *measures: Union[Measure, "Query", Iterable[Measure]]):
        if (
            len(measures) == 1
            and not isinstance(measures[0], (Measure, Query, str))
            and isinstance(measures[0], Iterable)
        ):
            measures = tuple(measures[0])
        flat: List[Measure] = []
        for entry in measures:
            if isinstance(entry, Query):
                flat.extend(entry.measures)
            elif isinstance(entry, Measure):
                flat.append(entry)
            else:
                raise AnalysisError(f"not a measure: {entry!r}")
        if not flat:
            raise AnalysisError("a query needs at least one measure")
        self._measures = tuple(flat)

    @property
    def measures(self) -> Tuple[Measure, ...]:
        return self._measures

    def transient_times(self) -> Tuple[float, ...]:
        """Sorted union of all mission times needing a transient solution."""
        times = {time for measure in self._measures for time in measure.transient_times()}
        return tuple(sorted(times))

    def to_dict(self) -> Dict[str, object]:
        return {"measures": [measure.to_dict() for measure in self._measures]}

    def __iter__(self) -> Iterator[Measure]:
        return iter(self._measures)

    def __len__(self) -> int:
        return len(self._measures)

    def __add__(self, other: Union[Measure, "Query"]) -> "Query":
        return Query(self, other)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Query) and self._measures == other._measures

    def __hash__(self) -> int:
        return hash(self._measures)

    def __repr__(self) -> str:
        inner = ", ".join(repr(measure) for measure in self._measures)
        return f"Query({inner})"
