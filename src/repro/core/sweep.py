"""Rate sweeps that reuse the aggregated I/O-IMC across all samples.

Sweeping failure *rates* with the plain :class:`~repro.core.study.Study`
re-runs the whole pipeline — conversion, composition, weak-bisimulation
aggregation — once per sample, even though the aggregated model's *structure*
does not depend on the rate values: rates only relabel Markovian transitions.
This module exploits that invariance:

1. declare named rate parameters on the tree (``param`` in Galileo,
   :meth:`~repro.dft.tree.DynamicFaultTree.declare_parameter` /
   :meth:`~repro.dft.builder.FaultTreeBuilder.parameter` in code);
2. the conversion emits :class:`~repro.ioimc.rates.ParametricRate` forms, the
   aggregation carries them through (structurally keyed rate classes keep the
   quotient valid for **every** positive assignment), and the final model is
   captured as a rate-independent skeleton
   (:class:`~repro.ctmc.builders.CtmcSkeleton` /
   :class:`~repro.ctmc.builders.CtmdpSkeleton`);
3. :class:`RateSweep` evaluation instantiates only the CTMC/CTMDP generator
   per sample — and, on the CTMC path, not even that: a per-process
   :class:`~repro.ctmc.kernel.TransientKernel` keeps the uniformised CSR
   pattern, Poisson term cache and matvec workspace alive across samples, so
   each sample refills rate data in place and runs the solve with zero
   sparse-structure allocations.  Samples are embarrassingly parallel:
   ``run(..., processes=N)`` fans them out over a chunked, windowed process
   pool (one kernel per worker) and yields rows in sample order,
   bit-identical to a serial run.

The cost drops from ``O(samples x pipeline)`` to
``O(pipeline + samples x uniformisation)`` — the same amortisation the query
engine already applies to mission times — with the per-sample constant cut
to the refill + solve itself.

Helpers for trees without declared parameters:

* :func:`with_rate_parameters` attaches parameters to named basic events
  (nominal = the event's current rate), so any existing tree can be swept;
* :func:`substitute_parameters` bakes a sample into a plain tree — the naive
  full-pipeline reference path used by the differential tests and benchmarks.
"""

from __future__ import annotations

import itertools
import math
import time as _time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from ..service.store import SkeletonStore

from ..ctmc.builders import (
    CtmcSkeleton,
    CtmdpSkeleton,
    ctmc_skeleton_from_ioimc,
    ctmdp_skeleton_from_ioimc,
)
from ..ctmc.kernel import CsrBuffer, CtmdpKernel, TransientKernel
from ..dft.elements import BasicEvent
from ..dft.hashing import (
    canonical_assignment,
    canonical_parameter_map,
    translate_sample,
)
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError, FaultTreeError, NondeterminismError, ReproError
from . import signals
from .measures import Query
from .results import ModelInfo, SweepResult, SweepRow
from .study import (
    GradientValues,
    QueryLike,
    Study,
    StudyOptions,
    _as_query,
    _degenerate_envelope,
    _query_bound_times,
    _query_wants_gradients,
    evaluate_query_on_model,
    gradient_values_from_kernel,
    measures_from_curves,
    query_needs_model,
)

Sample = Dict[str, float]
AxisLike = Union[float, int, Sequence[float]]


def _check_sample_value(parameter: str, value: object) -> float:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise AnalysisError(
            f"sample value for parameter {parameter!r} is not a number: {value!r}"
        ) from None
    if not (number > 0.0 and math.isfinite(number)):
        raise AnalysisError(
            f"rate-sweep samples must be positive finite rates; parameter "
            f"{parameter!r} got {number}"
        )
    return number


@dataclass(frozen=True)
class RateSweep:
    """A declarative rate sweep: parameter samples x a query of measures.

    Build one from an explicit sample list or from a grid::

        RateSweep(Unreliability([1.0]), samples=[{"lam": 0.1}, {"lam": 0.2}])
        RateSweep.grid(Unreliability([1.0]) + MTTF(), lam=np.linspace(0.1, 2, 50))

    Every sample maps *declared* parameter names to positive finite rates;
    parameters a sample leaves out keep their nominal value.
    """

    query: Query
    samples: Tuple[Sample, ...]

    def __init__(self, query: QueryLike, samples: Iterable[Mapping[str, float]]):
        object.__setattr__(self, "query", _as_query(query))
        normalised: List[Sample] = []
        for sample in samples:
            if not sample:
                raise AnalysisError("a rate-sweep sample must assign at least one parameter")
            normalised.append(
                {
                    str(parameter): _check_sample_value(parameter, value)
                    for parameter, value in sample.items()
                }
            )
        if not normalised:
            raise AnalysisError("a rate sweep needs at least one sample")
        object.__setattr__(self, "samples", tuple(normalised))

    @classmethod
    def grid(cls, query: QueryLike, **axes: AxisLike) -> "RateSweep":
        """The cartesian product of per-parameter value axes."""
        if not axes:
            raise AnalysisError("a sweep grid needs at least one parameter axis")
        names = list(axes)
        columns: List[List[float]] = []
        for name in names:
            axis = axes[name]
            if isinstance(axis, (int, float)):
                axis = (axis,)
            values = [float(value) for value in axis]
            if not values:
                raise AnalysisError(f"sweep axis {name!r} has no values")
            columns.append(values)
        samples = [
            dict(zip(names, combination))
            for combination in itertools.product(*columns)
        ]
        return cls(query, samples)

    @property
    def parameters(self) -> Tuple[str, ...]:
        """Sorted union of the parameters any sample assigns."""
        return tuple(sorted({name for sample in self.samples for name in sample}))

    def __len__(self) -> int:
        return len(self.samples)


# ---------------------------------------------------------------------------
# per-sample evaluation (shared by the serial path and pool workers)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _SweepPlan:
    """Everything a worker needs to evaluate samples, picklable and rate-free.

    One plan is built per run and shipped once per worker process (via the
    pool initializer), so per-chunk pickling moves only the sample dicts.
    """

    skeleton: Union[CtmcSkeleton, CtmdpSkeleton]
    declared: Dict[str, float]
    query: Query
    tolerance: float
    use_kernel: bool = True
    #: One uniformisation rate for the whole grid (>= every sample's natural
    #: maximal exit rate): the kernel then reuses one Poisson term table
    #: across all samples instead of rebuilding it per sample.
    shared_rate: Optional[float] = None
    #: For cached (canonically parametrised) skeletons: user parameter name
    #: -> the canonical per-event parameters it fans out to.  ``None`` means
    #: the samples already name the skeleton's own parameters.
    parameter_map: Optional[Dict[str, Tuple[str, ...]]] = None
    #: Attach per-row parametric gradients (∂measure/∂parameter via the CTMDP
    #: kernel's analytic forward pass) to every row.
    gradients: bool = False

    def assignment_of(self, sample: Mapping[str, float]) -> Dict[str, float]:
        """The skeleton-level assignment of one user sample.

        Unswept declared parameters keep their nominal value, so every
        parametric form is totally assigned.
        """
        assignment = dict(self.declared)
        if self.parameter_map is None:
            assignment.update(sample)
        else:
            assignment.update(translate_sample(sample, self.parameter_map))
        return assignment


class _SampleEvaluator:
    """Per-process sweep state: the plan plus lazily built solver kernels.

    The kernels allocate the shared CSR pattern once (on construction) and
    every :meth:`evaluate` call only refills rate data — the whole point of
    the shared-structure engine.  CTMC skeletons run on a
    :class:`TransientKernel`, CTMDP skeletons on a :class:`CtmdpKernel`;
    ``use_kernel=False`` falls back to a full per-sample instantiation.
    A gradient-enabled plan additionally keeps a parametric CTMDP kernel
    (the skeleton's own, or the choice-free envelope of a CTMC skeleton)
    for the analytic ∂measure/∂parameter sweeps.
    """

    __slots__ = ("plan", "_kernel", "_ctmdp_kernel", "_gradient_kernel", "_needs_model")

    def __init__(self, plan: _SweepPlan):
        self.plan = plan
        self._kernel: Optional[TransientKernel] = (
            TransientKernel(plan.skeleton)
            if plan.use_kernel and isinstance(plan.skeleton, CtmcSkeleton)
            else None
        )
        self._ctmdp_kernel: Optional[CtmdpKernel] = (
            plan.skeleton.ctmdp_kernel()
            if plan.use_kernel and isinstance(plan.skeleton, CtmdpSkeleton)
            else None
        )
        self._gradient_kernel: Optional[CtmdpKernel] = None
        if plan.gradients or _query_wants_gradients(plan.query):
            if self._ctmdp_kernel is not None:
                self._gradient_kernel = self._ctmdp_kernel
            elif isinstance(plan.skeleton, CtmdpSkeleton):
                self._gradient_kernel = plan.skeleton.ctmdp_kernel()
            else:
                self._gradient_kernel = _degenerate_envelope(
                    plan.skeleton
                ).ctmdp_kernel()
        self._needs_model = query_needs_model(plan.query)

    @property
    def kernel(self) -> Optional[TransientKernel]:
        return self._kernel

    def _load_gradient_kernel(
        self, assignment: Dict[str, float], already_loaded: bool
    ) -> CtmdpKernel:
        assert self._gradient_kernel is not None
        if not already_loaded:
            self._gradient_kernel.load(
                assignment, rate_floor=self.plan.shared_rate
            )
        return self._gradient_kernel

    def evaluate(self, sample: Mapping[str, float]) -> SweepRow:
        """One sample's row; any pipeline error becomes the row's error."""
        plan = self.plan
        assignment = plan.assignment_of(sample)
        start = _time.perf_counter()
        instantiate_seconds = 0.0
        # The gradient kernel is the CTMDP kernel itself when the measure path
        # already runs on it, so one refill serves both sweeps.
        gradient_loaded = False
        try:
            gradient_values: Optional[GradientValues] = None
            if self._kernel is not None:
                self._kernel.load(assignment, rate_floor=plan.shared_rate)
                instantiate_seconds = _time.perf_counter() - start
                times = plan.query.transient_times()
                curve = self._kernel.probability_of_label_curve(
                    signals.FAILED_LABEL, times, plan.tolerance
                )
                point_values = dict(zip(times, (float(value) for value in curve)))
                bound_curves = {
                    time: (value, value) for time, value in point_values.items()
                }
                model = None
                if self._needs_model:
                    model_start = _time.perf_counter()
                    model = plan.skeleton.instantiate(assignment)
                    instantiate_seconds += _time.perf_counter() - model_start
                if self._gradient_kernel is not None and _query_wants_gradients(
                    plan.query
                ):
                    gradient_values = gradient_values_from_kernel(
                        self._load_gradient_kernel(assignment, gradient_loaded),
                        plan.query,
                        plan.tolerance,
                    )
                    gradient_loaded = True
                measures = measures_from_curves(
                    model,
                    plan.query,
                    point_values,
                    bound_curves,
                    on_error="record",
                    gradient_values=gradient_values,
                )
            elif self._ctmdp_kernel is not None:
                self._ctmdp_kernel.load(assignment, rate_floor=plan.shared_rate)
                instantiate_seconds = _time.perf_counter() - start
                gradient_loaded = self._gradient_kernel is self._ctmdp_kernel
                bound_times = _query_bound_times(plan.query)
                bound_curves = {}
                if bound_times:
                    lower, upper = self._ctmdp_kernel.reachability_bounds_curve(
                        signals.FAILED_LABEL, bound_times, tolerance=plan.tolerance
                    )
                    bound_curves = {
                        time: (float(low), float(high))
                        for time, low, high in zip(bound_times, lower, upper)
                    }
                if self._gradient_kernel is not None and _query_wants_gradients(
                    plan.query
                ):
                    gradient_values = gradient_values_from_kernel(
                        self._load_gradient_kernel(assignment, gradient_loaded),
                        plan.query,
                        plan.tolerance,
                    )
                    gradient_loaded = True
                measures = measures_from_curves(
                    None,
                    plan.query,
                    {},
                    bound_curves,
                    on_error="record",
                    nondeterministic=True,
                    gradient_values=gradient_values,
                )
            else:
                model = plan.skeleton.instantiate(assignment)
                instantiate_seconds = _time.perf_counter() - start
                if self._gradient_kernel is not None and _query_wants_gradients(
                    plan.query
                ):
                    gradient_values = gradient_values_from_kernel(
                        self._load_gradient_kernel(assignment, gradient_loaded),
                        plan.query,
                        plan.tolerance,
                    )
                    gradient_loaded = True
                measures = evaluate_query_on_model(
                    model,
                    plan.query,
                    tolerance=plan.tolerance,
                    on_error="record",
                    gradient_values=gradient_values,
                )
            row_gradients: Optional[Dict[str, Tuple[float, ...]]] = None
            if plan.gradients and self._gradient_kernel is not None:
                times = plan.query.transient_times()
                kernel = self._load_gradient_kernel(assignment, gradient_loaded)
                _curve, grads = kernel.gradient_curve(
                    signals.FAILED_LABEL,
                    times,
                    maximize=True,
                    tolerance=plan.tolerance,
                )
                row_gradients = {
                    name: tuple(float(value) for value in grads[:, j])
                    for j, name in enumerate(kernel.parameters)
                }
            wall = _time.perf_counter() - start
            return SweepRow(
                sample=dict(sample),
                measures=measures,
                wall_seconds=wall,
                instantiate_seconds=instantiate_seconds,
                solve_seconds=wall - instantiate_seconds,
                gradients=row_gradients,
            )
        except ReproError as error:
            return SweepRow(
                sample=dict(sample),
                measures=(),
                wall_seconds=_time.perf_counter() - start,
                error=str(error),
            )


_WORKER_EVALUATOR: Optional[_SampleEvaluator] = None


def _init_sweep_worker(plan: _SweepPlan) -> None:
    """Pool initializer: build the per-process evaluator (and its kernel) once."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = _SampleEvaluator(plan)


def _evaluate_sweep_chunk(samples: Sequence[Sample]) -> List[SweepRow]:
    """Worker entry point: evaluate one chunk on the process-local kernel."""
    assert _WORKER_EVALUATOR is not None
    return [_WORKER_EVALUATOR.evaluate(sample) for sample in samples]


def _scan_shared_rate(plan: _SweepPlan, samples: Sequence[Sample]) -> Optional[float]:
    """The largest natural uniformisation rate over the whole sample grid.

    Scans every sample's maximal exit rate on one scratch CSR buffer (rate
    evaluation only — no stepping matrix is built).  Samples whose rates fail
    to evaluate are skipped here; their rows fail identically with or without
    a shared rate, so the scan never changes which rows error.  Works for
    both skeleton kinds: the buffer only reads states, edges and parameters.
    """
    buffer = CsrBuffer(plan.skeleton)
    shared: Optional[float] = None
    for sample in samples:
        try:
            rate = buffer.max_exit_rate(plan.assignment_of(sample))
        except ReproError:
            continue
        if shared is None or rate > shared:
            shared = rate
    return shared


def _resolve_sweep_workers(processes: Optional[int], num_samples: int) -> int:
    workers = 1 if processes is None else int(processes)
    if workers < 1:
        raise AnalysisError(f"processes must be >= 1, got {processes}")
    return workers if num_samples > 1 else 1


def iter_sweep_rows(
    plan: _SweepPlan,
    samples: Sequence[Sample],
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Iterator[SweepRow]:
    """Yield one row per sample, in sample order, optionally process-parallel.

    Mirrors :meth:`repro.core.study.BatchStudy.iter_rows`: with
    ``processes > 1`` the samples are cut into chunks and a bounded window of
    chunks is in flight at any time, so huge sweeps neither materialise all
    rows nor flood the executor.  Error rows keep their sample's position.
    Every path (serial and all worker counts) runs the identical per-sample
    code, so parallel rows are bit-identical to serial ones.
    """
    workers = _resolve_sweep_workers(processes, len(samples))
    if workers == 1:
        evaluator = _SampleEvaluator(plan)
        for sample in samples:
            yield evaluator.evaluate(sample)
        return
    if chunk_size is None:
        # Aim for ~4 chunks per worker so stragglers rebalance, but never
        # sub-single-sample chunks.
        chunk = max(1, min(64, len(samples) // (workers * 4) or 1))
    else:
        chunk = int(chunk_size)
        if chunk < 1:
            raise AnalysisError(f"chunk_size must be >= 1, got {chunk_size}")
    max_pending = workers + 2
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_sweep_worker, initargs=(plan,)
    ) as pool:
        pending: Deque = deque()
        next_index = 0
        while next_index < len(samples) or pending:
            while next_index < len(samples) and len(pending) < max_pending:
                batch = list(samples[next_index : next_index + chunk])
                pending.append(pool.submit(_evaluate_sweep_chunk, batch))
                next_index += len(batch)
            for row in pending.popleft().result():
                yield row


class SweepStudy:
    """Plans a rate sweep: one pipeline run, one skeleton, N instantiations.

    With a ``skeleton_cache`` (a :class:`~repro.service.store.SkeletonStore`)
    even that one pipeline run is amortised across processes and sessions: a
    hit on the tree's structural hash loads the canonically parametrised
    skeleton from disk and the sweep's samples are translated onto the
    canonical parameters — conversion, aggregation and minimisation never
    run at all.
    """

    def __init__(
        self,
        tree: DynamicFaultTree,
        options: Optional[StudyOptions] = None,
        skeleton_cache: Optional["SkeletonStore"] = None,
    ):
        self.tree = tree
        self.study = Study(tree, options)
        self.skeleton_cache = skeleton_cache
        self._skeleton: Optional[Union[CtmcSkeleton, CtmdpSkeleton]] = None
        self._skeleton_seconds = 0.0
        self._cache_entry = None
        self._cache_hit = False
        self._cache_seconds = 0.0

    # ------------------------------------------------------------- skeleton
    @property
    def skeleton(self) -> Union[CtmcSkeleton, CtmdpSkeleton]:
        """The rate-independent final-model structure (cached)."""
        if self.skeleton_cache is not None:
            return self._cached_entry().skeleton
        if self._skeleton is None:
            final = self.study.final_ioimc
            start = _time.perf_counter()
            try:
                self._skeleton = ctmc_skeleton_from_ioimc(final)
            except NondeterminismError:
                self._skeleton = ctmdp_skeleton_from_ioimc(final)
            self._skeleton_seconds = _time.perf_counter() - start
        return self._skeleton

    def _cached_entry(self):
        if self._cache_entry is None:
            assert self.skeleton_cache is not None
            start = _time.perf_counter()
            self._cache_entry, self._cache_hit = self.skeleton_cache.get_or_build(
                self.tree, self.study.options
            )
            self._cache_seconds = _time.perf_counter() - start
        return self._cache_entry

    # ------------------------------------------------------------------ run
    def run(
        self,
        sweep: RateSweep,
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
        use_kernel: bool = True,
        share_uniformisation: bool = False,
        gradients: bool = False,
    ) -> SweepResult:
        """Evaluate the sweep; sample failures become per-row errors.

        With ``processes > 1`` the samples fan out over a chunked process
        pool (each worker builds one shared-structure kernel and keeps it
        across its chunks); rows always come back in sample order and are
        bit-identical to a serial run.  ``use_kernel=False`` forces the
        legacy per-sample full instantiation — kept for differential tests
        and the benchmark's kernel-vs-legacy split.

        ``share_uniformisation=True`` scans the grid for the largest natural
        uniformisation rate and pins that one Lambda for every sample, so the
        kernel's Poisson term table is computed once for the whole grid
        instead of once per sample (the solve itself is unchanged:
        uniformisation is exact for any Lambda >= the maximal exit rate, and
        the differential tests pin agreement with per-sample rates to 1e-9).
        Rows stay bit-identical between serial and parallel runs either way.

        ``gradients=True`` attaches analytic ∂measure/∂parameter curves to
        every row (:attr:`~repro.core.results.SweepRow.gradients`), computed
        by the parametric CTMDP kernel's forward pass at the query's mission
        times — differentiating the worst-case (max) bound on
        non-deterministic models, the plain unreliability on deterministic
        ones.
        """
        declared = self.tree.parameters
        unknown = [name for name in sweep.parameters if name not in declared]
        if unknown:
            raise AnalysisError(
                "the sweep varies parameters the tree does not declare: "
                + ", ".join(sorted(unknown))
                + " (declare them with 'param <name> = <value>;' or "
                "DynamicFaultTree.declare_parameter)"
            )
        skeleton = self.skeleton
        if self.skeleton_cache is not None:
            # The cached skeleton speaks canonical per-event parameters;
            # translate the user's declared parameters onto them.
            plan_declared = canonical_assignment(self.tree)
            parameter_map: Optional[Dict[str, Tuple[str, ...]]] = (
                canonical_parameter_map(self.tree)
            )
        else:
            plan_declared = dict(declared)
            parameter_map = None
        if gradients and self.skeleton_cache is not None:
            raise AnalysisError(
                "per-row gradients on a cached skeleton would rank the store's "
                "canonical per-event parameters, not the tree's; run the sweep "
                "without a skeleton cache to get gradients"
            )
        workers = _resolve_sweep_workers(processes, len(sweep.samples))
        plan = _SweepPlan(
            skeleton=skeleton,
            declared=plan_declared,
            query=sweep.query,
            tolerance=self.study.options.tolerance,
            use_kernel=use_kernel,
            parameter_map=parameter_map,
            gradients=gradients,
        )
        if share_uniformisation and use_kernel:
            shared_rate = _scan_shared_rate(plan, sweep.samples)
            if shared_rate is not None:
                plan = replace(plan, shared_rate=shared_rate)
        samples_start = _time.perf_counter()
        rows = list(iter_sweep_rows(plan, sweep.samples, workers, chunk_size))
        samples_seconds = _time.perf_counter() - samples_start

        study_timings = self.study.timings
        shared = (
            study_timings.get("conversion", 0.0)
            + study_timings.get("aggregation", 0.0)
            + self._skeleton_seconds
            + self._cache_seconds
        )
        timings = {
            "conversion": study_timings.get("conversion", 0.0),
            "aggregation": study_timings.get("aggregation", 0.0),
            "skeleton": self._skeleton_seconds,
            "shared": shared,
            "samples": samples_seconds,
            "instantiate": sum(row.instantiate_seconds or 0.0 for row in rows),
            "solve": sum(row.solve_seconds or 0.0 for row in rows),
            "total": shared + samples_seconds,
        }
        if self.skeleton_cache is not None:
            timings["cache"] = self._cache_seconds
        options = self.study.options.to_dict()
        if self.skeleton_cache is not None:
            options["skeleton_cache"] = "hit" if self._cache_hit else "miss"
        if plan.shared_rate is not None:
            options["shared_uniformisation_rate"] = plan.shared_rate
        if gradients:
            options["gradients"] = True
        return SweepResult(
            tree_name=self.tree.name,
            parameters=sweep.parameters,
            rows=tuple(rows),
            model=self._model_info(skeleton),
            options=options,
            timings=timings,
            processes=workers,
        )

    def _model_info(self, skeleton: Union[CtmcSkeleton, CtmdpSkeleton]) -> ModelInfo:
        if self.skeleton_cache is not None:
            return self._cached_entry().model
        final = self.study.final_ioimc
        nondeterministic = isinstance(skeleton, CtmdpSkeleton)
        return ModelInfo(
            kind="ctmdp" if nondeterministic else "ctmc",
            states=skeleton.num_states,
            nondeterministic=nondeterministic,
            final_ioimc_states=final.num_states,
            final_ioimc_transitions=final.num_transitions,
            community_size=len(self.study.community.members),
        )


def sweep(
    tree: DynamicFaultTree,
    rate_sweep: RateSweep,
    options: Optional[StudyOptions] = None,
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
    skeleton_cache: Optional["SkeletonStore"] = None,
    share_uniformisation: bool = False,
    gradients: bool = False,
) -> SweepResult:
    """Evaluate ``rate_sweep`` on ``tree`` with a fresh :class:`SweepStudy`."""
    return SweepStudy(tree, options, skeleton_cache=skeleton_cache).run(
        rate_sweep,
        processes=processes,
        chunk_size=chunk_size,
        share_uniformisation=share_uniformisation,
        gradients=gradients,
    )


# ---------------------------------------------------------------------------
# tree helpers (parametrising existing trees / the naive reference path)
# ---------------------------------------------------------------------------

def _rebuild(tree: DynamicFaultTree, name: Optional[str] = None) -> DynamicFaultTree:
    clone = DynamicFaultTree(name if name is not None else tree.name)
    return clone


def with_rate_parameters(
    tree: DynamicFaultTree,
    events: Optional[Union[Iterable[str], Mapping[str, str]]] = None,
) -> DynamicFaultTree:
    """A copy of ``tree`` whose failure rates are bound to named parameters.

    ``events`` may be an iterable of basic-event names (each gets a parameter
    named after the event), a mapping ``event -> parameter`` (events sharing a
    parameter must agree on the nominal rate), or ``None`` for *all* basic
    events.  Already-declared parameters of ``tree`` are preserved.
    """
    if events is None:
        mapping: Dict[str, str] = {
            event.name: event.name for event in tree.basic_events()
        }
    elif isinstance(events, Mapping):
        mapping = dict(events)
    else:
        mapping = {name: name for name in events}

    clone = _rebuild(tree)
    for parameter, nominal in tree.parameters.items():
        clone.declare_parameter(parameter, nominal)
    declared = clone.parameters
    for event_name, parameter in mapping.items():
        element = tree.element(event_name)
        if not isinstance(element, BasicEvent):
            raise FaultTreeError(
                f"cannot attach a rate parameter to {event_name!r}: not a basic event"
            )
        if parameter in declared:
            if declared[parameter] != element.failure_rate:
                raise FaultTreeError(
                    f"events sharing parameter {parameter!r} disagree on the "
                    f"nominal rate ({declared[parameter]} vs {element.failure_rate})"
                )
        else:
            clone.declare_parameter(parameter, element.failure_rate)
            declared[parameter] = element.failure_rate

    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent) and name in mapping:
            element = replace(element, failure_rate_param=mapping[name])
        clone.add(element)
    clone.set_top(tree.top)
    return clone


def substitute_parameters(
    tree: DynamicFaultTree, assignment: Mapping[str, float]
) -> DynamicFaultTree:
    """A plain (parameter-free) copy of ``tree`` with sampled rates baked in.

    This is the naive full-pipeline path a sweep amortises away; the
    differential tests evaluate it per sample and compare against the sweep
    engine's rows.
    """
    declared = tree.parameters
    unknown = [name for name in assignment if name not in declared]
    if unknown:
        raise FaultTreeError(
            "cannot substitute undeclared parameters: " + ", ".join(sorted(unknown))
        )
    values = dict(declared)
    for parameter, value in assignment.items():
        values[parameter] = _check_sample_value(parameter, value)

    clone = _rebuild(tree)
    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent) and element.is_parametric:
            failure = element.failure_rate
            repair = element.repair_rate
            if element.failure_rate_param is not None:
                failure = values[element.failure_rate_param]
            if element.repair_rate_param is not None:
                repair = values[element.repair_rate_param]
            element = replace(
                element,
                failure_rate=failure,
                repair_rate=repair,
                failure_rate_param=None,
                repair_rate_param=None,
            )
        clone.add(element)
    clone.set_top(tree.top)
    return clone
