"""Naming conventions for the signals wiring a DFT's I/O-IMC community.

Each DFT element communicates with the rest of the community through a small
set of actions (Section 4 of the paper):

* ``fail_X``   — the *firing* signal ``f_X``: element ``X`` announces its failure;
* ``failstar_X`` — ``f*_X``: the failure of ``X`` "in isolation", used when a
  firing auxiliary (functional dependency) or inhibition auxiliary intercepts
  the element's own failure before re-broadcasting it as ``fail_X``;
* ``act_X``    — the *activation* signal ``a_X``: element ``X`` switches from
  dormant to active mode;
* ``claim_S_by_G`` — ``a_{S,G}``: spare gate ``G`` claims (and thereby
  activates) spare ``S``; other gates sharing ``S`` listen to it to learn that
  the spare is taken, and the activation auxiliary of ``S`` merges all claim
  signals into ``act_S``;
* ``rep_X``    — the repair signal ``r_X`` of the repairable extension
  (Section 7.2).

Keeping the naming in one module guarantees the conversion, the aggregation
engine and the tests all agree on the wiring.
"""

from __future__ import annotations


def fire(name: str) -> str:
    """The firing (failure) signal ``f_X`` of element ``name``."""
    return f"fail_{name}"


def fire_isolated(name: str) -> str:
    """The isolated firing signal ``f*_X`` (input to a firing/inhibition auxiliary)."""
    return f"failstar_{name}"


def activate(name: str) -> str:
    """The activation signal ``a_X`` of element ``name``."""
    return f"act_{name}"


def claim(spare: str, gate: str) -> str:
    """The claim/activation signal ``a_{S,G}``: ``gate`` takes ``spare``."""
    return f"claim_{spare}_by_{gate}"


def repair(name: str) -> str:
    """The repair signal ``r_X`` of element ``name``."""
    return f"rep_{name}"


def repair_isolated(name: str) -> str:
    """The isolated repair signal (only used by repairable auxiliaries)."""
    return f"repstar_{name}"


#: Label carried by monitor states in which the system has failed.
FAILED_LABEL = "failed"
