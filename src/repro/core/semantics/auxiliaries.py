"""Auxiliary I/O-IMC models: activation auxiliary, inhibition auxiliary, monitor.

* The **activation auxiliary** (AA, Section 4 of the paper) merges the claim
  signals ``a_{S,G}`` of every spare gate sharing a spare ``S`` (or, more
  generally, all activation sources of an element) into the single activation
  signal ``a_S`` the element listens to.  It is "essentially an OR gate" over
  activation signals.
* The **inhibition auxiliary** (IA, Section 7.1, Figure 12) intercepts the
  isolated failure signal of an element ``B``: if an inhibitor fails first,
  ``B``'s failure is never broadcast; otherwise the auxiliary forwards it.
  Mutual exclusivity of two failure modes is obtained with two symmetric IAs.
* The **monitor** is an analysis-level element: it listens to the firing (and,
  for repairable systems, repair) signal of the top event and labels its
  states, so that after hiding every signal the final closed model still knows
  which states are system-failure states.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior
from ..signals import FAILED_LABEL


class ActivationAuxiliaryBehavior(ElementBehavior):
    """Merges several activation sources into a single activation signal."""

    def __init__(self, element_name: str, source_actions: Sequence[str], activation_action: str):
        if not source_actions:
            raise ValueError(
                f"activation auxiliary of {element_name!r} needs at least one source"
            )
        self.element_name = element_name
        self.name = f"AA({element_name})"
        self.source_actions = tuple(source_actions)
        self.activation_action = activation_action

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset(self.source_actions),
            outputs=frozenset({self.activation_action}),
        )

    def initial_state(self) -> str:
        return "waiting"

    def on_input(self, state: str, action: str) -> str:
        if state == "waiting":
            return "activating"
        return state

    def urgent(self, state: str) -> Iterable[Tuple[str, str]]:
        if state == "activating":
            return ((self.activation_action, "activated"),)
        return ()

    def markovian(self, state: str) -> Iterable[Tuple[float, str]]:
        return ()

    def state_name(self, state: str) -> str:
        return f"AA({self.element_name}):{state}"


class InhibitionAuxiliaryBehavior(ElementBehavior):
    """The inhibition auxiliary ``IA_B`` of Figure 12.

    If any inhibitor fires before ``B``'s own (isolated) failure, the auxiliary
    moves to an absorbing *inhibited* state and ``B`` never fails from the
    community's point of view.  Otherwise the failure is forwarded.
    """

    def __init__(
        self,
        target_name: str,
        isolated_fire_action: str,
        inhibitor_fire_actions: Sequence[str],
        fire_action: str,
    ):
        if not inhibitor_fire_actions:
            raise ValueError(
                f"inhibition auxiliary of {target_name!r} needs at least one inhibitor"
            )
        self.target_name = target_name
        self.name = f"IA({target_name})"
        self.isolated_fire_action = isolated_fire_action
        self.inhibitor_fire_actions = tuple(inhibitor_fire_actions)
        self.fire_action = fire_action

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset({self.isolated_fire_action, *self.inhibitor_fire_actions}),
            outputs=frozenset({self.fire_action}),
        )

    def initial_state(self) -> str:
        return "waiting"

    def on_input(self, state: str, action: str) -> str:
        if state != "waiting":
            return state
        if action == self.isolated_fire_action:
            return "firing"
        if action in self.inhibitor_fire_actions:
            return "inhibited"
        return state

    def urgent(self, state: str) -> Iterable[Tuple[str, str]]:
        if state == "firing":
            return ((self.fire_action, "fired"),)
        return ()

    def markovian(self, state: str) -> Iterable[Tuple[float, str]]:
        return ()

    def state_name(self, state: str) -> str:
        return f"IA({self.target_name}):{state}"


class MonitorBehavior(ElementBehavior):
    """Labels system states as failed/operational for the analysis layer."""

    def __init__(
        self,
        watched_name: str,
        fire_action: str,
        repair_action: Optional[str] = None,
        label: str = FAILED_LABEL,
    ):
        self.watched_name = watched_name
        self.name = f"Monitor({watched_name})"
        self.fire_action = fire_action
        self.repair_action = repair_action
        self.label = label

    def signature(self) -> ActionSignature:
        inputs = {self.fire_action}
        if self.repair_action is not None:
            inputs.add(self.repair_action)
        return ActionSignature(inputs=frozenset(inputs))

    def initial_state(self) -> str:
        return "operational"

    def on_input(self, state: str, action: str) -> str:
        if action == self.fire_action:
            return "failed"
        if self.repair_action is not None and action == self.repair_action:
            return "operational"
        return state

    def urgent(self, state: str) -> Iterable[Tuple[str, str]]:
        return ()

    def markovian(self, state: str) -> Iterable[Tuple[float, str]]:
        return ()

    def labels(self, state: str) -> Iterable[str]:
        return (self.label,) if state == "failed" else ()

    def state_name(self, state: str) -> str:
        return f"Monitor({self.watched_name}):{state}"
