"""Elementary I/O-IMC behaviour of the (shared, possibly complex) spare gate.

This is the richest elementary model of the framework (Figure 11 of the paper
shows the instance with one primary, one shared spare and one competing gate).
The behaviour implemented here handles the fully general case — any number of
spares, each shared with any set of other spare gates, and the gate itself
being usable as a spare module of another gate (Section 6.1).

Semantics (documented here because the paper describes it only by example):

* The gate starts out using its primary.  The primary's activation is *wired*
  to the gate's own activation by the conversion layer, so the gate never
  emits an activation signal for the primary.
* When the unit the gate is currently using fails, the gate looks for a
  replacement among its spares, in the declared order:

  - if the gate is **active** it *claims* the first spare that is neither
    failed nor taken by emitting the claim signal ``a_{S,G}``; that single
    signal both informs competing gates (they mark the spare as taken) and —
    via the spare's activation auxiliary — activates the spare;
  - if the gate is **dormant** it does not claim anything: the paper's
    activation principle is that a dormant module must not switch on
    components.  It waits; if it is activated later it claims then.

* The gate hears the claim signals of competing gates and marks the
  corresponding spare as taken.  Because the claim transition and the state
  update are a single atomic output transition, two gates racing for the same
  spare resolve the conflict by interleaving: whichever claim happens first is
  heard by the other gate, which then looks further (this is also where the
  non-determinism of Figure 6(b) comes from — both interleavings remain).
* The gate **fires** (announces its own failure) as soon as the unit it is
  using has failed and no spare is available any more — regardless of its
  activation status: a dormant module whose components are exhausted must
  still tell its parent that it is unusable.
* Spares that have failed announce it through their firing signals; a failed
  spare that the gate is currently using triggers the same replacement logic.
* Once fired the gate is absorbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior

#: Status of a spare from the point of view of this gate.
AVAILABLE = "available"
TAKEN = "taken"      # claimed by a competing gate
FAILED = "failed"    # the spare itself announced failure
MINE = "mine"        # claimed by this gate (currently in use)

#: What the gate is currently using.
PRIMARY = "primary"
NOTHING = "nothing"


@dataclass(frozen=True)
class SpareGateState:
    """Immutable abstract state of the spare gate behaviour."""

    activated: bool
    primary_failed: bool
    using: object                 # PRIMARY, NOTHING or the index of a spare
    spare_status: Tuple[str, ...]
    fired: bool

    def with_(self, **changes) -> "SpareGateState":
        values = {
            "activated": self.activated,
            "primary_failed": self.primary_failed,
            "using": self.using,
            "spare_status": self.spare_status,
            "fired": self.fired,
        }
        values.update(changes)
        return SpareGateState(**values)


class SpareGateBehavior(ElementBehavior):
    """Behaviour of a spare gate with shared spares.

    Parameters
    ----------
    name:
        Gate name.
    primary_fire_action:
        Firing signal of the primary unit.
    spare_fire_actions:
        Firing signals of the spares, in allocation order.
    claim_actions:
        For each spare, the claim signal this gate outputs when taking it
        (``a_{S,G}``).
    competitor_claim_actions:
        For each spare, the claim signals of *other* gates sharing it (inputs).
    fire_action:
        The gate's own firing signal.
    activation_action:
        Input that activates the gate itself (``None`` if always active).
    """

    def __init__(
        self,
        name: str,
        primary_fire_action: str,
        spare_fire_actions: Sequence[str],
        claim_actions: Sequence[str],
        competitor_claim_actions: Mapping[int, Sequence[str]],
        fire_action: str,
        activation_action: Optional[str] = None,
    ):
        if not spare_fire_actions:
            raise ValueError(f"spare gate {name!r} needs at least one spare")
        if len(claim_actions) != len(spare_fire_actions):
            raise ValueError(
                f"spare gate {name!r}: need one claim action per spare"
            )
        self.gate_name = name
        self.name = f"Spare({name})"
        self.primary_fire_action = primary_fire_action
        self.spare_fire_actions = tuple(spare_fire_actions)
        self.claim_actions = tuple(claim_actions)
        self.competitor_claim_actions: Dict[int, Tuple[str, ...]] = {
            index: tuple(actions) for index, actions in competitor_claim_actions.items()
        }
        self.fire_action = fire_action
        self.activation_action = activation_action

        self._spare_index_by_fire = {
            action: index for index, action in enumerate(self.spare_fire_actions)
        }
        self._spare_index_by_competitor: Dict[str, int] = {}
        for index, actions in self.competitor_claim_actions.items():
            for action in actions:
                self._spare_index_by_competitor[action] = index

    # ----------------------------------------------------------- behaviour API
    def signature(self) -> ActionSignature:
        inputs = {self.primary_fire_action}
        inputs.update(self.spare_fire_actions)
        for actions in self.competitor_claim_actions.values():
            inputs.update(actions)
        if self.activation_action is not None:
            inputs.add(self.activation_action)
        outputs = {self.fire_action}
        outputs.update(self.claim_actions)
        return ActionSignature(inputs=frozenset(inputs), outputs=frozenset(outputs))

    def initial_state(self) -> SpareGateState:
        return SpareGateState(
            activated=self.activation_action is None,
            primary_failed=False,
            using=PRIMARY,
            spare_status=tuple(AVAILABLE for _ in self.spare_fire_actions),
            fired=False,
        )

    # ------------------------------------------------------------------ inputs
    def on_input(self, state: SpareGateState, action: str) -> SpareGateState:
        if state.fired:
            return state
        if action == self.activation_action:
            return state.with_(activated=True)
        if action == self.primary_fire_action:
            new_state = state.with_(primary_failed=True)
            if state.using == PRIMARY:
                new_state = new_state.with_(using=NOTHING)
            return new_state
        if action in self._spare_index_by_fire:
            index = self._spare_index_by_fire[action]
            status = list(state.spare_status)
            status[index] = FAILED
            new_state = state.with_(spare_status=tuple(status))
            if state.using == index:
                new_state = new_state.with_(using=NOTHING)
            return new_state
        if action in self._spare_index_by_competitor:
            index = self._spare_index_by_competitor[action]
            if state.spare_status[index] == AVAILABLE:
                status = list(state.spare_status)
                status[index] = TAKEN
                return state.with_(spare_status=tuple(status))
            return state
        return state

    # ----------------------------------------------------------------- outputs
    def _first_available_spare(self, state: SpareGateState) -> Optional[int]:
        for index, status in enumerate(state.spare_status):
            if status == AVAILABLE:
                return index
        return None

    def _needs_replacement(self, state: SpareGateState) -> bool:
        return state.using == NOTHING

    def urgent(self, state: SpareGateState) -> Iterable[Tuple[str, SpareGateState]]:
        if state.fired or not self._needs_replacement(state):
            return ()
        candidate = self._first_available_spare(state)
        if candidate is not None and state.activated:
            status = list(state.spare_status)
            status[candidate] = MINE
            claimed = state.with_(using=candidate, spare_status=tuple(status))
            return ((self.claim_actions[candidate], claimed),)
        if candidate is None:
            # Current unit failed and nothing is left to claim: the gate fails,
            # whether it is activated or not.
            return ((self.fire_action, state.with_(fired=True)),)
        return ()

    def markovian(self, state: SpareGateState) -> Iterable[Tuple[float, SpareGateState]]:
        return ()

    def state_name(self, state: SpareGateState) -> str:
        using = state.using if isinstance(state.using, str) else f"spare{state.using}"
        flags = []
        if state.activated:
            flags.append("act")
        if state.primary_failed:
            flags.append("pfail")
        if state.fired:
            flags.append("fired")
        return (
            f"{self.gate_name}:{using}"
            f"[{','.join(state.spare_status)}]"
            f"{{{','.join(flags)}}}"
        )
