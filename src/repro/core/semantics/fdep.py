"""Firing auxiliary for functional dependencies (Figure 5 of the paper).

The FDEP gate itself has a dummy output and no behaviour of its own.  Instead,
every *dependent* element ``A`` gets a firing auxiliary ``FA_A`` that governs
when ``A``'s failure is broadcast to the rest of the community:

* the dependent element's own model is rewired to emit the isolated signal
  ``f*_A`` (``failstar_A``),
* the firing auxiliary listens to ``f*_A`` and to the firing signals of all
  triggers ``T`` of FDEP gates that list ``A`` as a dependent,
* as soon as any of them fires, the auxiliary urgently outputs ``f_A``
  (``fail_A``) — the signal every consumer of ``A`` listens to.

The auxiliary is "essentially an OR gate" (paper, footnote 8 analogue for the
activation auxiliary); allowing triggers to be arbitrary gates (Section 6.2)
needs no change at all — the trigger signal is just another input.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior


class FiringAuxiliaryBehavior(ElementBehavior):
    """The firing auxiliary ``FA_X`` of a functionally dependent element."""

    def __init__(
        self,
        dependent_name: str,
        isolated_fire_action: str,
        trigger_fire_actions: Sequence[str],
        fire_action: str,
    ):
        if not trigger_fire_actions:
            raise ValueError(
                f"firing auxiliary of {dependent_name!r} needs at least one trigger"
            )
        self.dependent_name = dependent_name
        self.name = f"FA({dependent_name})"
        self.isolated_fire_action = isolated_fire_action
        self.trigger_fire_actions = tuple(trigger_fire_actions)
        self.fire_action = fire_action

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset({self.isolated_fire_action, *self.trigger_fire_actions}),
            outputs=frozenset({self.fire_action}),
        )

    def initial_state(self) -> str:
        return "waiting"

    def on_input(self, state: str, action: str) -> str:
        if state == "waiting":
            return "firing"
        return state

    def urgent(self, state: str) -> Iterable[Tuple[str, str]]:
        if state == "firing":
            return ((self.fire_action, "fired"),)
        return ()

    def markovian(self, state: str) -> Iterable[Tuple[float, str]]:
        return ()

    def state_name(self, state: str) -> str:
        return f"FA({self.dependent_name}):{state}"
