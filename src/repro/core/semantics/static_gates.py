"""Elementary I/O-IMC behaviours of the static gates (AND, OR, K/M voting).

The non-repairable behaviour listens to the firing signals of its inputs and,
once enough of them have failed, urgently emits its own firing signal and rests
in an absorbing fired state.  The AND gate is the special case ``K = M``, the
OR gate is ``K = 1``.

The repairable variant (Figure 14 of the paper shows the AND instance) tracks
the *current* set of failed inputs: whenever the failure condition starts or
stops holding, the gate urgently announces its failure or repair signal.  The
behaviour generalises Figure 14 from AND to any K/M threshold.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior

# Non-repairable state := ("collecting", failed_inputs) | ("firing", ...) | ("fired",)
# Repairable state     := (failed_inputs, announced_failed)


class StaticGateBehavior(ElementBehavior):
    """Behaviour of a non-repairable K-out-of-M gate (AND/OR/voting).

    Parameters
    ----------
    name:
        Name of the gate (for diagnostics).
    input_fire_actions:
        Firing signals of the gate's inputs.
    threshold:
        Number of failed inputs needed for the gate to fail (``1`` = OR,
        ``len(inputs)`` = AND).
    fire_action:
        Output firing signal of the gate.
    """

    def __init__(
        self,
        name: str,
        input_fire_actions: Sequence[str],
        threshold: int,
        fire_action: str,
    ):
        if not 1 <= threshold <= len(input_fire_actions):
            raise ValueError(
                f"gate {name!r}: threshold {threshold} incompatible with "
                f"{len(input_fire_actions)} inputs"
            )
        if len(set(input_fire_actions)) != len(input_fire_actions):
            raise ValueError(f"gate {name!r}: duplicate input firing signals")
        self.gate_name = name
        self.name = f"Gate({name})"
        self.input_fire_actions = tuple(input_fire_actions)
        self.threshold = threshold
        self.fire_action = fire_action

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset(self.input_fire_actions),
            outputs=frozenset({self.fire_action}),
        )

    def initial_state(self):
        return ("collecting", frozenset())

    def on_input(self, state, action: str):
        kind = state[0]
        if kind != "collecting":
            return state
        failed = state[1] | {action}
        if len(failed) >= self.threshold:
            return ("firing", failed)
        return ("collecting", failed)

    def urgent(self, state) -> Iterable[Tuple[str, object]]:
        if state[0] == "firing":
            return ((self.fire_action, ("fired",)),)
        return ()

    def markovian(self, state) -> Iterable[Tuple[float, object]]:
        return ()

    def state_name(self, state) -> str:
        if state[0] == "fired":
            return f"{self.gate_name}:fired"
        count = len(state[1])
        return f"{self.gate_name}:{state[0]}[{count}]"


class RepairableStaticGateBehavior(ElementBehavior):
    """Behaviour of a repairable K-out-of-M gate.

    The gate watches the failure *and* repair signals of its inputs and keeps
    its announced output status consistent with the current set of failed
    inputs: crossing the threshold upwards triggers the firing signal, crossing
    it downwards triggers the repair signal.

    Inputs that can never be repaired simply have no entry in
    ``repair_to_fire``.
    """

    def __init__(
        self,
        name: str,
        input_fire_actions: Sequence[str],
        repair_to_fire: Dict[str, str],
        threshold: int,
        fire_action: str,
        repair_action: str,
    ):
        if not 1 <= threshold <= len(input_fire_actions):
            raise ValueError(
                f"gate {name!r}: threshold {threshold} incompatible with "
                f"{len(input_fire_actions)} inputs"
            )
        unknown = set(repair_to_fire.values()) - set(input_fire_actions)
        if unknown:
            raise ValueError(
                f"gate {name!r}: repair signals reference unknown inputs {sorted(unknown)}"
            )
        self.gate_name = name
        self.name = f"RepairableGate({name})"
        self.input_fire_actions = tuple(input_fire_actions)
        self.input_repair_actions = tuple(repair_to_fire)
        self._repair_to_fire: Dict[str, str] = dict(repair_to_fire)
        self.threshold = threshold
        self.fire_action = fire_action
        self.repair_action = repair_action

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset(self.input_fire_actions) | frozenset(self.input_repair_actions),
            outputs=frozenset({self.fire_action, self.repair_action}),
        )

    def initial_state(self) -> Tuple[FrozenSet[str], bool]:
        return (frozenset(), False)

    def on_input(self, state: Tuple[FrozenSet[str], bool], action: str):
        failed, announced = state
        if action in self.input_fire_actions:
            return (failed | {action}, announced)
        if action in self.input_repair_actions:
            return (failed - {self._repair_to_fire[action]}, announced)
        return state

    def urgent(self, state) -> Iterable[Tuple[str, object]]:
        failed, announced = state
        is_failed = len(failed) >= self.threshold
        if is_failed and not announced:
            return ((self.fire_action, (failed, True)),)
        if not is_failed and announced:
            return ((self.repair_action, (failed, False)),)
        return ()

    def markovian(self, state) -> Iterable[Tuple[float, object]]:
        return ()

    def state_name(self, state) -> str:
        failed, announced = state
        return f"{self.gate_name}:failed={len(failed)},announced={announced}"
