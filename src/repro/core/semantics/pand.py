"""Elementary I/O-IMC behaviour of the priority-AND gate (Figure 4).

The PAND gate fires once all its inputs have failed *and* they failed in
left-to-right order.  As soon as an input fails before its left neighbour the
gate moves to an operational absorbing state (marked ``X`` in the paper's
figure) and can never fail.

The behaviour generalises the two-input model of Figure 4 to any number of
inputs: the state tracks how long the correctly-ordered prefix of failed
inputs currently is.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior

# state := ("progress", k)  -- the first k inputs failed, in order
#        | ("firing",)      -- all inputs failed in order, about to announce
#        | ("fired",)       -- failure announced (absorbing)
#        | ("disabled",)    -- wrong order observed (operational, absorbing)


class PandGateBehavior(ElementBehavior):
    """Behaviour of an n-input priority-AND gate."""

    def __init__(self, name: str, input_fire_actions: Sequence[str], fire_action: str):
        if len(input_fire_actions) < 2:
            raise ValueError(f"PAND gate {name!r} needs at least two inputs")
        if len(set(input_fire_actions)) != len(input_fire_actions):
            raise ValueError(f"PAND gate {name!r}: duplicate input firing signals")
        self.gate_name = name
        self.name = f"PAND({name})"
        self.input_fire_actions = tuple(input_fire_actions)
        self.fire_action = fire_action
        self._position = {action: i for i, action in enumerate(self.input_fire_actions)}

    def signature(self) -> ActionSignature:
        return ActionSignature(
            inputs=frozenset(self.input_fire_actions),
            outputs=frozenset({self.fire_action}),
        )

    def initial_state(self):
        return ("progress", 0)

    def on_input(self, state, action: str):
        if state[0] != "progress":
            return state
        if action not in self._position:
            return state
        prefix = state[1]
        position = self._position[action]
        if position == prefix:
            prefix += 1
            if prefix == len(self.input_fire_actions):
                return ("firing",)
            return ("progress", prefix)
        if position < prefix:
            # This input already failed; a repeated signal cannot occur for
            # non-repairable elements, ignore it defensively.
            return state
        # An input failed before its left neighbour: the gate is disabled.
        return ("disabled",)

    def urgent(self, state) -> Iterable[Tuple[str, object]]:
        if state[0] == "firing":
            return ((self.fire_action, ("fired",)),)
        return ()

    def markovian(self, state) -> Iterable[Tuple[float, object]]:
        return ()

    def state_name(self, state) -> str:
        if state[0] == "progress":
            return f"{self.gate_name}:progress[{state[1]}]"
        return f"{self.gate_name}:{state[0]}"
