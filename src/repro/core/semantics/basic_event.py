"""Elementary I/O-IMC behaviour of basic events.

Figure 3 of the paper shows the models of cold, warm and hot basic events;
Figure 13 shows the repairable variant.  The behaviour below covers all of
them uniformly:

* while *dormant* the component fails with rate ``alpha * lambda`` (no
  Markovian transition at all for a cold event);
* the activation input switches it to *active* mode where it fails with rate
  ``lambda``;
* once the failure rate fires the model is in the *firing* state and urgently
  outputs its firing signal, then rests in the absorbing *fired* state;
* a repairable event leaves the fired state with rate ``mu``, urgently
  announces its repair signal and returns to the operational mode it would be
  in given its activation status.

Elements that are always active (not part of any spare module) simply have no
activation input and start in active mode.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ...dft.elements import BasicEvent
from ...ioimc.actions import ActionSignature
from ...ioimc.behavior import ElementBehavior
from ...ioimc.rates import ParametricRate, RateLike

# state := (mode, phase)
#   mode  in {"dormant", "active"}
#   phase in {"operational", "firing", "fired", "announcing_repair"}
_OPERATIONAL = "operational"
_FIRING = "firing"
_FIRED = "fired"
_ANNOUNCING_REPAIR = "announcing_repair"


class BasicEventBehavior(ElementBehavior):
    """Behaviour of a (possibly repairable) basic event.

    Parameters
    ----------
    event:
        The :class:`~repro.dft.elements.BasicEvent` being modelled.
    fire_action:
        Output action announcing the failure (``fail_X`` or ``failstar_X``).
    activation_action:
        Input action activating the event, or ``None`` if it is always active.
    repair_action:
        Output action announcing a repair; required iff the event is repairable.
    """

    def __init__(
        self,
        event: BasicEvent,
        fire_action: str,
        activation_action: Optional[str] = None,
        repair_action: Optional[str] = None,
    ):
        if event.is_repairable and repair_action is None:
            raise ValueError(
                f"basic event {event.name!r} is repairable but no repair action was wired"
            )
        self.event = event
        self.name = f"BE({event.name})"
        self.fire_action = fire_action
        self.activation_action = activation_action
        self.repair_action = repair_action if event.is_repairable else None
        # Rates bound to a declared parameter enter the model as symbolic
        # linear forms, so the aggregated I/O-IMC keeps the transition ->
        # parameter map the rate-sweep engine re-instantiates per sample.
        self._active_rate: RateLike = event.failure_rate
        self._dormant_rate: RateLike = event.dormant_rate
        if event.failure_rate_param is not None:
            param = event.failure_rate_param
            self._active_rate = ParametricRate.for_parameter(param, event.failure_rate)
            if event.dormancy > 0.0:
                self._dormant_rate = ParametricRate.for_parameter(
                    param, event.failure_rate, coefficient=event.dormancy
                )
            else:
                self._dormant_rate = 0.0
        self._repair_rate: RateLike = event.repair_rate if event.is_repairable else 0.0
        if event.repair_rate_param is not None and event.repair_rate is not None:
            self._repair_rate = ParametricRate.for_parameter(
                event.repair_rate_param, event.repair_rate
            )

    # ----------------------------------------------------------- behaviour API
    def signature(self) -> ActionSignature:
        inputs = set()
        if self.activation_action is not None:
            inputs.add(self.activation_action)
        outputs = {self.fire_action}
        if self.repair_action is not None:
            outputs.add(self.repair_action)
        return ActionSignature(inputs=frozenset(inputs), outputs=frozenset(outputs))

    def initial_state(self) -> Tuple[str, str]:
        mode = "active" if self.activation_action is None else "dormant"
        return (mode, _OPERATIONAL)

    def on_input(self, state: Tuple[str, str], action: str) -> Tuple[str, str]:
        mode, phase = state
        if action == self.activation_action:
            return ("active", phase)
        return state

    def urgent(self, state: Tuple[str, str]) -> Iterable[Tuple[str, Tuple[str, str]]]:
        mode, phase = state
        if phase == _FIRING:
            return ((self.fire_action, (mode, _FIRED)),)
        if phase == _ANNOUNCING_REPAIR:
            return ((self.repair_action, (mode, _OPERATIONAL)),)
        return ()

    def markovian(self, state: Tuple[str, str]) -> Iterable[Tuple[RateLike, Tuple[str, str]]]:
        mode, phase = state
        transitions = []
        if phase == _OPERATIONAL:
            rate = self._active_rate if mode == "active" else self._dormant_rate
            if rate > 0.0:
                transitions.append((rate, (mode, _FIRING)))
        elif phase == _FIRED and self.repair_action is not None:
            transitions.append((self._repair_rate, (mode, _ANNOUNCING_REPAIR)))
        return transitions

    def state_name(self, state: Tuple[str, str]) -> str:
        mode, phase = state
        return f"{self.event.name}:{mode}/{phase}"
