"""Elementary I/O-IMC behaviours of every DFT element and auxiliary.

Each behaviour is a small, self-contained description of one element's I/O-IMC
(Section 4 of the paper); :mod:`repro.core.conversion` instantiates and wires
them into a community.  Adding a new DFT element (Section 7) means adding a
behaviour class here and a wiring rule in the conversion — nothing else.
"""

from .auxiliaries import (
    ActivationAuxiliaryBehavior,
    InhibitionAuxiliaryBehavior,
    MonitorBehavior,
)
from .basic_event import BasicEventBehavior
from .fdep import FiringAuxiliaryBehavior
from .pand import PandGateBehavior
from .spare import SpareGateBehavior, SpareGateState
from .static_gates import RepairableStaticGateBehavior, StaticGateBehavior

__all__ = [
    "ActivationAuxiliaryBehavior",
    "BasicEventBehavior",
    "FiringAuxiliaryBehavior",
    "InhibitionAuxiliaryBehavior",
    "MonitorBehavior",
    "PandGateBehavior",
    "RepairableStaticGateBehavior",
    "SpareGateBehavior",
    "SpareGateState",
    "StaticGateBehavior",
]
