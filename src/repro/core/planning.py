"""Aggregation planning: module-aware composition orders for the engine.

The compositional aggregation engine repeatedly picks two community members to
compose.  The seed implementation rescanned all ``O(k^2)`` pairs on every
step; this module provides the two data structures that replace that rescan:

* :class:`SharedActionIndex` — an incrementally maintained inverted index
  ``action id -> live models listening to / producing it``.  Only models that
  share a visible action can profit from being composed together (their
  synchronised signal can be hidden afterwards), so the index enumerates
  exactly the *communicating* candidate pairs instead of all pairs.

* :class:`AggregationPlan` / :func:`build_plan` — a precomputed tree of
  composition groups derived from the DFT's independent-module decomposition
  (:func:`repro.dft.modules.independent_modules`).  Every member of the
  community is assigned to the *innermost* independent module containing its
  element; modules nest, and the engine collapses the innermost groups first.
  This is the automated counterpart of the paper's per-module analysis
  (Section 5.2): each module interacts with the rest of the tree only through
  its root's firing signal, so composing a module to completion hides all of
  its internal signals and aggregates it to a tiny quotient before the module
  ever meets its context.  The cross-module residue (top gates, monitor,
  auxiliaries spanning modules) is composed last, ordered by the shared-action
  index.

The plan drives the ``ordering="modular"`` strategy of
:class:`repro.core.aggregation.CompositionalAggregator`.  Collapsing a
module group is dominated by the weak minimisation after each composition
step; that step runs on the splitter-based refinement engine (see
``AggregationOptions.minimiser`` and :mod:`repro.ioimc.partition`), which is
what keeps deep module nests cheap enough for the scalability sweeps in
``benchmarks/bench_scalability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..dft.modules import independent_modules, module_members
from ..ioimc.model import IOIMC


class SharedActionIndex:
    """Inverted index ``visible action id -> keys of live models``.

    Maintained incrementally by the aggregation engine: composing two models
    removes their keys and adds the composite's key, touching only the actions
    of the models involved — no global rescan.
    """

    __slots__ = ("_visible", "_by_action")

    def __init__(self) -> None:
        self._visible: Dict[int, FrozenSet[int]] = {}
        self._by_action: Dict[int, Set[int]] = {}

    def add(self, key: int, model: IOIMC) -> None:
        """Register a live model under ``key``."""
        visible = model.signature.visible_ids
        self._visible[key] = visible
        for aid in visible:
            self._by_action.setdefault(aid, set()).add(key)

    def remove(self, key: int) -> None:
        """Forget a model (it has been composed away)."""
        visible = self._visible.pop(key)
        for aid in visible:
            keys = self._by_action[aid]
            keys.discard(key)
            if not keys:
                del self._by_action[aid]

    def visible_ids(self, key: int) -> FrozenSet[int]:
        return self._visible[key]

    def shared_count(self, key_a: int, key_b: int) -> int:
        """Number of visible actions the two models share."""
        return len(self._visible[key_a] & self._visible[key_b])

    def communicating_pairs(
        self, restrict: Optional[AbstractSet[int]] = None
    ) -> Iterator[Tuple[int, int]]:
        """All unordered pairs of (restricted) live models sharing an action.

        Each pair is yielded exactly once, ``(smaller key, larger key)``.
        """
        seen: Set[Tuple[int, int]] = set()
        for keys in self._by_action.values():
            if restrict is not None:
                candidates = [key for key in keys if key in restrict]
            else:
                candidates = list(keys)
            if len(candidates) < 2:
                continue
            candidates.sort()
            for i, key_a in enumerate(candidates):
                for key_b in candidates[i + 1 :]:
                    pair = (key_a, key_b)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def __len__(self) -> int:
        return len(self._visible)


@dataclass
class PlanNode:
    """One composition group of an aggregation plan.

    ``root`` is the element rooting the independent module (``None`` for the
    synthetic top-level residue group); ``member_indices`` are positions into
    the community's member list composed directly at this node; ``children``
    are nested modules whose collapsed results join this group.
    """

    root: Optional[str]
    member_indices: List[int] = field(default_factory=list)
    children: List["PlanNode"] = field(default_factory=list)

    @property
    def group_size(self) -> int:
        """Number of models composed at this node."""
        return len(self.member_indices) + len(self.children)

    def walk(self) -> Iterator["PlanNode"]:
        """Depth-first iteration (children before the node itself)."""
        for child in self.children:
            yield from child.walk()
        yield self


@dataclass
class AggregationPlan:
    """A precomputed tree of composition groups for a community."""

    root: PlanNode
    #: Module roots in collapse order (innermost first), for diagnostics.
    module_order: Tuple[str, ...] = ()

    @property
    def num_groups(self) -> int:
        return sum(1 for _ in self.root.walk())

    def describe(self) -> str:
        """Human-readable plan summary (used by tests and diagnostics)."""
        lines = []

        def visit(node: PlanNode, depth: int) -> None:
            label = node.root if node.root is not None else "<residue>"
            lines.append(
                "  " * depth
                + f"{label}: {len(node.member_indices)} member(s), "
                + f"{len(node.children)} nested module(s)"
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def build_plan(community) -> AggregationPlan:
    """Derive the modular aggregation plan of a converted community.

    Every community member is assigned to the innermost independent module of
    the fault tree containing its element; modules nest according to member
    containment.  Members without an element (or outside every module) land in
    the synthetic residue group at the root.
    """
    tree = community.tree
    roots = independent_modules(tree)
    members_of = {root: module_members(tree, root) for root in roots}
    # Innermost lookup: smallest member set first (ties broken by name for
    # determinism; distinct modules of equal size are disjoint or nested).
    by_size = sorted(roots, key=lambda root: (len(members_of[root]), root))

    def innermost(element: Optional[str]) -> Optional[str]:
        if element is None:
            return None
        for root in by_size:
            if element in members_of[root]:
                return root
        return None

    def parent_module(root: str) -> Optional[str]:
        for candidate in by_size:
            if candidate != root and root in members_of[candidate]:
                return candidate
        return None

    nodes: Dict[str, PlanNode] = {root: PlanNode(root=root) for root in roots}
    residue = PlanNode(root=None)
    for root in roots:
        parent = parent_module(root)
        (nodes[parent] if parent is not None else residue).children.append(nodes[root])

    for index, member in enumerate(community.members):
        module = innermost(member.element)
        (nodes[module] if module is not None else residue).member_indices.append(index)

    # Drop module nodes that ended up empty (no members, no nested modules).
    def prune(node: PlanNode) -> None:
        kept = []
        for child in node.children:
            prune(child)
            if child.member_indices or child.children:
                kept.append(child)
        node.children = kept

    prune(residue)
    plan_root = residue
    if not residue.member_indices and len(residue.children) == 1:
        plan_root = residue.children[0]
    return AggregationPlan(
        root=plan_root,
        module_order=tuple(node.root for node in plan_root.walk() if node.root),
    )
