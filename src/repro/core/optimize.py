"""Russian-doll branch-and-bound over discrete DFT design spaces.

The paper's modular I/O-IMC decomposition makes every independent module an
independently solvable subproblem — exactly the structure Russian Doll Search
(Verfaillie, Lemaitre & Schiex, AAAI'96) exploits.  This module searches a
*design space* over a dynamic fault tree — how many spares each spare gate
keeps, which basic events get a repair crew, how a maintenance budget is
allocated — for the design minimising the (worst-case) unreliability at a
mission time under a cost constraint:

1. **Tables, innermost-first** (:func:`optimize`, table phase): every
   independent module that carries design choices is solved exhaustively on
   its own small state space, recording each local option combination's
   failure-probability bounds and cost.  Nested choice-bearing modules become
   super-variables of their enclosing module's table, as in the original
   Russian-doll scheme.
2. **Global branch-and-bound** (search phase): designs are enumerated
   depth-first, best-declared-option-first.  A partial assignment is pruned
   when (a) it cannot stay within budget, (b) the recorded table bound of a
   top-level module already exceeds the incumbent (OR-top systems: the system
   fails whenever an independent top-level module does), or (c) the lower
   bound of its *optimistic completion* — every unassigned choice taken at
   its most reliable declared option, evaluated through the CTMDP kernel's
   lower envelope (`CtmdpKernel.reachability_bounds_curve`) — exceeds the
   incumbent by more than a 1e-9 safety slack.
3. **Leaves through the cache**: fully-assigned designs evaluate through the
   content-addressed skeleton path (:class:`~repro.service.store.SkeletonStore`
   or an in-memory equivalent), so structurally identical candidates — and the
   optimistic completions the bound already built — pay the pipeline once.

Soundness of rule (c) rests on a *monotonicity* contract: every choice's
options must be declared from least to most reliable **for the system**, and
improving a component must never increase the system failure probability.
Coherent (AND/OR/voting/spare) contexts satisfy this; a component feeding a
non-first PAND/SEQ input or an inhibitor can violate it (making a component
fail later can flip a priority race towards system failure).
:func:`monotonicity_warnings` flags such placements, and
``optimize(..., exhaustive=True)`` is always available as the assumption-free
fallback — the property suite pins pruned == exhaustive on seeded spaces.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..ctmc.builders import CtmcSkeleton, CtmdpSkeleton
from ..ctmc.kernel import CtmdpKernel, TransientKernel
from ..dft.elements import (
    BasicEvent,
    Element,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
)
from ..dft.hashing import canonical_assignment
from ..dft.modules import independent_modules, module_members, module_subtree
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError
from . import signals
from .results import (
    ModuleTableInfo,
    OptimizeChoice,
    OptimizeResult,
    SchedulerChoice,
)
from .study import StudyOptions

#: Pruning slack: a partial assignment is discarded only when its optimistic
#: lower bound exceeds the incumbent by more than this, so bound-vs-leaf
#: numerical noise (~ solver tolerance, 1e-12) can never prune the optimum.
PRUNE_SLACK = 1e-9

#: Feasible-leaf counting walks the raw assignment space; beyond this size the
#: exact count (and hence the pruning ratio) is reported as unknown instead of
#: spending longer counting than searching.
_COUNT_LIMIT = 1_000_000


# ---------------------------------------------------------------------------
# design choices
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpareCountChoice:
    """How many spares a spare gate — or a shared pool of gates — keeps.

    The base tree declares the *maximal* configuration (every candidate spare
    present); option ``counts[i]`` truncates the gate's spare list to its
    first ``counts[i]`` entries, and spares orphaned by the truncation are
    garbage-collected from the candidate tree.  ``gate`` accepts a tuple of
    gates for a shared pool (e.g. two pumps drawing on the same cold spares);
    all listed gates are truncated together.  Declare ``counts`` from least
    to most reliable (ascending) — the last option is the optimistic one the
    pruning bound assumes.
    """

    gate: Union[str, Tuple[str, ...]]
    counts: Tuple[int, ...]
    costs: Tuple[float, ...]

    def __post_init__(self) -> None:
        gates = (self.gate,) if isinstance(self.gate, str) else tuple(self.gate)
        object.__setattr__(self, "gate", gates[0] if len(gates) == 1 else gates)
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        object.__setattr__(self, "costs", tuple(float(c) for c in self.costs))
        if not gates:
            raise AnalysisError("a spare-count choice needs at least one gate")
        if len(self.counts) != len(self.costs) or not self.counts:
            raise AnalysisError(
                f"spare-count choice on {gates}: counts and costs must be "
                "non-empty parallel tuples"
            )
        if any(count < 1 for count in self.counts):
            raise AnalysisError(
                f"spare-count choice on {gates}: a spare gate needs >= 1 spare"
            )

    @property
    def gates(self) -> Tuple[str, ...]:
        return (self.gate,) if isinstance(self.gate, str) else self.gate

    @property
    def name(self) -> str:
        return "spares:" + "+".join(self.gates)

    @property
    def num_options(self) -> int:
        return len(self.counts)

    def cost(self, option: int) -> float:
        return self.costs[option]

    def describe(self, option: int) -> str:
        count = self.counts[option]
        return f"{count} spare" + ("" if count == 1 else "s")

    def apply(self, elements: Dict[str, Element], option: int) -> None:
        count = self.counts[option]
        for gate in self.gates:
            element = elements[gate]
            assert isinstance(element, SpareGate)
            elements[gate] = _dc_replace(element, spares=element.spares[:count])

    def affected(self, tree: DynamicFaultTree) -> Set[str]:
        names: Set[str] = set()
        for gate in self.gates:
            element = tree.element(gate)
            assert isinstance(element, SpareGate)
            names.add(gate)
            names.update(element.spares)
        return names


@dataclass(frozen=True)
class RepairChoice:
    """Which repair rate (if any) a basic event gets.

    ``rates[i]`` is the repair rate of option ``i`` — ``None`` means no
    repair crew.  Declare the options from least to most reliable
    (``None`` first, then ascending rates); the last option is the optimistic
    one the pruning bound assumes.
    """

    event: str
    rates: Tuple[Optional[float], ...]
    costs: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rates",
            tuple(None if r is None else float(r) for r in self.rates),
        )
        object.__setattr__(self, "costs", tuple(float(c) for c in self.costs))
        if len(self.rates) != len(self.costs) or not self.rates:
            raise AnalysisError(
                f"repair choice on {self.event!r}: rates and costs must be "
                "non-empty parallel tuples"
            )

    @property
    def name(self) -> str:
        return f"repair:{self.event}"

    @property
    def num_options(self) -> int:
        return len(self.rates)

    def cost(self, option: int) -> float:
        return self.costs[option]

    def describe(self, option: int) -> str:
        rate = self.rates[option]
        return "no repair" if rate is None else f"repair rate {rate:g}"

    def apply(self, elements: Dict[str, Element], option: int) -> None:
        element = elements[self.event]
        assert isinstance(element, BasicEvent)
        elements[self.event] = _dc_replace(
            element, repair_rate=self.rates[option], repair_rate_param=None
        )

    def affected(self, tree: DynamicFaultTree) -> Set[str]:
        return {self.event}


DesignChoice = Union[SpareCountChoice, RepairChoice]


@dataclass(frozen=True)
class DesignProblem:
    """A discrete design space over one fault tree plus the objective.

    The objective is the worst-case unreliability at ``mission_time``
    (plain unreliability when the aggregated model is a CTMC, the upper
    envelope when non-determinism survives), minimised subject to
    ``sum(cost of chosen options) <= budget`` (``None`` = unconstrained).
    """

    tree: DynamicFaultTree
    choices: Tuple[DesignChoice, ...]
    mission_time: float = 1.0
    budget: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "choices", tuple(self.choices))
        if not self.choices:
            raise AnalysisError("a design problem needs at least one choice")
        if not self.mission_time > 0.0:
            raise AnalysisError("the mission time must be positive")
        seen: Set[str] = set()
        for choice in self.choices:
            if choice.name in seen:
                raise AnalysisError(f"duplicate design choice {choice.name!r}")
            seen.add(choice.name)
            if isinstance(choice, SpareCountChoice):
                for gate in choice.gates:
                    if gate not in self.tree:
                        raise AnalysisError(f"unknown spare gate {gate!r}")
                    element = self.tree.element(gate)
                    if not isinstance(element, SpareGate):
                        raise AnalysisError(f"{gate!r} is not a spare gate")
                    if max(choice.counts) > len(element.spares):
                        raise AnalysisError(
                            f"spare gate {gate!r} declares {len(element.spares)} "
                            f"candidate spares but the choice asks for "
                            f"{max(choice.counts)}"
                        )
            else:
                if choice.event not in self.tree:
                    raise AnalysisError(f"unknown basic event {choice.event!r}")
                if not isinstance(self.tree.element(choice.event), BasicEvent):
                    raise AnalysisError(f"{choice.event!r} is not a basic event")

    @property
    def space_size(self) -> int:
        size = 1
        for choice in self.choices:
            size *= choice.num_options
        return size

    def assignment_cost(self, assignment: Sequence[int]) -> float:
        return sum(
            choice.cost(option) for choice, option in zip(self.choices, assignment)
        )


def apply_design(
    problem: DesignProblem, assignment: Sequence[int]
) -> DynamicFaultTree:
    """The concrete fault tree of one fully-assigned design.

    Applies every choice's selected option to the base tree's elements, then
    garbage-collects elements no longer reachable from the top event (spares
    truncated out of every gate) so structurally identical designs hash — and
    therefore cache — identically.
    """
    base = problem.tree
    if len(assignment) != len(problem.choices):
        raise AnalysisError(
            f"assignment has {len(assignment)} entries for "
            f"{len(problem.choices)} choices"
        )
    elements: Dict[str, Element] = {
        name: base.element(name) for name in base.names()
    }
    for choice, option in zip(problem.choices, assignment):
        if not 0 <= option < choice.num_options:
            raise AnalysisError(
                f"choice {choice.name!r} has no option {option}"
            )
        choice.apply(elements, option)
    full = DynamicFaultTree(name=base.name)
    for param, nominal in base.parameters.items():
        full.declare_parameter(param, nominal)
    for name in base.names():
        full.add(elements[name])
    full.set_top(base.top)
    live = module_members(full, full.top)
    if len(live) == len(full):
        return full
    pruned = DynamicFaultTree(name=base.name)
    for name in base.names():
        if name not in live:
            continue
        element = elements[name]
        if isinstance(element, BasicEvent):
            for param in (element.failure_rate_param, element.repair_rate_param):
                if param is not None and param not in pruned.parameters:
                    pruned.declare_parameter(param, base.parameter(param))
        pruned.add(element)
    pruned.set_top(base.top)
    return pruned


def monotonicity_warnings(problem: DesignProblem) -> Tuple[str, ...]:
    """Advisory list of choice placements that can break pruning soundness.

    Improving a component that feeds a *non-first* PAND/SEQ input, or that
    acts as an inhibitor, can *increase* the system failure probability
    (delaying one failure can flip a priority race towards the failing
    order), which invalidates the optimistic-completion lower bound.  The
    first input of a PAND is always safe: making it fail later only shrinks
    the set of failure orderings.
    """
    tree = problem.tree
    warnings: List[str] = []
    for choice in problem.choices:
        # Only the elements the choice rewires change behaviour: the gate's
        # output and the candidate spares' activation.  Elements *below* them
        # (e.g. a spare gate's primary) keep their failure law, so the check
        # asks which order-sensitive inputs contain an affected element — not
        # what the affected elements contain.
        cones = choice.affected(tree)
        for name in tree.names():
            element = tree.element(name)
            if isinstance(element, (PandGate, SeqGate)):
                for position, child in enumerate(element.inputs):
                    if position == 0:
                        continue
                    if tree.descendants(child) & cones:
                        warnings.append(
                            f"choice {choice.name!r} affects input "
                            f"{position + 1} of {type(element).__name__} "
                            f"{name!r}; improving it may not be monotone — "
                            f"pruning can be unsound (use exhaustive=True "
                            f"to verify)"
                        )
            elif isinstance(element, InhibitionConstraint):
                if tree.descendants(element.inhibitor) & cones:
                    warnings.append(
                        f"choice {choice.name!r} affects the inhibitor of "
                        f"{name!r}; improving it may not be monotone"
                    )
    return tuple(warnings)


# ---------------------------------------------------------------------------
# evaluation through the content-addressed skeleton path
# ---------------------------------------------------------------------------

class _Evaluator:
    """Leaf/bound evaluation with entry + kernel reuse.

    Every candidate tree resolves to its structural class's skeleton entry —
    through a :class:`~repro.service.store.SkeletonStore` when one is given
    (so candidates persist across runs), through an in-memory dict otherwise —
    and each entry gets one lazily-built kernel, so re-bounding the same
    optimistic completion costs a single uniformisation sweep.
    """

    def __init__(
        self,
        options: Optional[StudyOptions],
        store,
        tolerance: float,
    ) -> None:
        self.options = options or StudyOptions()
        self.store = store
        self.tolerance = tolerance
        self._entries: Dict[str, object] = {}
        self._kernels: Dict[str, Union[TransientKernel, CtmdpKernel]] = {}
        self.builds = 0
        self.cache_hits = 0

    def entry_for(self, tree: DynamicFaultTree):
        from ..service.store import build_entry, cache_key

        key = cache_key(tree, self.options)
        entry = self._entries.get(key)
        if entry is not None:
            self.cache_hits += 1
            return entry
        if self.store is not None:
            entry, hit = self.store.get_or_build(tree, self.options)
            if hit:
                self.cache_hits += 1
            else:
                self.builds += 1
        else:
            entry = build_entry(tree, self.options, key=key)
            self.builds += 1
        self._entries[key] = entry
        return entry

    def kernel_for(self, entry) -> Union[TransientKernel, CtmdpKernel]:
        kernel = self._kernels.get(entry.key)
        if kernel is None:
            if isinstance(entry.skeleton, CtmcSkeleton):
                kernel = TransientKernel(entry.skeleton, buffer=entry.buffer)
            else:
                kernel = entry.skeleton.ctmdp_kernel()
            self._kernels[entry.key] = kernel
        return kernel

    def unreliability(
        self, tree: DynamicFaultTree, time: float
    ) -> Tuple[float, float, bool]:
        """(lower, upper, nondeterministic) failure probability at ``time``."""
        entry = self.entry_for(tree)
        kernel = self.kernel_for(entry)
        kernel.load(canonical_assignment(tree))
        if isinstance(kernel, TransientKernel):
            curve = kernel.probability_of_label_curve(
                signals.FAILED_LABEL, [time], self.tolerance
            )
            value = float(curve[0])
            return value, value, False
        lower, upper = kernel.reachability_bounds_curve(
            signals.FAILED_LABEL, [time], tolerance=self.tolerance
        )
        return float(lower[0]), float(upper[0]), True

    def scheduler(
        self, tree: DynamicFaultTree, time: float, maximize: bool
    ) -> Tuple[SchedulerChoice, ...]:
        """The argbest scheduler of ``tree``'s bound (empty for CTMCs)."""
        entry = self.entry_for(tree)
        kernel = self.kernel_for(entry)
        if not isinstance(kernel, CtmdpKernel):
            return ()
        kernel.load(canonical_assignment(tree))
        picks = kernel.optimal_choices(
            signals.FAILED_LABEL, [time], maximize=maximize, tolerance=self.tolerance
        )
        return tuple(
            SchedulerChoice(state=state, successor=chosen, agreement=agreement)
            for state, (chosen, agreement) in sorted(picks.items())
        )


# ---------------------------------------------------------------------------
# module grouping and Russian-doll tables
# ---------------------------------------------------------------------------

@dataclass
class _ModuleTable:
    """The recorded subproblem of one choice-bearing independent module."""

    root: str
    #: Positions (into ``problem.choices``) this table enumerates — the
    #: module's own choices plus those of every nested choice-bearing module
    #: (the Russian-doll super-variables).
    positions: Tuple[int, ...]
    #: Local option combination -> (lower, upper, cost) at the mission time.
    records: Dict[Tuple[int, ...], Tuple[float, float, float]]

    def best_lower(self, partial: Mapping[int, int]) -> float:
        """Min recorded lower bound over combinations consistent with ``partial``."""
        best = math.inf
        for combo, (lower, _upper, _cost) in self.records.items():
            if all(
                combo[slot] == partial[position]
                for slot, position in enumerate(self.positions)
                if position in partial
            ):
                best = min(best, lower)
        return best


def _choice_positions_by_module(
    problem: DesignProblem,
) -> Tuple[Dict[str, List[int]], List[int]]:
    """Innermost containing module of every choice (and the search order).

    Returns ``(by_module, order)`` where ``by_module`` maps a module root to
    the positions whose affected elements lie entirely inside it (innermost
    wins; the top module does not count — a choice only it contains is
    global), and ``order`` lists all positions innermost-module-first, which
    is the Russian-doll variable order the search assigns in.
    """
    tree = problem.tree
    modules = [root for root in independent_modules(tree) if root != tree.top]
    members = {root: module_members(tree, root) for root in modules}
    by_module: Dict[str, List[int]] = {}
    rank: Dict[int, int] = {}
    for position, choice in enumerate(problem.choices):
        affected = choice.affected(tree)
        for index, root in enumerate(modules):
            if affected <= members[root]:
                by_module.setdefault(root, []).append(position)
                rank[position] = index
                break
        else:
            rank[position] = len(modules)
    order = sorted(range(len(problem.choices)), key=lambda p: (rank[p], p))
    return by_module, order


def _build_tables(
    problem: DesignProblem,
    by_module: Dict[str, List[int]],
    evaluator: _Evaluator,
) -> Dict[str, _ModuleTable]:
    """Solve every choice-bearing module exhaustively, innermost-first.

    A module's table ranges over its own choices *and* those of any nested
    choice-bearing module, so an outer table's records already embed the
    inner subproblem — the defining trick of Russian Doll Search.
    """
    tree = problem.tree
    modules = [root for root in independent_modules(tree) if root != tree.top]
    members = {root: module_members(tree, root) for root in modules}
    optimistic = tuple(choice.num_options - 1 for choice in problem.choices)
    tables: Dict[str, _ModuleTable] = {}
    for root in modules:  # innermost-first by construction
        positions = sorted(
            position
            for inner, inner_positions in by_module.items()
            if members[inner] <= members[root]
            for position in inner_positions
        )
        if not positions:
            continue
        records: Dict[Tuple[int, ...], Tuple[float, float, float]] = {}
        combo = [0] * len(positions)
        while True:
            assignment = list(optimistic)
            for slot, position in enumerate(positions):
                assignment[position] = combo[slot]
            candidate = apply_design(problem, assignment)
            subtree = module_subtree(candidate, root)
            lower, upper, _nondet = evaluator.unreliability(
                subtree, problem.mission_time
            )
            cost = sum(
                problem.choices[position].cost(combo[slot])
                for slot, position in enumerate(positions)
            )
            records[tuple(combo)] = (lower, upper, cost)
            for slot in range(len(positions) - 1, -1, -1):
                combo[slot] += 1
                if combo[slot] < problem.choices[positions[slot]].num_options:
                    break
                combo[slot] = 0
            else:
                break
        tables[root] = _ModuleTable(
            root=root, positions=tuple(positions), records=records
        )
    return tables


def _top_level_tables(
    problem: DesignProblem, tables: Dict[str, _ModuleTable]
) -> Tuple[_ModuleTable, ...]:
    """Tables usable for the OR-top prescreen: direct inputs of an OR top.

    The system then fails whenever one of these independent modules does, so
    any recorded module lower bound is a system lower bound.
    """
    top = problem.tree.element(problem.tree.top)
    if not isinstance(top, OrGate):
        return ()
    return tuple(
        tables[child] for child in top.inputs if child in tables
    )


def _count_feasible(problem: DesignProblem) -> Optional[int]:
    """Exact number of within-budget assignments (None beyond the limit)."""
    if problem.space_size > _COUNT_LIMIT:
        return None
    budget = problem.budget
    if budget is None:
        return problem.space_size
    choices = problem.choices
    suffix_min = [0.0] * (len(choices) + 1)
    for position in range(len(choices) - 1, -1, -1):
        suffix_min[position] = suffix_min[position + 1] + min(
            choices[position].costs
        )

    def count(position: int, cost: float) -> int:
        if cost + suffix_min[position] > budget + 1e-9:
            return 0
        if position == len(choices):
            return 1
        return sum(
            count(position + 1, cost + choices[position].cost(option))
            for option in range(choices[position].num_options)
        )

    return count(0, 0.0)


# ---------------------------------------------------------------------------
# the search
# ---------------------------------------------------------------------------

def optimize(
    problem: DesignProblem,
    options: Optional[StudyOptions] = None,
    skeleton_cache=None,
    exhaustive: bool = False,
    tolerance: float = 1e-12,
) -> OptimizeResult:
    """Minimise worst-case unreliability over ``problem``'s design space.

    Runs the Russian-doll table phase and the pruned branch-and-bound
    described in the module docstring; ``exhaustive=True`` disables the
    bound-based pruning (keeping only the budget filter) and evaluates every
    feasible leaf — both modes enumerate in the same order and update the
    incumbent strictly, so they return the identical optimal design whenever
    the pruning bounds are sound.

    ``skeleton_cache`` accepts a :class:`~repro.service.store.SkeletonStore`;
    without one an in-memory content-addressed cache deduplicates the
    structurally identical candidates within this call.
    """
    start_total = _time.perf_counter()
    evaluator = _Evaluator(options, skeleton_cache, tolerance)
    warnings = monotonicity_warnings(problem)
    by_module, order = _choice_positions_by_module(problem)

    start_tables = _time.perf_counter()
    tables: Dict[str, _ModuleTable] = {}
    if not exhaustive:
        tables = _build_tables(problem, by_module, evaluator)
    prescreen = _top_level_tables(problem, tables)
    table_seconds = _time.perf_counter() - start_tables

    choices = problem.choices
    budget = problem.budget
    optimistic = tuple(choice.num_options - 1 for choice in choices)
    suffix_min = [0.0] * (len(order) + 1)
    for depth in range(len(order) - 1, -1, -1):
        suffix_min[depth] = suffix_min[depth + 1] + min(
            choices[order[depth]].costs
        )

    best_value = math.inf
    best_assignment: Optional[Tuple[int, ...]] = None
    best_bounds = (math.inf, math.inf)
    best_nondet = False
    leaves_evaluated = 0
    bound_evaluations = 0
    pruned_by_cost = 0
    pruned_by_table = 0
    pruned_by_envelope = 0
    bound_cache: Dict[Tuple[int, ...], float] = {}

    def envelope_lower(assigned: Dict[int, int]) -> float:
        """Lower bound of the optimistic completion (cached per completion)."""
        nonlocal bound_evaluations
        completion = tuple(
            assigned.get(position, optimistic[position])
            for position in range(len(choices))
        )
        cached = bound_cache.get(completion)
        if cached is not None:
            return cached
        bound_evaluations += 1
        lower, _upper, _nondet = evaluator.unreliability(
            apply_design(problem, completion), problem.mission_time
        )
        bound_cache[completion] = lower
        return lower

    def search(depth: int, assigned: Dict[int, int], cost: float) -> None:
        nonlocal best_value, best_assignment, best_bounds, best_nondet
        nonlocal leaves_evaluated, pruned_by_cost, pruned_by_table
        nonlocal pruned_by_envelope
        if budget is not None and cost + suffix_min[depth] > budget + 1e-9:
            pruned_by_cost += 1
            return
        if depth == len(order):
            assignment = tuple(assigned[position] for position in range(len(choices)))
            lower, upper, nondet = evaluator.unreliability(
                apply_design(problem, assignment), problem.mission_time
            )
            leaves_evaluated += 1
            if upper < best_value:
                best_value = upper
                best_assignment = assignment
                best_bounds = (lower, upper)
                best_nondet = nondet
            return
        if not exhaustive and depth > 0 and best_assignment is not None:
            prescreened = max(
                (table.best_lower(assigned) for table in prescreen),
                default=-math.inf,
            )
            if prescreened > best_value + PRUNE_SLACK:
                pruned_by_table += 1
                return
            if envelope_lower(assigned) > best_value + PRUNE_SLACK:
                pruned_by_envelope += 1
                return
        position = order[depth]
        choice = choices[position]
        for option in range(choice.num_options - 1, -1, -1):  # best-first
            assigned[position] = option
            search(depth + 1, assigned, cost + choice.cost(option))
            del assigned[position]

    start_search = _time.perf_counter()
    search(0, {}, 0.0)
    search_seconds = _time.perf_counter() - start_search

    if best_assignment is None:
        raise AnalysisError(
            "no design fits the budget "
            f"({budget:g}; cheapest assignment costs "
            f"{sum(min(choice.costs) for choice in choices):g})"
        )

    best_tree = apply_design(problem, best_assignment)
    scheduler = evaluator.scheduler(best_tree, problem.mission_time, maximize=True)
    pruning_scheduler: Tuple[SchedulerChoice, ...] = ()
    if not exhaustive:
        root_completion = optimistic
        pruning_scheduler = evaluator.scheduler(
            apply_design(problem, root_completion),
            problem.mission_time,
            maximize=False,
        )

    module_tables = tuple(
        ModuleTableInfo(
            module=table.root,
            choices=tuple(choices[position].name for position in table.positions),
            records=len(table.records),
            best_lower=min(lower for lower, _u, _c in table.records.values()),
            best_upper=min(upper for _l, upper, _c in table.records.values()),
            best_cost=min(
                cost
                for _l, upper, cost in table.records.values()
                if upper
                <= min(u for _l2, u, _c2 in table.records.values()) + PRUNE_SLACK
            ),
        )
        for table in tables.values()
    )
    best_design = tuple(
        OptimizeChoice(
            name=choice.name,
            option_index=option,
            option=choice.describe(option),
            cost=choice.cost(option),
        )
        for choice, option in zip(choices, best_assignment)
    )
    return OptimizeResult(
        tree_name=problem.tree.name,
        mission_time=problem.mission_time,
        budget=budget,
        exhaustive=exhaustive,
        best_design=best_design,
        best_value=best_value,
        best_lower=best_bounds[0],
        best_upper=best_bounds[1],
        best_cost=problem.assignment_cost(best_assignment),
        nondeterministic=best_nondet,
        leaves_feasible=_count_feasible(problem),
        leaves_evaluated=leaves_evaluated,
        bound_evaluations=bound_evaluations,
        pruned_by_cost=pruned_by_cost,
        pruned_by_table=pruned_by_table,
        pruned_by_envelope=pruned_by_envelope,
        module_tables=module_tables,
        scheduler=scheduler,
        pruning_scheduler=pruning_scheduler,
        warnings=warnings,
        cache={"hits": evaluator.cache_hits, "builds": evaluator.builds},
        timings={
            "tables": table_seconds,
            "search": search_seconds,
            "total": _time.perf_counter() - start_total,
        },
    )
