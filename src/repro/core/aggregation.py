"""The compositional aggregation engine (Steps 2-5 of the paper's algorithm).

Given the community of I/O-IMC produced by :mod:`repro.core.conversion`, the
engine repeatedly

1. picks two I/O-IMC (according to a configurable ordering strategy),
2. parallel composes them (with maximal progress fused into the exploration
   by default, see :func:`repro.ioimc.composition.parallel`),
3. hides every output signal that no remaining community member listens to,
4. aggregates the result (weak bisimulation by default; the splitter-based
   refinement engine of :mod:`repro.ioimc.bisimulation` unless
   ``AggregationOptions.minimiser`` selects the signature reference),

until a single I/O-IMC is left.  The engine records the size of every
intermediate model; the *peak* sizes are the numbers the paper reports when
comparing against the monolithic DIFTree state spaces (Section 5.2: 156 states
/ 490 transitions for the cascaded PAND system versus 4113 / 24608).

Ordering strategies
-------------------

``linked`` (default)
    Compose the smallest pair of models that actually communicate (share an
    action).  Because children and parents share their firing signals, this
    effectively walks the fault tree bottom-up and keeps intermediate products
    small — it is the automated counterpart of the paper's per-module analysis.
    Candidate pairs come from the incrementally maintained
    :class:`~repro.core.planning.SharedActionIndex`, not from an ``O(k^2)``
    rescan of all pairs.
``modular``
    Follow a precomputed :class:`~repro.core.planning.AggregationPlan`: the
    independent modules of the fault tree are collapsed innermost-first, each
    group ordered by the shared-action index; the cross-module residue is
    composed last.  Requires the :class:`~repro.core.conversion.Community`
    (for the tree and member provenance); without it the strategy degrades to
    ``linked``.
``smallest``
    Compose the pair with the smallest state-count product, whether or not the
    two models communicate.
``sequential``
    Fold the community in the order the converter emitted it (a deliberately
    naive baseline for the ordering ablation benchmark).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CompositionError
from ..ioimc.composition import parallel
from ..ioimc.model import IOIMC
from ..ioimc.reduction import AggregationOptions, aggregate
from .planning import AggregationPlan, PlanNode, SharedActionIndex, build_plan

ORDERING_STRATEGIES = ("linked", "smallest", "sequential", "modular")


@dataclass
class CompositionStep:
    """Record of one compose/hide/aggregate iteration."""

    left: str
    right: str
    product_states: int
    product_transitions: int
    hidden_actions: Tuple[str, ...]
    reduced_states: int
    reduced_transitions: int

    def to_dict(self) -> dict:
        return {
            "left": self.left,
            "right": self.right,
            "product_states": self.product_states,
            "product_transitions": self.product_transitions,
            "hidden_actions": list(self.hidden_actions),
            "reduced_states": self.reduced_states,
            "reduced_transitions": self.reduced_transitions,
        }


@dataclass
class CompositionStatistics:
    """Aggregate statistics of a full compositional aggregation run."""

    steps: List[CompositionStep] = field(default_factory=list)
    final_states: int = 0
    final_transitions: int = 0

    @property
    def peak_product_states(self) -> int:
        """Largest intermediate model *before* aggregation."""
        return max((step.product_states for step in self.steps), default=self.final_states)

    @property
    def peak_product_transitions(self) -> int:
        return max(
            (step.product_transitions for step in self.steps), default=self.final_transitions
        )

    @property
    def peak_reduced_states(self) -> int:
        """Largest intermediate model *after* aggregation."""
        return max((step.reduced_states for step in self.steps), default=self.final_states)

    @property
    def peak_reduced_transitions(self) -> int:
        return max(
            (step.reduced_transitions for step in self.steps), default=self.final_transitions
        )

    def to_dict(self, include_steps: bool = True) -> dict:
        payload = {
            "num_steps": len(self.steps),
            "peak_product_states": self.peak_product_states,
            "peak_product_transitions": self.peak_product_transitions,
            "peak_reduced_states": self.peak_reduced_states,
            "peak_reduced_transitions": self.peak_reduced_transitions,
            "final_states": self.final_states,
            "final_transitions": self.final_transitions,
        }
        if include_steps:
            payload["steps"] = [step.to_dict() for step in self.steps]
        return payload

    def summary(self) -> str:
        return (
            f"{len(self.steps)} composition steps, "
            f"peak product {self.peak_product_states} states / "
            f"{self.peak_product_transitions} transitions, "
            f"peak aggregated {self.peak_reduced_states} states / "
            f"{self.peak_reduced_transitions} transitions, "
            f"final {self.final_states} states / {self.final_transitions} transitions"
        )


@dataclass
class CompositionalAggregationOptions:
    """Options of the engine."""

    ordering: str = "linked"
    aggregation: AggregationOptions = field(default_factory=AggregationOptions)
    #: Output actions that must never be hidden (observable to the end).
    keep_visible: Tuple[str, ...] = ()
    #: Fuse maximal progress + internal self-loop elimination into the
    #: composition exploration (lowers peak product sizes; disable to measure
    #: the compose-then-reduce baseline).
    fuse: bool = True
    #: Worker processes for collapsing independent module groups of the
    #: ``modular`` plan in parallel (1 = serial; ignored by the flat
    #: orderings, which have no independent groups to fan out).
    processes: int = 1

    def __post_init__(self) -> None:
        if self.ordering not in ORDERING_STRATEGIES:
            raise CompositionError(
                f"unknown ordering strategy {self.ordering!r}; "
                f"choose one of {ORDERING_STRATEGIES}"
            )
        if int(self.processes) < 1:
            raise CompositionError(
                f"processes must be >= 1, got {self.processes}"
            )


class _Workspace:
    """The live models of a run, keyed, with the shared-action index."""

    def __init__(self) -> None:
        self.models: Dict[int, IOIMC] = {}
        self.order: List[int] = []  # insertion order (sequential/smallest picks)
        self.index = SharedActionIndex()
        self._next_key = 0

    def add(self, model: IOIMC) -> int:
        key = self._next_key
        self._next_key += 1
        self.models[key] = model
        self.order.append(key)
        self.index.add(key, model)
        return key

    def pop(self, key: int) -> IOIMC:
        model = self.models.pop(key)
        self.order.remove(key)
        self.index.remove(key)
        return model

    def external_inputs(self) -> set:
        """Union of the input actions of all live models."""
        inputs: set = set()
        for model in self.models.values():
            inputs |= model.signature.inputs
        return inputs


class CompositionalAggregator:
    """Reduces a community of I/O-IMC to a single aggregated I/O-IMC.

    ``community`` (optional) supplies the fault tree and member provenance
    needed by the ``modular`` ordering; the models must then be exactly
    ``community.models()``.
    """

    def __init__(
        self,
        models: Sequence[IOIMC],
        options: Optional[CompositionalAggregationOptions] = None,
        community=None,
    ):
        if not models:
            raise CompositionError("the community is empty")
        self._models: List[IOIMC] = list(models)
        self._community = community
        self.options = options or CompositionalAggregationOptions()

    # ------------------------------------------------------------ public API
    def run(self) -> Tuple[IOIMC, CompositionStatistics]:
        """Execute the full compose/hide/aggregate loop."""
        statistics = CompositionStatistics()

        if len(self._models) == 1:
            only, _stats = aggregate(
                self._hide(self._models[0], external_inputs=set()),
                self.options.aggregation,
            )
            statistics.final_states = only.num_states
            statistics.final_transitions = only.num_transitions
            return only, statistics

        workspace = _Workspace()
        keys = [workspace.add(model) for model in self._models]

        plan = self._plan(keys)
        if plan is not None:
            if self.options.processes > 1:
                final_key = self._collapse_parallel(
                    plan.root, workspace, statistics, keys
                )
            else:
                final_key = self._collapse(plan.root, workspace, statistics, keys)
        else:
            final_key = self._collapse_group(keys, workspace, statistics)

        final = workspace.models[final_key]
        statistics.final_states = final.num_states
        statistics.final_transitions = final.num_transitions
        return final, statistics

    # ------------------------------------------------------------- plan mode
    def _plan(self, keys: Sequence[int]) -> Optional[AggregationPlan]:
        """The aggregation plan, or ``None`` when running a flat strategy."""
        if self.options.ordering != "modular":
            return None
        community = self._community
        if community is None or len(community.members) != len(keys):
            return None  # no provenance: degrade gracefully to "linked"
        return build_plan(community)

    def _collapse(
        self,
        node: PlanNode,
        workspace: _Workspace,
        statistics: CompositionStatistics,
        keys: Sequence[int],
    ) -> int:
        """Collapse a plan node (children first) to a single model key."""
        group = [self._collapse(child, workspace, statistics, keys) for child in node.children]
        group.extend(keys[index] for index in node.member_indices)
        return self._collapse_group(group, workspace, statistics)

    def _collapse_parallel(
        self,
        node: PlanNode,
        workspace: _Workspace,
        statistics: CompositionStatistics,
        keys: Sequence[int],
    ) -> int:
        """Collapse the root node with its module children fanned out to workers.

        Independent module groups of the modular plan share no live state: a
        module talks to the rest of the tree only through its root's firing
        signal, and community outputs are unique, so an input of a model
        *outside* a subtree can never be composed away by outside-only steps.
        Handing each worker the union of the outside models' original inputs
        therefore reproduces the serial engine's hiding decisions exactly, and
        worker-local workspace keys are assigned in the same relative order as
        the serial run's — the parallel result is identical, step for step.

        Only the root's children fan out (one job per module subtree); nested
        modules collapse serially inside their worker.
        """
        eligible: Dict[int, List[int]] = {}
        for position, child in enumerate(node.children):
            indices = sorted(
                index for sub in child.walk() for index in sub.member_indices
            )
            if len(indices) >= 2:  # a one-member subtree has nothing to compose
                eligible[position] = indices
        if len(eligible) < 2:
            # At most one parallelisable group: no fan-out to be had.
            return self._collapse(node, workspace, statistics, keys)

        input_sets = [model.signature.inputs for model in self._models]
        jobs: Dict[int, Tuple[PlanNode, List[IOIMC], Tuple[str, ...]]] = {}
        for position, indices in eligible.items():
            inside = set(indices)
            outside_inputs: set = set()
            for index, inputs in enumerate(input_sets):
                if index not in inside:
                    outside_inputs |= inputs
            mapping = {index: local for local, index in enumerate(indices)}
            local_node = _localise_node(node.children[position], mapping)
            models = [workspace.pop(keys[index]) for index in indices]
            jobs[position] = (local_node, models, tuple(sorted(outside_inputs)))

        workers = min(self.options.processes, len(jobs))
        worker_options = replace(self.options, processes=1)
        group: List[int] = []
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_aggregation_worker,
            initargs=(worker_options,),
        ) as pool:
            futures = {
                position: pool.submit(_collapse_subtree, job)
                for position, job in jobs.items()
            }
            for position, child in enumerate(node.children):
                future = futures.get(position)
                if future is None:
                    group.append(self._collapse(child, workspace, statistics, keys))
                else:
                    model, steps = future.result()
                    statistics.steps.extend(steps)
                    group.append(workspace.add(model))
        group.extend(keys[index] for index in node.member_indices)
        return self._collapse_group(group, workspace, statistics)

    # ------------------------------------------------------------- flat mode
    def _collapse_group(
        self,
        group: List[int],
        workspace: _Workspace,
        statistics: CompositionStatistics,
    ) -> int:
        """Compose/hide/aggregate the given keys down to a single key."""
        group = list(group)
        while len(group) > 1:
            key_a, key_b = self._pick_pair(group, workspace)
            group.remove(key_a)
            group.remove(key_b)
            group.append(self._step(key_a, key_b, workspace, statistics))
        return group[0]

    def _step(
        self,
        key_a: int,
        key_b: int,
        workspace: _Workspace,
        statistics: CompositionStatistics,
    ) -> int:
        """One compose/hide/aggregate iteration on the workspace."""
        left = workspace.pop(key_a)
        right = workspace.pop(key_b)

        composite = parallel(
            left,
            right,
            fuse=self.options.fuse and self.options.aggregation.method != "none",
            urgent_outputs=self.options.aggregation.urgent_outputs,
        )
        product_states = composite.num_states
        product_transitions = composite.num_transitions

        hidden_before = composite.signature.outputs
        composite = self._hide(composite, workspace.external_inputs())
        hidden_actions = tuple(sorted(hidden_before - composite.signature.outputs))

        composite, _agg_stats = aggregate(composite, self.options.aggregation)

        statistics.steps.append(
            CompositionStep(
                left=left.name,
                right=right.name,
                product_states=product_states,
                product_transitions=product_transitions,
                hidden_actions=hidden_actions,
                reduced_states=composite.num_states,
                reduced_transitions=composite.num_transitions,
            )
        )
        return workspace.add(composite)

    # ---------------------------------------------------------------- helpers
    def _hide(self, model: IOIMC, external_inputs: Iterable[str]) -> IOIMC:
        """Hide outputs of ``model`` that no remaining member listens to."""
        keep = set(self.options.keep_visible) | set(external_inputs)
        hideable = model.signature.outputs - keep
        if not hideable:
            return model
        return model.hide(hideable, name=model.name)

    def _pick_pair(self, group: Sequence[int], workspace: _Workspace) -> Tuple[int, int]:
        strategy = self.options.ordering
        if strategy == "sequential":
            group_set = set(group)
            ordered = [key for key in workspace.order if key in group_set]
            return ordered[0], ordered[1]
        if strategy == "smallest":
            return self._pick_smallest(group, workspace)
        # "linked" and "modular" groups: smallest communicating pair from the
        # shared-action index; fall back to the smallest product overall when
        # nothing communicates.
        models = workspace.models
        index = workspace.index
        best: Optional[Tuple[int, int]] = None
        best_key: Optional[Tuple[int, int, int, int]] = None
        for key_a, key_b in index.communicating_pairs(frozenset(group)):
            product = models[key_a].num_states * models[key_b].num_states
            shared = index.shared_count(key_a, key_b)
            candidate = (product, -shared, key_a, key_b)
            if best_key is None or candidate < best_key:
                best_key = candidate
                best = (key_a, key_b)
        if best is not None:
            return best
        return self._pick_smallest(group, workspace)

    @staticmethod
    def _pick_smallest(group: Sequence[int], workspace: _Workspace) -> Tuple[int, int]:
        models = workspace.models
        group_set = set(group)
        ordered = [key for key in workspace.order if key in group_set]
        best: Optional[Tuple[int, int]] = None
        best_product: Optional[int] = None
        for i, key_a in enumerate(ordered):
            states_a = models[key_a].num_states
            for key_b in ordered[i + 1 :]:
                product = states_a * models[key_b].num_states
                if best_product is None or product < best_product:
                    best_product = product
                    best = (key_a, key_b)
        assert best is not None
        return best


# ---------------------------------------------------------------------------
# module-group worker machinery (the PR 5 initializer pattern from core.sweep)
# ---------------------------------------------------------------------------

def _localise_node(node: PlanNode, mapping: Dict[int, int]) -> PlanNode:
    """A copy of ``node`` with member indices remapped into a subtree-local
    model list (models travel to the worker as a dense list)."""
    return PlanNode(
        root=node.root,
        member_indices=[mapping[index] for index in node.member_indices],
        children=[_localise_node(child, mapping) for child in node.children],
    )


_WORKER_AGG_OPTIONS: Optional[CompositionalAggregationOptions] = None


def _init_aggregation_worker(options: CompositionalAggregationOptions) -> None:
    """Pool initializer: ship the (serial) engine options once per process."""
    global _WORKER_AGG_OPTIONS
    _WORKER_AGG_OPTIONS = options


def _collapse_subtree(
    job: Tuple[PlanNode, List[IOIMC], Tuple[str, ...]],
) -> Tuple[IOIMC, List[CompositionStep]]:
    """Worker entry point: serially collapse one independent module subtree.

    ``outside_inputs`` — the original inputs of every community model outside
    the subtree — joins ``keep_visible``, so the hide step sees exactly the
    listeners the serial engine would see (outside inputs of a subtree output
    can never be composed away by outside-only steps; see
    :meth:`CompositionalAggregator._collapse_parallel`).
    """
    assert _WORKER_AGG_OPTIONS is not None
    node, models, outside_inputs = job
    options = replace(
        _WORKER_AGG_OPTIONS,
        keep_visible=tuple(
            sorted(set(_WORKER_AGG_OPTIONS.keep_visible) | set(outside_inputs))
        ),
    )
    aggregator = CompositionalAggregator(models, options)
    workspace = _Workspace()
    keys = [workspace.add(model) for model in models]
    statistics = CompositionStatistics()
    final_key = aggregator._collapse(node, workspace, statistics, keys)
    return workspace.models[final_key], statistics.steps


def compositional_aggregate(
    models: Sequence[IOIMC],
    ordering: str = "linked",
    aggregation: Optional[AggregationOptions] = None,
    keep_visible: Iterable[str] = (),
    community=None,
    fuse: bool = True,
    processes: int = 1,
) -> Tuple[IOIMC, CompositionStatistics]:
    """Convenience wrapper around :class:`CompositionalAggregator`."""
    options = CompositionalAggregationOptions(
        ordering=ordering,
        aggregation=aggregation or AggregationOptions(),
        keep_visible=tuple(keep_visible),
        fuse=fuse,
        processes=processes,
    )
    return CompositionalAggregator(models, options, community=community).run()
