"""The compositional aggregation engine (Steps 2-5 of the paper's algorithm).

Given the community of I/O-IMC produced by :mod:`repro.core.conversion`, the
engine repeatedly

1. picks two I/O-IMC (according to a configurable ordering strategy),
2. parallel composes them,
3. hides every output signal that no remaining community member listens to,
4. aggregates the result (weak bisimulation by default),

until a single I/O-IMC is left.  The engine records the size of every
intermediate model; the *peak* sizes are the numbers the paper reports when
comparing against the monolithic DIFTree state spaces (Section 5.2: 156 states
/ 490 transitions for the cascaded PAND system versus 4113 / 24608).

Ordering strategies
-------------------

``linked`` (default)
    Compose the smallest pair of models that actually communicate (share an
    action).  Because children and parents share their firing signals, this
    effectively walks the fault tree bottom-up and keeps intermediate products
    small — it is the automated counterpart of the paper's per-module analysis.
``smallest``
    Compose the pair with the smallest state-count product, whether or not the
    two models communicate.
``sequential``
    Fold the community in the order the converter emitted it (a deliberately
    naive baseline for the ordering ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import CompositionError
from ..ioimc.composition import parallel
from ..ioimc.model import IOIMC
from ..ioimc.reduction import AggregationOptions, aggregate

ORDERING_STRATEGIES = ("linked", "smallest", "sequential")


@dataclass
class CompositionStep:
    """Record of one compose/hide/aggregate iteration."""

    left: str
    right: str
    product_states: int
    product_transitions: int
    hidden_actions: Tuple[str, ...]
    reduced_states: int
    reduced_transitions: int


@dataclass
class CompositionStatistics:
    """Aggregate statistics of a full compositional aggregation run."""

    steps: List[CompositionStep] = field(default_factory=list)
    final_states: int = 0
    final_transitions: int = 0

    @property
    def peak_product_states(self) -> int:
        """Largest intermediate model *before* aggregation."""
        return max((step.product_states for step in self.steps), default=self.final_states)

    @property
    def peak_product_transitions(self) -> int:
        return max(
            (step.product_transitions for step in self.steps), default=self.final_transitions
        )

    @property
    def peak_reduced_states(self) -> int:
        """Largest intermediate model *after* aggregation."""
        return max((step.reduced_states for step in self.steps), default=self.final_states)

    @property
    def peak_reduced_transitions(self) -> int:
        return max(
            (step.reduced_transitions for step in self.steps), default=self.final_transitions
        )

    def summary(self) -> str:
        return (
            f"{len(self.steps)} composition steps, "
            f"peak product {self.peak_product_states} states / "
            f"{self.peak_product_transitions} transitions, "
            f"peak aggregated {self.peak_reduced_states} states / "
            f"{self.peak_reduced_transitions} transitions, "
            f"final {self.final_states} states / {self.final_transitions} transitions"
        )


@dataclass
class CompositionalAggregationOptions:
    """Options of the engine."""

    ordering: str = "linked"
    aggregation: AggregationOptions = field(default_factory=AggregationOptions)
    #: Output actions that must never be hidden (observable to the end).
    keep_visible: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.ordering not in ORDERING_STRATEGIES:
            raise CompositionError(
                f"unknown ordering strategy {self.ordering!r}; "
                f"choose one of {ORDERING_STRATEGIES}"
            )


class CompositionalAggregator:
    """Reduces a community of I/O-IMC to a single aggregated I/O-IMC."""

    def __init__(
        self,
        models: Sequence[IOIMC],
        options: Optional[CompositionalAggregationOptions] = None,
    ):
        if not models:
            raise CompositionError("the community is empty")
        self._models: List[IOIMC] = list(models)
        self.options = options or CompositionalAggregationOptions()

    # ------------------------------------------------------------ public API
    def run(self) -> Tuple[IOIMC, CompositionStatistics]:
        """Execute the full compose/hide/aggregate loop."""
        statistics = CompositionStatistics()
        models = list(self._models)

        if len(models) == 1:
            only, _stats = aggregate(
                self._hide(models[0], remaining=[]), self.options.aggregation
            )
            statistics.final_states = only.num_states
            statistics.final_transitions = only.num_transitions
            return only, statistics

        while len(models) > 1:
            left_index, right_index = self._pick_pair(models)
            left = models[left_index]
            right = models[right_index]
            remaining = [
                model
                for index, model in enumerate(models)
                if index not in (left_index, right_index)
            ]

            composite = parallel(left, right)
            product_states = composite.num_states
            product_transitions = composite.num_transitions

            hidden_before = composite.signature.outputs
            composite = self._hide(composite, remaining)
            hidden_actions = tuple(sorted(hidden_before - composite.signature.outputs))

            composite, _agg_stats = aggregate(composite, self.options.aggregation)

            statistics.steps.append(
                CompositionStep(
                    left=left.name,
                    right=right.name,
                    product_states=product_states,
                    product_transitions=product_transitions,
                    hidden_actions=hidden_actions,
                    reduced_states=composite.num_states,
                    reduced_transitions=composite.num_transitions,
                )
            )
            models = remaining + [composite]

        final = models[0]
        statistics.final_states = final.num_states
        statistics.final_transitions = final.num_transitions
        return final, statistics

    # ---------------------------------------------------------------- helpers
    def _hide(self, model: IOIMC, remaining: Sequence[IOIMC]) -> IOIMC:
        """Hide outputs of ``model`` that no remaining member listens to."""
        external_inputs = set()
        for other in remaining:
            external_inputs |= set(other.signature.inputs)
        keep = set(self.options.keep_visible) | external_inputs
        hideable = model.signature.outputs - keep
        if not hideable:
            return model
        return model.hide(hideable, name=model.name)

    def _pick_pair(self, models: Sequence[IOIMC]) -> Tuple[int, int]:
        strategy = self.options.ordering
        if strategy == "sequential":
            return 0, 1
        best: Optional[Tuple[int, int]] = None
        best_key: Optional[Tuple[int, int]] = None
        fallback: Optional[Tuple[int, int]] = None
        fallback_key: Optional[int] = None
        for i in range(len(models)):
            for j in range(i + 1, len(models)):
                product = models[i].num_states * models[j].num_states
                shared = self._shared_actions(models[i], models[j])
                if strategy == "smallest":
                    if fallback_key is None or product < fallback_key:
                        fallback_key = product
                        fallback = (i, j)
                    continue
                # "linked": prefer communicating pairs, smallest product first.
                if shared:
                    key = (product, -shared)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = (i, j)
                if fallback_key is None or product < fallback_key:
                    fallback_key = product
                    fallback = (i, j)
        if strategy == "smallest":
            assert fallback is not None
            return fallback
        if best is not None:
            return best
        assert fallback is not None
        return fallback

    @staticmethod
    def _shared_actions(left: IOIMC, right: IOIMC) -> int:
        return len(left.signature.visible & right.signature.visible)


def compositional_aggregate(
    models: Sequence[IOIMC],
    ordering: str = "linked",
    aggregation: Optional[AggregationOptions] = None,
    keep_visible: Iterable[str] = (),
) -> Tuple[IOIMC, CompositionStatistics]:
    """Convenience wrapper around :class:`CompositionalAggregator`."""
    options = CompositionalAggregationOptions(
        ordering=ordering,
        aggregation=aggregation or AggregationOptions(),
        keep_visible=tuple(keep_visible),
    )
    return CompositionalAggregator(models, options).run()
