"""Detection and reporting of non-determinism in DFT models.

Section 4.4 of the paper argues that certain DFT configurations — typically an
FDEP trigger failing several elements "simultaneously" — are *inherently*
non-deterministic and that the framework should detect (rather than silently
resolve) this.  In the I/O-IMC pipeline the symptom is a closed aggregated
model in which some vanishing state offers several urgent moves: a CTMDP.

:func:`detect_nondeterminism` runs the full pipeline and reports whether the
final model is non-deterministic and how wide the induced interval on the
unreliability is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..ctmc import CTMDP
from ..dft.tree import DynamicFaultTree
from .analysis import AnalysisOptions, CompositionalAnalyzer


@dataclass(frozen=True)
class NondeterminismReport:
    """Outcome of a non-determinism check."""

    nondeterministic: bool
    #: Number of states of the final model offering a non-deterministic choice.
    choice_states: int
    #: (min, max) unreliability at the probed mission time.
    bounds: Tuple[float, float]
    #: The probed mission time.
    time: float

    @property
    def spread(self) -> float:
        """Width of the unreliability interval caused by the non-determinism."""
        return self.bounds[1] - self.bounds[0]

    def summary(self) -> str:
        if not self.nondeterministic:
            return (
                f"deterministic model; unreliability(t={self.time:g}) = {self.bounds[0]:.6f}"
            )
        return (
            f"non-deterministic model with {self.choice_states} choice state(s); "
            f"unreliability(t={self.time:g}) in [{self.bounds[0]:.6f}, {self.bounds[1]:.6f}]"
        )


def detect_nondeterminism(
    tree: DynamicFaultTree,
    time: float = 1.0,
    options: Optional[AnalysisOptions] = None,
) -> NondeterminismReport:
    """Analyse ``tree`` and report whether its semantics is non-deterministic."""
    analyzer = CompositionalAnalyzer(tree, options)
    model = analyzer.markov_model
    if isinstance(model, CTMDP):
        choice_states = sum(
            1 for state in model.states() if len(model.choices(state)) > 1
        )
        bounds = analyzer.unreliability_bounds(time)
        return NondeterminismReport(
            nondeterministic=True, choice_states=choice_states, bounds=bounds, time=time
        )
    value = analyzer.unreliability(time)
    return NondeterminismReport(
        nondeterministic=False, choice_states=0, bounds=(value, value), time=time
    )
