"""repro — compositional Dynamic Fault Tree analysis via I/O-IMC.

A from-scratch reproduction of

    H. Boudali, P. Crouzen, M. Stoelinga.
    "Dynamic Fault Tree analysis using Input/Output Interactive Markov Chains."
    DSN 2007.

The package is organised in layers:

* :mod:`repro.ioimc`     — the I/O-IMC process calculus (composition, hiding,
  maximal progress, bisimulation aggregation);
* :mod:`repro.ctmc`      — CTMC / CTMDP numerical analysis;
* :mod:`repro.dft`       — the DFT object model and the Galileo format;
* :mod:`repro.core`      — the paper's contribution: DFT semantics in terms of
  I/O-IMC, compositional aggregation, reliability analysis;
* :mod:`repro.baselines` — the DIFTree-style monolithic/modular baseline;
* :mod:`repro.systems`   — the paper's case studies and parametric generators.

Quick start::

    from repro import MTTF, Unreliability, evaluate
    from repro.dft import FaultTreeBuilder

    builder = FaultTreeBuilder("two-pumps")
    builder.basic_event("PA", failure_rate=1.0)
    builder.basic_event("PB", failure_rate=1.0)
    builder.basic_event("PS", failure_rate=1.0, dormancy=0.0)
    builder.spare_gate("PumpA", primary="PA", spares=["PS"])
    builder.spare_gate("PumpB", primary="PB", spares=["PS"])
    builder.and_gate("System", ["PumpA", "PumpB"])
    tree = builder.build(top="System")

    result = evaluate(tree, Unreliability([0.5, 1.0]) + MTTF())
    print(result["unreliability"].values, result["mttf"].value)
"""

from . import ctmc, dft, errors, ioimc
from .core import (
    MTTF,
    AnalysisOptions,
    ImportanceRanking,
    BatchResult,
    BatchStudy,
    CompositionalAnalyzer,
    DesignProblem,
    MeasureResult,
    OptimizeResult,
    Query,
    RepairChoice,
    SpareCountChoice,
    Study,
    StudyOptions,
    StudyResult,
    SweepResult,
    RateSweep,
    SweepStudy,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
    apply_design,
    detect_nondeterminism,
    evaluate,
    optimize,
    run_sweep,
    substitute_parameters,
    with_rate_parameters,
    mean_time_to_failure,
    unavailability,
    unreliability,
    unreliability_bounds,
)
from .core.sweep import sweep
from .dft import DynamicFaultTree, FaultTreeBuilder

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "BatchResult",
    "BatchStudy",
    "CompositionalAnalyzer",
    "DesignProblem",
    "DynamicFaultTree",
    "FaultTreeBuilder",
    "ImportanceRanking",
    "MTTF",
    "MeasureResult",
    "OptimizeResult",
    "Query",
    "RepairChoice",
    "SpareCountChoice",
    "Study",
    "StudyOptions",
    "StudyResult",
    "SweepResult",
    "RateSweep",
    "SweepStudy",
    "Unavailability",
    "Unreliability",
    "UnreliabilityBounds",
    "__version__",
    "apply_design",
    "ctmc",
    "detect_nondeterminism",
    "dft",
    "errors",
    "evaluate",
    "ioimc",
    "optimize",
    "substitute_parameters",
    "run_sweep",
    "sweep",
    "with_rate_parameters",
    "mean_time_to_failure",
    "unavailability",
    "unreliability",
    "unreliability_bounds",
]
