"""A small fluent builder for dynamic fault trees.

The builder removes the boiler-plate of creating element dataclasses and
wiring them into a :class:`~repro.dft.tree.DynamicFaultTree`.  It is the API
used throughout the examples::

    builder = FaultTreeBuilder("pump-unit")
    builder.basic_event("PA", failure_rate=1.0)
    builder.basic_event("PB", failure_rate=1.0)
    builder.basic_event("PS", failure_rate=1.0, dormancy=0.0)
    builder.spare_gate("PumpA", primary="PA", spares=["PS"])
    builder.spare_gate("PumpB", primary="PB", spares=["PS"])
    builder.and_gate("PumpUnit", ["PumpA", "PumpB"])
    tree = builder.build(top="PumpUnit")
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import FaultTreeError
from .elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from .tree import DynamicFaultTree


class FaultTreeBuilder:
    """Accumulates elements and produces a validated :class:`DynamicFaultTree`."""

    def __init__(self, name: str = "dft"):
        self._tree = DynamicFaultTree(name)

    # ------------------------------------------------------------- parameters
    def parameter(self, name: str, nominal: float) -> str:
        """Declare a named rate parameter (for the rate-sweep engine)."""
        return self._tree.declare_parameter(name, nominal)

    # ----------------------------------------------------------- basic events
    def basic_event(
        self,
        name: str,
        failure_rate: Optional[float] = None,
        dormancy: float = 1.0,
        repair_rate: Optional[float] = None,
        param: Optional[str] = None,
        repair_param: Optional[str] = None,
    ) -> str:
        """Add a basic event and return its name.

        ``param`` / ``repair_param`` bind the failure / repair rate to a
        previously declared parameter; the explicit rate may then be omitted
        (it defaults to the parameter's nominal value).
        """
        if param is not None:
            declared = self._tree.parameter(param)
            if failure_rate is None:
                failure_rate = declared
        if failure_rate is None:
            raise FaultTreeError(
                f"basic event {name!r} needs a failure rate or a bound parameter"
            )
        if repair_param is not None:
            declared = self._tree.parameter(repair_param)
            if repair_rate is None:
                repair_rate = declared
        self._tree.add(
            BasicEvent(
                name=name,
                failure_rate=failure_rate,
                dormancy=dormancy,
                repair_rate=repair_rate,
                failure_rate_param=param,
                repair_rate_param=repair_param,
            )
        )
        return name

    def basic_events(
        self,
        names: Iterable[str],
        failure_rate: float,
        dormancy: float = 1.0,
        repair_rate: Optional[float] = None,
    ) -> List[str]:
        """Add several identical basic events (convenient for symmetric trees)."""
        return [
            self.basic_event(name, failure_rate, dormancy, repair_rate) for name in names
        ]

    # ------------------------------------------------------------------ gates
    def and_gate(self, name: str, inputs: Sequence[str]) -> str:
        self._tree.add(AndGate(name=name, inputs=tuple(inputs)))
        return name

    def or_gate(self, name: str, inputs: Sequence[str]) -> str:
        self._tree.add(OrGate(name=name, inputs=tuple(inputs)))
        return name

    def voting_gate(self, name: str, inputs: Sequence[str], threshold: int) -> str:
        self._tree.add(VotingGate(name=name, inputs=tuple(inputs), threshold=threshold))
        return name

    def pand_gate(self, name: str, inputs: Sequence[str]) -> str:
        self._tree.add(PandGate(name=name, inputs=tuple(inputs)))
        return name

    def spare_gate(self, name: str, primary: str, spares: Sequence[str]) -> str:
        self._tree.add(SpareGate(name=name, primary=primary, spares=tuple(spares)))
        return name

    def fdep(self, name: str, trigger: str, dependents: Sequence[str]) -> str:
        self._tree.add(FdepGate(name=name, trigger=trigger, dependents=tuple(dependents)))
        return name

    def seq_gate(self, name: str, inputs: Sequence[str]) -> str:
        self._tree.add(SeqGate(name=name, inputs=tuple(inputs)))
        return name

    def inhibition(self, name: str, inhibitor: str, target: str) -> str:
        self._tree.add(InhibitionConstraint(name=name, inhibitor=inhibitor, target=target))
        return name

    def mutual_exclusion(self, name: str, first: str, second: str) -> List[str]:
        """Two symmetric inhibitions: ``first`` and ``second`` exclude each other."""
        return [
            self.inhibition(f"{name}_{first}_inhibits_{second}", first, second),
            self.inhibition(f"{name}_{second}_inhibits_{first}", second, first),
        ]

    # ------------------------------------------------------------------ build
    def build(self, top: str, validate: bool = True) -> DynamicFaultTree:
        """Finalize the tree with ``top`` as the top event."""
        self._tree.set_top(top)
        if validate:
            self._tree.validate()
        return self._tree

    @property
    def tree(self) -> DynamicFaultTree:
        """The partially built tree (no top event required)."""
        return self._tree
