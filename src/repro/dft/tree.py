"""The dynamic fault tree container.

A :class:`DynamicFaultTree` is a directed acyclic graph of the elements defined
in :mod:`repro.dft.elements`, identified by name, with a designated *top event*
(the system failure).  The class offers structural queries (children, parents,
descendants, topological order), validation, and the spare/FDEP-specific
look-ups needed by the conversion to I/O-IMC and by the DIFTree baseline.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import FaultTreeError
from .elements import (
    AndGate,
    BasicEvent,
    CONSTRAINT_GATES,
    Element,
    FdepGate,
    InhibitionConstraint,
    LOGIC_GATES,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
    is_basic_event,
    is_dynamic,
    is_gate,
    is_static,
)


class DynamicFaultTree:
    """A named collection of DFT elements with a top event."""

    def __init__(self, name: str = "dft", top: Optional[str] = None):
        self.name = name
        self._elements: Dict[str, Element] = {}
        self._top: Optional[str] = top
        #: Declared rate parameters: name -> nominal value.
        self._parameters: Dict[str, float] = {}

    # ------------------------------------------------------------------ build
    def add(self, element: Element) -> Element:
        """Add an element; names must be unique."""
        if element.name in self._elements:
            raise FaultTreeError(f"an element named {element.name!r} already exists")
        self._elements[element.name] = element
        return element

    def declare_parameter(self, name: str, nominal: float) -> str:
        """Declare a named rate parameter with its nominal (default) value.

        Basic events bind their rates to declared parameters via
        ``failure_rate_param`` / ``repair_rate_param``; the rate-sweep engine
        (:mod:`repro.core.sweep`) varies the declared parameters without
        re-running the expensive aggregation.
        """
        if not (isinstance(name, str) and name.isidentifier()):
            raise FaultTreeError(f"parameter names must be identifiers, got {name!r}")
        if name in self._parameters:
            raise FaultTreeError(f"rate parameter {name!r} is declared twice")
        nominal = float(nominal)
        if not (nominal > 0.0 and math.isfinite(nominal)):
            raise FaultTreeError(
                f"rate parameter {name!r} needs a positive finite nominal value, "
                f"got {nominal}"
            )
        self._parameters[name] = nominal
        return name

    def add_all(self, elements: Iterable[Element]) -> None:
        for element in elements:
            self.add(element)

    def set_top(self, name: str) -> None:
        if name not in self._elements:
            raise FaultTreeError(f"cannot set unknown element {name!r} as top event")
        self._top = name

    # ---------------------------------------------------------------- queries
    @property
    def top(self) -> str:
        if self._top is None:
            raise FaultTreeError(f"fault tree {self.name!r} has no top event")
        return self._top

    @property
    def has_top(self) -> bool:
        return self._top is not None

    def __contains__(self, name: object) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[str]:
        return iter(self._elements)

    def element(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise FaultTreeError(f"unknown element {name!r}") from None

    def elements(self) -> Tuple[Element, ...]:
        return tuple(self._elements.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._elements)

    def basic_events(self) -> Tuple[BasicEvent, ...]:
        return tuple(e for e in self._elements.values() if isinstance(e, BasicEvent))

    # ------------------------------------------------------------- parameters
    @property
    def parameters(self) -> Dict[str, float]:
        """Declared rate parameters (name -> nominal value), a copy."""
        return dict(self._parameters)

    @property
    def is_parametric(self) -> bool:
        """True iff at least one rate parameter is declared."""
        return bool(self._parameters)

    def parameter(self, name: str) -> float:
        """Nominal value of a declared parameter."""
        try:
            return self._parameters[name]
        except KeyError:
            raise FaultTreeError(f"unknown rate parameter {name!r}") from None

    def parametric_events(self) -> Tuple[BasicEvent, ...]:
        """Basic events with at least one rate bound to a parameter."""
        return tuple(e for e in self.basic_events() if e.is_parametric)

    def gates(self) -> Tuple[Element, ...]:
        return tuple(e for e in self._elements.values() if is_gate(e))

    def spare_gates(self) -> Tuple[SpareGate, ...]:
        return tuple(e for e in self._elements.values() if isinstance(e, SpareGate))

    def fdep_gates(self) -> Tuple[FdepGate, ...]:
        return tuple(e for e in self._elements.values() if isinstance(e, FdepGate))

    def seq_gates(self) -> Tuple[SeqGate, ...]:
        return tuple(e for e in self._elements.values() if isinstance(e, SeqGate))

    def inhibitions(self) -> Tuple[InhibitionConstraint, ...]:
        return tuple(
            e for e in self._elements.values() if isinstance(e, InhibitionConstraint)
        )

    # ----------------------------------------------------------- tree shape
    def children(self, name: str) -> Tuple[str, ...]:
        """All inputs of ``name`` (including constraint inputs)."""
        return self.element(name).inputs

    def parents(self, name: str) -> Tuple[str, ...]:
        """All elements that list ``name`` among their inputs."""
        self.element(name)
        return tuple(
            parent.name for parent in self._elements.values() if name in parent.inputs
        )

    def logic_parents(self, name: str) -> Tuple[str, ...]:
        """Parents whose *failure logic* consumes the firing signal of ``name``.

        FDEP gates and inhibition constraints are excluded: their output is a
        dummy and they do not listen to the failure of their dependents in the
        usual sense (the wiring of auxiliaries is handled by the conversion).
        """
        self.element(name)
        return tuple(
            parent.name
            for parent in self._elements.values()
            if isinstance(parent, LOGIC_GATES) and name in parent.inputs
        )

    def descendants(self, name: str, include_self: bool = True) -> FrozenSet[str]:
        """The closure of ``name`` under the input relation."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.children(current))
        if not include_self:
            seen.discard(name)
        return frozenset(seen)

    def basic_events_below(self, name: str) -> Tuple[str, ...]:
        """Names of the basic events in the subtree rooted at ``name``."""
        return tuple(
            sorted(
                member
                for member in self.descendants(name)
                if isinstance(self.element(member), BasicEvent)
            )
        )

    def topological_order(self) -> Tuple[str, ...]:
        """Elements ordered so that every element appears after its inputs."""
        order: List[str] = []
        mark: Dict[str, int] = {}

        def visit(node: str, stack: Tuple[str, ...]) -> None:
            state = mark.get(node, 0)
            if state == 2:
                return
            if state == 1:
                cycle = " -> ".join(stack + (node,))
                raise FaultTreeError(f"the fault tree contains a cycle: {cycle}")
            mark[node] = 1
            for child in self.children(node):
                if child not in self._elements:
                    raise FaultTreeError(
                        f"element {node!r} references unknown input {child!r}"
                    )
                visit(child, stack + (node,))
            mark[node] = 2
            order.append(node)

        for name in self._elements:
            visit(name, ())
        return tuple(order)

    # ------------------------------------------------------- spare structure
    def spare_gates_using(self, name: str) -> Tuple[SpareGate, ...]:
        """Spare gates that list ``name`` among their spares."""
        return tuple(g for g in self.spare_gates() if name in g.spares)

    def spare_gates_with_primary(self, name: str) -> Tuple[SpareGate, ...]:
        """Spare gates whose primary is ``name``."""
        return tuple(g for g in self.spare_gates() if g.primary == name)

    def is_spare_of_some_gate(self, name: str) -> bool:
        return bool(self.spare_gates_using(name))

    def fdep_triggers_of(self, name: str) -> Tuple[str, ...]:
        """Triggers of all FDEP gates that list ``name`` as a dependent."""
        return tuple(g.trigger for g in self.fdep_gates() if name in g.dependents)

    def inhibitors_of(self, name: str) -> Tuple[str, ...]:
        """Elements whose failure inhibits the failure of ``name``."""
        return tuple(c.inhibitor for c in self.inhibitions() if c.target == name)

    # -------------------------------------------------------------- character
    @property
    def is_static(self) -> bool:
        """True iff the tree uses only basic events and static gates."""
        return all(is_static(e) for e in self._elements.values())

    @property
    def is_repairable(self) -> bool:
        """True iff at least one basic event has a repair rate."""
        return any(be.is_repairable for be in self.basic_events())

    def dynamic_elements(self) -> Tuple[Element, ...]:
        return tuple(e for e in self._elements.values() if is_dynamic(e))

    # -------------------------------------------------------------- validation
    def validate(self) -> List[str]:
        """Check structural well-formedness.

        Hard errors raise :class:`~repro.errors.FaultTreeError`; questionable
        but analysable constructs are returned as a list of warning strings.
        """
        warnings: List[str] = []
        if self._top is None:
            raise FaultTreeError(f"fault tree {self.name!r} has no top event")
        if self._top not in self._elements:
            raise FaultTreeError(f"top event {self._top!r} is not an element of the tree")

        # Unknown references and cycles (topological_order raises on both).
        self.topological_order()

        # Parameter bindings must refer to declared parameters, and the
        # resolved nominal rate on the event must agree with the declaration
        # (the builder and the Galileo reader resolve from the declaration, so
        # a mismatch signals a hand-constructed inconsistency).
        for event in self.basic_events():
            for param, rate in (
                (event.failure_rate_param, event.failure_rate),
                (event.repair_rate_param, event.repair_rate),
            ):
                if param is None:
                    continue
                if param not in self._parameters:
                    raise FaultTreeError(
                        f"basic event {event.name!r} references undefined rate "
                        f"parameter {param!r}"
                    )
                if rate != self._parameters[param]:
                    raise FaultTreeError(
                        f"basic event {event.name!r}: nominal rate {rate} disagrees "
                        f"with parameter {param!r} = {self._parameters[param]}"
                    )

        top_element = self.element(self.top)
        if isinstance(top_element, CONSTRAINT_GATES):
            raise FaultTreeError(
                f"the top event {self.top!r} is a constraint gate with a dummy output"
            )

        # Constraint gates must not feed failure logic.
        for gate in self.gates():
            if isinstance(gate, LOGIC_GATES):
                for child in gate.inputs:
                    if isinstance(self.element(child), CONSTRAINT_GATES):
                        raise FaultTreeError(
                            f"gate {gate.name!r} uses the dummy output of {child!r} "
                            "as an input"
                        )

        # Unreachable elements are allowed but reported.
        reachable = set(self.descendants(self.top))
        for constraint in self.fdep_gates() + self.inhibitions():
            if any(child in reachable for child in constraint.inputs):
                reachable.add(constraint.name)
                reachable.update(self.descendants(constraint.name))
        for name in self._elements:
            if name not in reachable:
                warnings.append(f"element {name!r} is not connected to the top event")

        # Spare-module independence (Section 6.1): the elements strictly below
        # a spare-gate input must not be shared with the outside world.
        for gate in self.spare_gates():
            for module_root in gate.inputs:
                internal = self.descendants(module_root, include_self=False)
                for member in internal:
                    outside_parents = [
                        parent
                        for parent in self.logic_parents(member)
                        if parent not in internal and parent != module_root
                    ]
                    if outside_parents:
                        warnings.append(
                            f"spare module {module_root!r} of gate {gate.name!r} is not "
                            f"independent: {member!r} is also used by "
                            + ", ".join(repr(p) for p in outside_parents)
                        )

        # An element should not be a primary of one gate and a spare of another.
        for gate in self.spare_gates():
            for other in self.spare_gates():
                if gate.name == other.name:
                    continue
                if gate.primary in other.spares:
                    warnings.append(
                        f"{gate.primary!r} is the primary of {gate.name!r} but a spare "
                        f"of {other.name!r}; activation becomes ambiguous"
                    )

        # Repairable trees: dynamic gates other than FDEP are not supported by
        # the repairable semantics implemented here (the paper only sketches
        # BE/AND; we implement all static gates).
        if self.is_repairable:
            for element in self.dynamic_elements():
                if not isinstance(element, FdepGate):
                    warnings.append(
                        f"repairable tree uses dynamic element {element.name!r}; "
                        "repair of dynamic gates follows the cold-restart semantics "
                        "documented in repro.core.semantics"
                    )
        return warnings

    # ------------------------------------------------------------------ misc
    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for element in self._elements.values():
            kinds[type(element).__name__] = kinds.get(type(element).__name__, 0) + 1
        breakdown = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"{self.name}: {len(self)} elements ({breakdown}), top={self._top!r}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DynamicFaultTree({self.name!r}, elements={len(self)}, top={self._top!r})"
