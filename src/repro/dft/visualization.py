"""Graphviz export of dynamic fault trees.

Produces a ``dot`` digraph in the visual style of the paper's figures: basic
events as circles, static gates as boxes, dynamic gates as double boxes,
constraint gates (FDEP, inhibition) as dashed boxes with dashed edges to the
elements they constrain.  Intended for documentation and debugging; rendering
requires an external Graphviz installation (not a dependency).
"""

from __future__ import annotations

from typing import List

from .elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from .tree import DynamicFaultTree


def _gate_label(element) -> str:
    if isinstance(element, AndGate):
        return "AND"
    if isinstance(element, OrGate):
        return "OR"
    if isinstance(element, VotingGate):
        return f"{element.threshold}/{len(element.inputs)}"
    if isinstance(element, PandGate):
        return "PAND"
    if isinstance(element, SpareGate):
        return "SPARE"
    if isinstance(element, SeqGate):
        return "SEQ"
    if isinstance(element, FdepGate):
        return "FDEP"
    if isinstance(element, InhibitionConstraint):
        return "INHIBIT"
    return type(element).__name__


def to_dot(tree: DynamicFaultTree) -> str:
    """Render ``tree`` as a Graphviz digraph string."""
    lines: List[str] = [f'digraph "{tree.name}" {{', "  rankdir=BT;"]
    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            label = f"{name}\\nλ={element.failure_rate:g}"
            if element.dormancy != 1.0:
                label += f", α={element.dormancy:g}"
            if element.repair_rate is not None:
                label += f", μ={element.repair_rate:g}"
            lines.append(f'  "{name}" [shape=circle, label="{label}"];')
        elif isinstance(element, (FdepGate, InhibitionConstraint)):
            lines.append(
                f'  "{name}" [shape=box, style=dashed, label="{name}\\n{_gate_label(element)}"];'
            )
        else:
            peripheries = 2 if isinstance(element, (PandGate, SpareGate, SeqGate)) else 1
            lines.append(
                f'  "{name}" [shape=box, peripheries={peripheries}, '
                f'label="{name}\\n{_gate_label(element)}"];'
            )
    if tree.has_top:
        lines.append(f'  "{tree.top}" [penwidth=2];')

    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            continue
        if isinstance(element, FdepGate):
            lines.append(f'  "{element.trigger}" -> "{name}" [style=dashed, label="trigger"];')
            for dependent in element.dependents:
                lines.append(f'  "{name}" -> "{dependent}" [style=dashed, dir=forward];')
            continue
        if isinstance(element, InhibitionConstraint):
            lines.append(f'  "{element.inhibitor}" -> "{name}" [style=dashed, label="inhibitor"];')
            lines.append(f'  "{name}" -> "{element.target}" [style=dashed];')
            continue
        if isinstance(element, SpareGate):
            lines.append(f'  "{element.primary}" -> "{name}" [label="primary"];')
            for spare in element.spares:
                lines.append(f'  "{spare}" -> "{name}" [label="spare", style=dotted];')
            continue
        for child in element.inputs:
            lines.append(f'  "{child}" -> "{name}";')
    lines.append("}")
    return "\n".join(lines)


def write_dot(tree: DynamicFaultTree, path: str) -> None:
    """Write the dot rendering of ``tree`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(tree))
