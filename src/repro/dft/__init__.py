"""Dynamic fault tree object model.

The package provides the DFT element classes, the tree container with
structural queries and validation, a fluent builder, independent-module
detection and the Galileo textual format.
"""

from . import galileo, visualization
from .builder import FaultTreeBuilder
from .elements import (
    AndGate,
    BasicEvent,
    CONSTRAINT_GATES,
    DYNAMIC_GATES,
    Element,
    FdepGate,
    Gate,
    InhibitionConstraint,
    LOGIC_GATES,
    OrGate,
    PandGate,
    STATIC_GATES,
    SeqGate,
    SpareGate,
    VotingGate,
    is_basic_event,
    is_dynamic,
    is_gate,
    is_static,
)
from .modules import (
    Module,
    diftree_modules,
    independent_modules,
    is_independent_module,
    module_is_dynamic,
)
from .tree import DynamicFaultTree

__all__ = [
    "AndGate",
    "BasicEvent",
    "CONSTRAINT_GATES",
    "DYNAMIC_GATES",
    "DynamicFaultTree",
    "Element",
    "FaultTreeBuilder",
    "FdepGate",
    "Gate",
    "InhibitionConstraint",
    "LOGIC_GATES",
    "Module",
    "OrGate",
    "PandGate",
    "STATIC_GATES",
    "SeqGate",
    "SpareGate",
    "VotingGate",
    "diftree_modules",
    "galileo",
    "independent_modules",
    "is_basic_event",
    "is_dynamic",
    "is_gate",
    "is_independent_module",
    "is_static",
    "module_is_dynamic",
    "visualization",
]
