"""Canonical structural hashing of dynamic fault trees.

The expensive part of the compositional pipeline — conversion, composition,
bisimulation minimisation — depends only on the *structure* of a fault tree:
the DAG shape, the gate types (and their order-sensitive input lists), the
dormancy/repairability character of the basic events and the pattern of
shared rate parameters.  Concrete failure/repair rates only relabel Markovian
transitions, which the parametric-rate machinery (:mod:`repro.ioimc.rates`)
already factors out.  Two trees that differ only in element names,
declaration order or rate values therefore share every expensive artefact.

This module defines that equivalence:

* :func:`canonical_order` assigns every element a position-derived canonical
  index — names never enter the ordering, so renaming events or permuting the
  Galileo declaration order leaves the indices (and everything below) fixed;
* :func:`structural_records` flattens the tree into per-element records over
  canonical indices (gate kinds, ordered input indices, voting thresholds,
  dormancy, repairability, and the *parameter axes*: which events share a
  declared rate parameter — not the parameter names or values);
* :func:`structural_hash` digests the records into the content-address the
  skeleton store (:mod:`repro.service.store`) keys its cache with;
* :func:`canonical_parametrisation` builds the canonical representative of
  the equivalence class: a clone whose elements are renamed by canonical
  index and whose every rate is bound to a canonical per-event parameter
  (``sf<i>`` / ``sr<i>``), so the aggregated skeleton built from it is valid
  for *any* tree with the same hash;
* :func:`canonical_assignment` / :func:`canonical_parameter_map` translate a
  concrete tree (and its user-declared sweep parameters) into assignments of
  those canonical parameters.

The hash is versioned (:data:`HASH_VERSION`): any change to the record
format must bump it so stale cache entries are never served.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import FaultTreeError
from .elements import (
    AndGate,
    BasicEvent,
    CONSTRAINT_GATES,
    Element,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from .tree import DynamicFaultTree

#: Version tag mixed into every digest; bump on any record-format change.
HASH_VERSION = 1

#: Canonical per-event parameter names of :func:`canonical_parametrisation`.
CANONICAL_FAILURE_PARAM = "sf{index}"
CANONICAL_REPAIR_PARAM = "sr{index}"
#: Canonical element names of the parametrised clone.
CANONICAL_ELEMENT_NAME = "n{index}"

_KIND_TAGS: Tuple[Tuple[type, str], ...] = (
    (BasicEvent, "be"),
    (AndGate, "and"),
    (OrGate, "or"),
    (VotingGate, "vote"),
    (PandGate, "pand"),
    (SpareGate, "wsp"),
    (FdepGate, "fdep"),
    (SeqGate, "seq"),
    (InhibitionConstraint, "inhibit"),
)


def _kind_tag(element: Element) -> str:
    for cls, tag in _KIND_TAGS:
        if isinstance(element, cls):
            return tag
    raise FaultTreeError(
        f"cannot hash unknown element type {type(element).__name__}"
    )  # pragma: no cover - the element union is closed


def _float_token(value: float) -> str:
    """An exact, platform-independent token for a structural float (dormancy)."""
    return float(value).hex()


def _fingerprints(tree: DynamicFaultTree) -> Dict[str, str]:
    """Name-free structural fingerprint of every element's input cone.

    Computed bottom-up in topological order (which also rejects cycles and
    dangling references), so shared sub-DAGs get identical fingerprints.  The
    fingerprint deliberately ignores sharing *between* elements — canonical
    indices (assigned later) capture that — it only has to be stable under
    renames and declaration-order permutations so it can order elements that
    the top-event traversal does not reach.
    """
    prints: Dict[str, str] = {}
    for name in tree.topological_order():
        element = tree.element(name)
        parts = [_kind_tag(element)]
        if isinstance(element, BasicEvent):
            parts.append(_float_token(element.dormancy))
            parts.append("rep" if element.is_repairable else "norep")
            parts.append("fp" if element.failure_rate_param is not None else "-")
            parts.append("rp" if element.repair_rate_param is not None else "-")
        elif isinstance(element, VotingGate):
            parts.append(str(element.threshold))
        parts.extend(prints[child] for child in element.inputs)
        prints[name] = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return prints


def canonical_order(tree: DynamicFaultTree) -> Tuple[str, ...]:
    """Element names in canonical (position-derived) order.

    The order is determined purely by structure:

    1. a pre-order depth-first walk from the top event, children in input
       order (renames and declaration order cannot affect it);
    2. constraint gates (FDEP, inhibition) not reached from the top, visited
       in ascending order of a key built from already-assigned indices and
       name-free fingerprints;
    3. any remaining (disconnected) elements, in fingerprint order.

    Ties in steps 2-3 can only occur between structurally indistinguishable
    elements, for which any order yields the same records — the hash is
    well-defined either way.
    """
    prints = _fingerprints(tree)
    assigned: Dict[str, int] = {}
    order: List[str] = []

    def visit(name: str) -> None:
        stack = [name]
        while stack:
            current = stack.pop()
            if current in assigned:
                continue
            assigned[current] = len(order)
            order.append(current)
            # Reversed so the leftmost input is visited (and numbered) first.
            stack.extend(reversed(tree.element(current).inputs))

    if tree.has_top:
        visit(tree.top)

    def pending_key(name: str) -> Tuple:
        element = tree.element(name)
        children = tuple(
            (0, assigned[child]) if child in assigned else (1, prints[child])
            for child in element.inputs
        )
        return (prints[name], children)

    constraints = [
        name
        for name in tree.names()
        if isinstance(tree.element(name), CONSTRAINT_GATES) and name not in assigned
    ]
    while constraints:
        constraints.sort(key=pending_key)
        visit(constraints.pop(0))
        constraints = [name for name in constraints if name not in assigned]

    leftovers = [name for name in tree.names() if name not in assigned]
    for name in sorted(leftovers, key=lambda n: prints[n]):
        if name not in assigned:
            visit(name)
    return tuple(order)


def _parameter_axes(
    tree: DynamicFaultTree, order: Tuple[str, ...]
) -> Dict[str, int]:
    """Canonical class ids of the declared parameters, by first use in order.

    Two trees whose events share parameters in the same *pattern* get the
    same axis classes whatever the parameters are called; changing which
    events share an axis changes the classes (and hence the hash).
    """
    classes: Dict[str, int] = {}
    for name in order:
        element = tree.element(name)
        if not isinstance(element, BasicEvent):
            continue
        for param in (element.failure_rate_param, element.repair_rate_param):
            if param is not None and param not in classes:
                classes[param] = len(classes)
    return classes


def structural_records(
    tree: DynamicFaultTree, order: Optional[Tuple[str, ...]] = None
) -> Tuple[Tuple, ...]:
    """The canonical per-element records the structural hash digests.

    Each record is built from canonical indices only; concrete failure and
    repair rates never appear.  The first record carries the format version
    and the canonical index of the top event.  ``order`` accepts a
    precomputed :func:`canonical_order` so one walk can feed several
    derivations (see :func:`canonical_profile`).
    """
    if order is None:
        order = canonical_order(tree)
    index = {name: position for position, name in enumerate(order)}
    axes = _parameter_axes(tree, order)
    records: List[Tuple] = [
        ("dft-hash", HASH_VERSION, index[tree.top] if tree.has_top else -1)
    ]
    for name in order:
        element = tree.element(name)
        tag = _kind_tag(element)
        if isinstance(element, BasicEvent):
            records.append(
                (
                    tag,
                    index[name],
                    _float_token(element.dormancy),
                    element.is_repairable,
                    None
                    if element.failure_rate_param is None
                    else axes[element.failure_rate_param],
                    None
                    if element.repair_rate_param is None
                    else axes[element.repair_rate_param],
                )
            )
        elif isinstance(element, VotingGate):
            records.append(
                (
                    tag,
                    index[name],
                    element.threshold,
                    tuple(index[child] for child in element.inputs),
                )
            )
        elif isinstance(element, SpareGate):
            records.append(
                (
                    tag,
                    index[name],
                    index[element.primary],
                    tuple(index[spare] for spare in element.spares),
                )
            )
        elif isinstance(element, FdepGate):
            records.append(
                (
                    tag,
                    index[name],
                    index[element.trigger],
                    tuple(index[dependent] for dependent in element.dependents),
                )
            )
        elif isinstance(element, InhibitionConstraint):
            records.append(
                (tag, index[name], index[element.inhibitor], index[element.target])
            )
        else:
            records.append(
                (tag, index[name], tuple(index[child] for child in element.inputs))
            )
    return tuple(records)


def structural_hash(
    tree: DynamicFaultTree, order: Optional[Tuple[str, ...]] = None
) -> str:
    """The canonical structural content-address of ``tree`` (hex sha256).

    Invariant under event renaming, declaration-order permutation and any
    change of concrete failure/repair rates; sensitive to tree shape, gate
    types, order-sensitive input lists, voting thresholds, dormancy,
    repairability and the parameter-sharing axes.
    """
    digest = hashlib.sha256()
    for record in structural_records(tree, order):
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# the canonical representative of a hash class
# ---------------------------------------------------------------------------

def _canonical_elements(
    tree: DynamicFaultTree, order: Tuple[str, ...]
) -> List[Element]:
    """The tree's elements renamed (and re-parametrised) by canonical index."""
    index = {name: position for position, name in enumerate(order)}

    def rename(name: str) -> str:
        return CANONICAL_ELEMENT_NAME.format(index=index[name])

    elements: List[Element] = []
    for name in order:
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            elements.append(
                BasicEvent(
                    name=rename(name),
                    failure_rate=element.failure_rate,
                    dormancy=element.dormancy,
                    repair_rate=element.repair_rate,
                    failure_rate_param=CANONICAL_FAILURE_PARAM.format(
                        index=index[name]
                    ),
                    repair_rate_param=None
                    if element.repair_rate is None
                    else CANONICAL_REPAIR_PARAM.format(index=index[name]),
                )
            )
        elif isinstance(element, AndGate):
            elements.append(
                AndGate(rename(name), tuple(rename(c) for c in element.inputs))
            )
        elif isinstance(element, OrGate):
            elements.append(
                OrGate(rename(name), tuple(rename(c) for c in element.inputs))
            )
        elif isinstance(element, VotingGate):
            elements.append(
                VotingGate(
                    rename(name),
                    tuple(rename(c) for c in element.inputs),
                    element.threshold,
                )
            )
        elif isinstance(element, PandGate):
            elements.append(
                PandGate(rename(name), tuple(rename(c) for c in element.inputs))
            )
        elif isinstance(element, SeqGate):
            elements.append(
                SeqGate(rename(name), tuple(rename(c) for c in element.inputs))
            )
        elif isinstance(element, SpareGate):
            elements.append(
                SpareGate(
                    rename(name),
                    primary=rename(element.primary),
                    spares=tuple(rename(s) for s in element.spares),
                )
            )
        elif isinstance(element, FdepGate):
            elements.append(
                FdepGate(
                    rename(name),
                    trigger=rename(element.trigger),
                    dependents=tuple(rename(d) for d in element.dependents),
                )
            )
        elif isinstance(element, InhibitionConstraint):
            elements.append(
                InhibitionConstraint(
                    rename(name),
                    inhibitor=rename(element.inhibitor),
                    target=rename(element.target),
                )
            )
        else:  # pragma: no cover - the element union is closed
            raise FaultTreeError(
                f"cannot canonicalise element type {type(element).__name__}"
            )
    return elements


def canonical_parametrisation(tree: DynamicFaultTree) -> DynamicFaultTree:
    """The canonical representative of ``tree``'s structural-hash class.

    Elements are renamed to ``n<i>`` by canonical index and *every* rate is
    bound to a canonical per-event parameter (``sf<i>`` for failure, ``sr<i>``
    for repair, declared at the source tree's nominal values).  All trees
    with the same :func:`structural_hash` map to the same clone up to the
    (structurally irrelevant) nominal values, so the aggregated skeleton of
    the clone is valid for every member of the class — the property the
    skeleton store relies on.
    """
    order = canonical_order(tree)
    index = {name: position for position, name in enumerate(order)}
    clone = DynamicFaultTree(name=f"canonical-{tree.name}")
    for name in order:
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            clone.declare_parameter(
                CANONICAL_FAILURE_PARAM.format(index=index[name]),
                element.failure_rate,
            )
            if element.repair_rate is not None:
                clone.declare_parameter(
                    CANONICAL_REPAIR_PARAM.format(index=index[name]),
                    element.repair_rate,
                )
    clone.add_all(_canonical_elements(tree, order))
    if tree.has_top:
        clone.set_top(CANONICAL_ELEMENT_NAME.format(index=index[tree.top]))
    return clone


def canonical_assignment(
    tree: DynamicFaultTree, order: Optional[Tuple[str, ...]] = None
) -> Dict[str, float]:
    """``tree``'s concrete rates as an assignment of the canonical parameters.

    Instantiating the cached skeleton of ``tree``'s hash class under this
    assignment reproduces the Markov model of ``tree`` itself.
    """
    if order is None:
        order = canonical_order(tree)
    assignment: Dict[str, float] = {}
    for position, name in enumerate(order):
        element = tree.element(name)
        if not isinstance(element, BasicEvent):
            continue
        assignment[CANONICAL_FAILURE_PARAM.format(index=position)] = float(
            element.failure_rate
        )
        if element.repair_rate is not None:
            assignment[CANONICAL_REPAIR_PARAM.format(index=position)] = float(
                element.repair_rate
            )
    return assignment


def canonical_parameter_map(
    tree: DynamicFaultTree, order: Optional[Tuple[str, ...]] = None
) -> Dict[str, Tuple[str, ...]]:
    """User-declared parameter -> the canonical parameters it fans out to.

    A rate sweep assigning ``lam = x`` on ``tree`` is equivalent to assigning
    ``x`` to every canonical parameter in ``map['lam']`` on the cached
    skeleton (events sharing a user parameter each own a canonical one).
    """
    if order is None:
        order = canonical_order(tree)
    mapping: Dict[str, List[str]] = {name: [] for name in tree.parameters}
    for position, name in enumerate(order):
        element = tree.element(name)
        if not isinstance(element, BasicEvent):
            continue
        if element.failure_rate_param is not None:
            mapping[element.failure_rate_param].append(
                CANONICAL_FAILURE_PARAM.format(index=position)
            )
        if element.repair_rate_param is not None:
            mapping[element.repair_rate_param].append(
                CANONICAL_REPAIR_PARAM.format(index=position)
            )
    return {name: tuple(targets) for name, targets in mapping.items()}


class CanonicalProfile:
    """Every canonical-order derivation of one tree, from a single walk.

    ``structural_hash``, ``canonical_assignment`` and
    ``canonical_parameter_map`` each start with the same pre-order walk
    (:func:`canonical_order`); a request handler that needs two or three of
    them — the serving layer's ``/analyze`` needs the hash for the cache key
    and the assignment for evaluation — pays for the walk once here.
    """

    __slots__ = ("order", "hash", "assignment", "_tree", "_parameter_map")

    def __init__(self, tree: DynamicFaultTree):
        self.order = canonical_order(tree)
        self.hash = structural_hash(tree, self.order)
        self.assignment = canonical_assignment(tree, self.order)
        self._tree = tree
        self._parameter_map: Optional[Dict[str, Tuple[str, ...]]] = None

    @property
    def parameter_map(self) -> Dict[str, Tuple[str, ...]]:
        if self._parameter_map is None:
            self._parameter_map = canonical_parameter_map(self._tree, self.order)
        return self._parameter_map


def canonical_profile(tree: DynamicFaultTree) -> CanonicalProfile:
    """Hash + canonical assignment (+ lazy parameter map) in one tree walk."""
    return CanonicalProfile(tree)


def translate_sample(
    sample: Mapping[str, float],
    parameter_map: Optional[Mapping[str, Tuple[str, ...]]],
) -> Dict[str, float]:
    """A user sweep sample re-expressed over the canonical parameters."""
    if parameter_map is None:
        return dict(sample)
    translated: Dict[str, float] = {}
    for name, value in sample.items():
        for target in parameter_map.get(name, ()):
            translated[target] = float(value)
    return translated
