"""Reading and writing the Galileo textual DFT format.

The paper's tool chain "takes as input a DFT specified in the Galileo DFT
format" (Section 5.1).  The format is line oriented::

    toplevel "System";
    "System" or "CPU" "Motors" "Pumps";
    "CPU" wsp "P" "B";
    "Trigger" or "CS" "SS";
    "CPUfdep" fdep "Trigger" "P" "B";
    "P" lambda=0.5 dorm=0.5;

* the first non-comment line names the top event,
* every other line either defines a gate (``name gatetype inputs...``) or a
  basic event (``name param=value ...``),
* lines are terminated by ``;``; ``//`` starts a comment; names may be quoted.

Supported gate keywords: ``and``, ``or``, ``pand``, ``seq``, ``fdep``,
``wsp``/``csp``/``hsp``/``spare`` (all mapped to :class:`SpareGate` — the
spares' dormancy lives on the basic events), the voting pattern ``KofM``
(e.g. ``2of3``), and the extension keyword ``inhibit`` (first input inhibits
the second, Section 7.1 of the paper).

Supported basic-event parameters: ``lambda`` (failure rate), ``dorm``
(dormancy factor, default 1) and ``repair`` (repair rate, extension of
Section 7.2).

**Rate-parameter extension** (used by the rate-sweep engine,
:mod:`repro.core.sweep`): a statement ``param <name> = <value>;`` declares a
named rate parameter with its nominal value, and a basic event may bind its
failure or repair rate to it by name instead of a number::

    param lam = 0.5;
    "P" lambda=lam dorm=0.3;

The bare keyword ``param`` opens a declaration; quote the name (``"param"``)
to use it as an ordinary element, exactly as quoting escapes other keywords.
Parameter declarations may appear anywhere in the file; references are
resolved after all declarations have been read.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GalileoSyntaxError
from .elements import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
)
from .tree import DynamicFaultTree

_VOTING_RE = re.compile(r"^(\d+)of(\d+)$", re.IGNORECASE)
_PARAM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*([-+0-9.eE]+)$")
_PARAM_REF_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*([A-Za-z_][A-Za-z0-9_]*)$")

_SPARE_KEYWORDS = {"wsp", "csp", "hsp", "spare"}
_GATE_KEYWORDS = {"and", "or", "pand", "seq", "fdep", "inhibit"} | _SPARE_KEYWORDS


def _strip_comments(text: str) -> List[Tuple[int, str]]:
    """Return (line number, content) pairs with comments removed."""
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if line:
            lines.append((number, line))
    return lines


def _tokenize(line: str, number: int) -> List[str]:
    """Split a statement into tokens, honouring double quotes."""
    tokens = []
    current = ""
    in_quotes = False
    for char in line:
        if char == '"':
            in_quotes = not in_quotes
            continue
        if char.isspace() and not in_quotes:
            if current:
                tokens.append(current)
                current = ""
            continue
        current += char
    if in_quotes:
        raise GalileoSyntaxError("unterminated quoted name", number)
    if current:
        tokens.append(current)
    return tokens


#: Basic-event keys that may reference a declared rate parameter by name.
_PARAMETRISABLE_KEYS = {"lambda", "repair"}


def _parse_parameters(
    name: str,
    tokens: Sequence[str],
    number: int,
    declared: Dict[str, float],
) -> BasicEvent:
    params: Dict[str, float] = {}
    bindings: Dict[str, str] = {}
    for token in tokens:
        match = _PARAM_RE.match(token)
        value: Optional[float] = None
        if match:
            key = match.group(1).lower()
            try:
                value = float(match.group(2))
            except ValueError:
                value = None  # e.g. `lambda=e`: fall through to reference handling
        if value is None:
            ref = _PARAM_REF_RE.match(token)
            if not ref:
                raise GalileoSyntaxError(
                    f"cannot parse basic event parameter {token!r} of {name!r}", number
                )
            key = ref.group(1).lower()
            reference = ref.group(2)
            if key not in _PARAMETRISABLE_KEYS:
                raise GalileoSyntaxError(
                    f"parameter {key!r} of {name!r} has a non-numeric value", number
                )
            if reference not in declared:
                raise GalileoSyntaxError(
                    f"basic event {name!r} references undefined parameter "
                    f"{reference!r} (declare it with 'param {reference} = <value>;')",
                    number,
                )
            bindings[key] = reference
            value = declared[reference]
        if key in params:
            raise GalileoSyntaxError(
                f"basic event {name!r} sets parameter {key!r} twice", number
            )
        params[key] = value
    if "prob" in params:
        raise GalileoSyntaxError(
            f"basic event {name!r} uses a constant failure probability (prob=); "
            "only exponential failure distributions (lambda=) are supported",
            number,
        )
    if "lambda" not in params:
        raise GalileoSyntaxError(
            f"basic event {name!r} is missing its failure rate (lambda=)", number
        )
    known = {"lambda", "dorm", "repair"}
    unknown = set(params) - known
    if unknown:
        raise GalileoSyntaxError(
            f"basic event {name!r} has unsupported parameters: " + ", ".join(sorted(unknown)),
            number,
        )
    return BasicEvent(
        name=name,
        failure_rate=params["lambda"],
        dormancy=params.get("dorm", 1.0),
        repair_rate=params.get("repair"),
        failure_rate_param=bindings.get("lambda"),
        repair_rate_param=bindings.get("repair"),
    )


def _parse_param_declaration(
    tokens: Sequence[str], number: int
) -> Tuple[str, float]:
    """Parse ``param <name> = <value>`` (the ``=`` is optional)."""
    body = [token for token in tokens[1:] if token != "="]
    if len(body) == 1 and "=" in body[0]:
        body = [part.strip() for part in body[0].split("=", 1)]
    if len(body) != 2:
        raise GalileoSyntaxError(
            "param declarations have the form 'param <name> = <value>;'", number
        )
    name, raw_value = body
    if not name.isidentifier():
        raise GalileoSyntaxError(
            f"parameter name {name!r} is not a valid identifier", number
        )
    try:
        value = float(raw_value)
    except ValueError:
        raise GalileoSyntaxError(
            f"parameter {name!r} has a non-numeric value {raw_value!r}", number
        ) from None
    if not (value > 0.0 and math.isfinite(value)):
        raise GalileoSyntaxError(
            f"parameter {name!r} needs a positive finite rate, got {raw_value}", number
        )
    return name, value


def parse(text: str, name: str = "galileo") -> DynamicFaultTree:
    """Parse a Galileo description into a :class:`DynamicFaultTree`."""
    statements: List[Tuple[int, str]] = []
    for number, line in _strip_comments(text):
        for statement in line.split(";"):
            statement = statement.strip()
            if statement:
                statements.append((number, statement))

    if not statements:
        raise GalileoSyntaxError("the description contains no statements")

    tree = DynamicFaultTree(name)
    toplevel: Optional[str] = None

    # Pass 1: tokenize once and collect rate-parameter declarations (they may
    # appear anywhere, including after the basic events that reference them).
    # Only the *bare* keyword opens a declaration — a quoted ``"param"`` is an
    # ordinary element name, exactly as quoting escapes every other keyword.
    def _is_param_declaration(statement: str, tokens: List[str]) -> bool:
        return (
            bool(tokens)
            and tokens[0].lower() == "param"
            and not statement.lstrip().startswith('"')
        )

    tokenized: List[Tuple[int, str, List[str]]] = [
        (number, statement, _tokenize(statement, number))
        for number, statement in statements
    ]
    declared: Dict[str, float] = {}
    for number, statement, tokens in tokenized:
        if not _is_param_declaration(statement, tokens):
            continue
        param_name, value = _parse_param_declaration(tokens, number)
        if param_name in declared:
            raise GalileoSyntaxError(
                f"rate parameter {param_name!r} is declared twice", number
            )
        declared[param_name] = value
    for param_name, value in declared.items():
        tree.declare_parameter(param_name, value)

    # Pass 2: elements.
    for number, statement, tokens in tokenized:
        if not tokens:
            continue
        head = tokens[0]
        if _is_param_declaration(statement, tokens):
            continue
        if head.lower() == "toplevel":
            if len(tokens) != 2:
                raise GalileoSyntaxError("toplevel expects exactly one element name", number)
            if toplevel is not None:
                raise GalileoSyntaxError("toplevel declared twice", number)
            toplevel = tokens[1]
            continue

        if len(tokens) < 2:
            raise GalileoSyntaxError(f"incomplete definition of {head!r}", number)

        keyword = tokens[1]
        lowered = keyword.lower()
        voting_match = _VOTING_RE.match(lowered)

        if lowered in _GATE_KEYWORDS or voting_match:
            inputs = tokens[2:]
            if voting_match:
                threshold = int(voting_match.group(1))
                declared = int(voting_match.group(2))
                if declared != len(inputs):
                    raise GalileoSyntaxError(
                        f"voting gate {head!r} declares {declared} inputs but lists "
                        f"{len(inputs)}",
                        number,
                    )
                tree.add(VotingGate(name=head, inputs=tuple(inputs), threshold=threshold))
            elif lowered == "and":
                tree.add(AndGate(name=head, inputs=tuple(inputs)))
            elif lowered == "or":
                tree.add(OrGate(name=head, inputs=tuple(inputs)))
            elif lowered == "pand":
                tree.add(PandGate(name=head, inputs=tuple(inputs)))
            elif lowered == "seq":
                tree.add(SeqGate(name=head, inputs=tuple(inputs)))
            elif lowered == "fdep":
                if len(inputs) < 2:
                    raise GalileoSyntaxError(
                        f"FDEP gate {head!r} needs a trigger and at least one dependent",
                        number,
                    )
                tree.add(
                    FdepGate(name=head, trigger=inputs[0], dependents=tuple(inputs[1:]))
                )
            elif lowered == "inhibit":
                if len(inputs) != 2:
                    raise GalileoSyntaxError(
                        f"inhibit {head!r} needs exactly an inhibitor and a target", number
                    )
                tree.add(
                    InhibitionConstraint(name=head, inhibitor=inputs[0], target=inputs[1])
                )
            elif lowered in _SPARE_KEYWORDS:
                if len(inputs) < 2:
                    raise GalileoSyntaxError(
                        f"spare gate {head!r} needs a primary and at least one spare", number
                    )
                tree.add(
                    SpareGate(name=head, primary=inputs[0], spares=tuple(inputs[1:]))
                )
            continue

        # Otherwise it must be a basic event definition.
        tree.add(_parse_parameters(head, tokens[1:], number, declared))

    if toplevel is None:
        raise GalileoSyntaxError("missing toplevel declaration")
    if toplevel not in tree:
        raise GalileoSyntaxError(f"toplevel element {toplevel!r} is never defined")
    tree.set_top(toplevel)
    tree.validate()
    return tree


def parse_file(path: str, name: Optional[str] = None) -> DynamicFaultTree:
    """Parse a Galileo file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse(text, name=name if name is not None else path)


def _format_float(value: float) -> str:
    return f"{value:.10g}"


def write(tree: DynamicFaultTree) -> str:
    """Serialise ``tree`` in Galileo syntax (inverse of :func:`parse`)."""
    lines = [f'toplevel "{tree.top}";']
    for param_name, value in tree.parameters.items():
        lines.append(f"param {param_name} = {_format_float(value)};")
    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            if element.failure_rate_param is not None:
                failure = element.failure_rate_param
            else:
                failure = _format_float(element.failure_rate)
            parts = [f'"{name}"', f"lambda={failure}"]
            if element.dormancy != 1.0:
                parts.append(f"dorm={_format_float(element.dormancy)}")
            if element.repair_rate is not None:
                if element.repair_rate_param is not None:
                    parts.append(f"repair={element.repair_rate_param}")
                else:
                    parts.append(f"repair={_format_float(element.repair_rate)}")
            lines.append(" ".join(parts) + ";")
            continue
        if isinstance(element, AndGate):
            keyword = "and"
        elif isinstance(element, OrGate):
            keyword = "or"
        elif isinstance(element, VotingGate):
            keyword = f"{element.threshold}of{len(element.inputs)}"
        elif isinstance(element, PandGate):
            keyword = "pand"
        elif isinstance(element, SeqGate):
            keyword = "seq"
        elif isinstance(element, SpareGate):
            keyword = "wsp"
        elif isinstance(element, FdepGate):
            keyword = "fdep"
        elif isinstance(element, InhibitionConstraint):
            keyword = "inhibit"
        else:  # pragma: no cover - defensive
            raise GalileoSyntaxError(f"cannot serialise element {name!r}")
        inputs = " ".join(f'"{child}"' for child in element.inputs)
        lines.append(f'"{name}" {keyword} {inputs};')
    return "\n".join(lines) + "\n"


def write_file(tree: DynamicFaultTree, path: str) -> None:
    """Write ``tree`` to ``path`` in Galileo syntax."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write(tree))
