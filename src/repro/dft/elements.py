"""Dynamic fault tree elements.

A DFT is a directed acyclic graph built from *basic events* (leaves) and
*gates*.  This module defines one small immutable dataclass per element type.
Elements reference their inputs by name; the containing
:class:`~repro.dft.tree.DynamicFaultTree` resolves and validates the
references.

Element families (Section 2 of the paper):

* static gates: :class:`AndGate`, :class:`OrGate`, :class:`VotingGate`;
* dynamic gates: :class:`PandGate`, :class:`SpareGate`, :class:`FdepGate`,
  :class:`SeqGate` (the sequence-enforcing gate, emulated via cold-spare
  semantics as noted in the paper's footnote 4);
* the extension elements of Section 7: :class:`InhibitionConstraint`
  (mutual exclusivity is two symmetric inhibitions) and repairable basic
  events (a :class:`BasicEvent` with a ``repair_rate``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..errors import FaultTreeError


def _check_name(name: str) -> None:
    if not name or not isinstance(name, str):
        raise FaultTreeError("element names must be non-empty strings")


# ---------------------------------------------------------------------------
# basic events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BasicEvent:
    """A leaf of the fault tree: a physical component that can fail.

    Parameters
    ----------
    failure_rate:
        Rate ``lambda`` of the exponential failure distribution while the
        component is *active*.
    dormancy:
        The dormancy factor ``alpha``; the failure rate while dormant is
        ``alpha * lambda``.  ``alpha = 0`` is a *cold* basic event, ``alpha = 1``
        a *hot* one and values in between are *warm* (Section 2).
    repair_rate:
        Optional rate ``mu`` of an exponential repair (Section 7.2).  ``None``
        means the component is not repairable.
    failure_rate_param:
        Optional name of a declared rate parameter this event's failure rate
        is bound to.  ``failure_rate`` then holds the parameter's *nominal*
        value; the rate-sweep engine (:mod:`repro.core.sweep`) re-instantiates
        the aggregated model for other values of the parameter without
        re-running conversion or aggregation.
    repair_rate_param:
        Same, for the repair rate.
    """

    name: str
    failure_rate: float
    dormancy: float = 1.0
    repair_rate: Optional[float] = None
    failure_rate_param: Optional[str] = None
    repair_rate_param: Optional[str] = None

    def __post_init__(self) -> None:
        _check_name(self.name)
        for param in (self.failure_rate_param, self.repair_rate_param):
            if param is not None and not (isinstance(param, str) and param.isidentifier()):
                raise FaultTreeError(
                    f"basic event {self.name!r}: rate parameter names must be "
                    f"identifiers, got {param!r}"
                )
        if self.repair_rate_param is not None and self.repair_rate is None:
            raise FaultTreeError(
                f"basic event {self.name!r} binds a repair parameter but has no "
                "repair rate"
            )
        if not (self.failure_rate > 0.0 and math.isfinite(self.failure_rate)):
            raise FaultTreeError(
                f"basic event {self.name!r}: failure rate must be positive and finite, "
                f"got {self.failure_rate}"
            )
        if not 0.0 <= self.dormancy <= 1.0:
            raise FaultTreeError(
                f"basic event {self.name!r}: dormancy factor must lie in [0, 1], "
                f"got {self.dormancy}"
            )
        if self.repair_rate is not None and not self.repair_rate > 0.0:
            raise FaultTreeError(
                f"basic event {self.name!r}: repair rate must be positive, "
                f"got {self.repair_rate}"
            )

    # ------------------------------------------------------------------ views
    @property
    def inputs(self) -> Tuple[str, ...]:
        return ()

    @property
    def is_cold(self) -> bool:
        return self.dormancy == 0.0

    @property
    def is_hot(self) -> bool:
        return self.dormancy == 1.0

    @property
    def is_warm(self) -> bool:
        return 0.0 < self.dormancy < 1.0

    @property
    def is_repairable(self) -> bool:
        return self.repair_rate is not None

    @property
    def is_parametric(self) -> bool:
        """True iff a rate of this event is bound to a named parameter."""
        return self.failure_rate_param is not None or self.repair_rate_param is not None

    @property
    def rate_parameters(self) -> Tuple[str, ...]:
        """The declared parameter names this event's rates are bound to."""
        return tuple(
            param
            for param in (self.failure_rate_param, self.repair_rate_param)
            if param is not None
        )

    @property
    def dormant_rate(self) -> float:
        """Failure rate while dormant (``alpha * lambda``)."""
        return self.dormancy * self.failure_rate


# ---------------------------------------------------------------------------
# static gates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AndGate:
    """Fails once *all* inputs have failed."""

    name: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 1:
            raise FaultTreeError(f"AND gate {self.name!r} needs at least one input")
        _check_distinct_inputs(self)


@dataclass(frozen=True)
class OrGate:
    """Fails once *any* input has failed."""

    name: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 1:
            raise FaultTreeError(f"OR gate {self.name!r} needs at least one input")
        _check_distinct_inputs(self)


@dataclass(frozen=True)
class VotingGate:
    """The K/M gate: fails once at least ``threshold`` of its inputs have failed."""

    name: str
    inputs: Tuple[str, ...]
    threshold: int

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 1:
            raise FaultTreeError(f"voting gate {self.name!r} needs at least one input")
        if not 1 <= self.threshold <= len(self.inputs):
            raise FaultTreeError(
                f"voting gate {self.name!r}: threshold {self.threshold} must be "
                f"between 1 and the number of inputs ({len(self.inputs)})"
            )
        _check_distinct_inputs(self)


# ---------------------------------------------------------------------------
# dynamic gates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PandGate:
    """Priority-AND: fails if all inputs fail *and* they fail left-to-right.

    If an input fails before its left neighbour the gate moves to an
    operational absorbing state (it can never fail any more).
    """

    name: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 2:
            raise FaultTreeError(f"PAND gate {self.name!r} needs at least two inputs")
        _check_distinct_inputs(self)


@dataclass(frozen=True)
class SpareGate:
    """Spare gate with one primary and one or more (possibly shared) spares.

    The ``dormancy`` of the spare components is carried by the components
    themselves (cold/warm/hot basic events or whole spare modules); the gate
    only manages allocation and activation.
    """

    name: str
    primary: str
    spares: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "spares", tuple(self.spares))
        if not self.spares:
            raise FaultTreeError(f"spare gate {self.name!r} needs at least one spare")
        if self.primary in self.spares:
            raise FaultTreeError(
                f"spare gate {self.name!r}: the primary cannot also be a spare"
            )
        if len(set(self.spares)) != len(self.spares):
            raise FaultTreeError(f"spare gate {self.name!r} lists a spare twice")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.primary,) + self.spares


@dataclass(frozen=True)
class FdepGate:
    """Functional dependency: the trigger's failure fails all dependent events.

    The gate's own output is a *dummy* (never used in the failure logic).  In
    this framework both the trigger and the dependent events may be arbitrary
    elements, not only basic events (Section 6.2).
    """

    name: str
    trigger: str
    dependents: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "dependents", tuple(self.dependents))
        if not self.dependents:
            raise FaultTreeError(f"FDEP gate {self.name!r} needs at least one dependent event")
        if self.trigger in self.dependents:
            raise FaultTreeError(
                f"FDEP gate {self.name!r}: the trigger cannot depend on itself"
            )
        if len(set(self.dependents)) != len(self.dependents):
            raise FaultTreeError(f"FDEP gate {self.name!r} lists a dependent twice")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.trigger,) + self.dependents


@dataclass(frozen=True)
class SeqGate:
    """Sequence-enforcing gate: inputs can only fail from left to right.

    The paper's footnote 4 observes that a SEQ gate is behaviourally a cold
    spare gate (the next input only becomes able to fail once the previous one
    has failed); the conversion layer uses exactly that emulation.
    """

    name: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_name(self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 2:
            raise FaultTreeError(f"SEQ gate {self.name!r} needs at least two inputs")
        _check_distinct_inputs(self)


# ---------------------------------------------------------------------------
# extension elements (Section 7)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InhibitionConstraint:
    """``inhibitor`` failing first prevents ``target`` from ever failing.

    Mutual exclusivity of two failure modes (Section 7.1, the fail-open /
    fail-closed switch) is modelled by two symmetric inhibition constraints.
    Like the FDEP gate this element has a dummy output.
    """

    name: str
    inhibitor: str
    target: str

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.inhibitor == self.target:
            raise FaultTreeError(
                f"inhibition {self.name!r}: an element cannot inhibit itself"
            )

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.inhibitor, self.target)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

Gate = Union[AndGate, OrGate, VotingGate, PandGate, SpareGate, FdepGate, SeqGate,
             InhibitionConstraint]
Element = Union[BasicEvent, Gate]

#: Gate classes whose output participates in the failure logic of parents.
LOGIC_GATES = (AndGate, OrGate, VotingGate, PandGate, SpareGate, SeqGate)
#: Gate classes with a dummy output (they only constrain other elements).
CONSTRAINT_GATES = (FdepGate, InhibitionConstraint)
STATIC_GATES = (AndGate, OrGate, VotingGate)
DYNAMIC_GATES = (PandGate, SpareGate, FdepGate, SeqGate)


def is_basic_event(element: Element) -> bool:
    return isinstance(element, BasicEvent)


def is_gate(element: Element) -> bool:
    return not isinstance(element, BasicEvent)


def is_static(element: Element) -> bool:
    """Static elements are basic events and static gates."""
    return isinstance(element, (BasicEvent,) + STATIC_GATES)


def is_dynamic(element: Element) -> bool:
    return isinstance(element, DYNAMIC_GATES) or isinstance(element, InhibitionConstraint)


def element_inputs(element: Element) -> Tuple[str, ...]:
    """Uniform access to the input names of any element."""
    return element.inputs


def _check_distinct_inputs(gate) -> None:
    if len(set(gate.inputs)) != len(gate.inputs):
        raise FaultTreeError(f"gate {gate.name!r} lists the same input twice")
