"""Independent modules of a dynamic fault tree.

A *module* (independent sub-tree) rooted at an element ``m`` is a set of
elements that interacts with the rest of the tree only through the output of
``m``.  Modules can be analysed separately — this is the foundation both of
the DIFTree baseline (Section 2 of the paper) and of the improved modularity
offered by the I/O-IMC framework (Section 5.2).

Functional dependencies and inhibitions couple elements without a parent/child
edge, so the member set of a module is the descendant closure *plus* every
constraint (and its trigger cone) attached to a member
(:func:`module_members`).

Two notions are provided:

* :func:`independent_modules` — every gate whose module is independent (the
  notion the compositional approach can exploit under *any* parent gate);
* :func:`diftree_modules` — the modules DIFTree can actually solve separately.
  A child module is only detached when the surrounding context is *static*: a
  dynamic gate needs the full failure distribution of its inputs, not a single
  probability value, so a dynamic top-level gate swallows its entire sub-tree
  (the very restriction the paper lifts, illustrated by the cascaded PAND
  system of Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from .elements import (
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    STATIC_GATES,
    is_dynamic,
)
from .tree import DynamicFaultTree


def _constraints(tree: DynamicFaultTree):
    return list(tree.fdep_gates()) + list(tree.inhibitions())


def module_members(tree: DynamicFaultTree, root: str) -> FrozenSet[str]:
    """All elements belonging to the module rooted at ``root``.

    Starts from the descendant closure of ``root`` and repeatedly adds every
    FDEP/inhibition constraint that affects a member, together with the full
    cone of the constraint's inputs (triggers and other dependents).
    """
    members: Set[str] = set(tree.descendants(root))
    changed = True
    while changed:
        changed = False
        for constraint in _constraints(tree):
            if constraint.name in members:
                continue
            if isinstance(constraint, FdepGate):
                affected = constraint.dependents
            else:
                affected = (constraint.target,)
            if any(element in members for element in affected):
                members.add(constraint.name)
                for child in constraint.inputs:
                    cone = tree.descendants(child)
                    if not cone <= members:
                        members |= cone
                changed = True
    return frozenset(members)


def is_independent_module(tree: DynamicFaultTree, root: str) -> bool:
    """True iff the module rooted at ``root`` only talks to the outside via ``root``.

    * every member other than the root has all its logic parents inside,
    * every constraint touching a member lies entirely inside (a trigger that
      also fails elements outside the module would couple the module to its
      environment, and vice versa).
    """
    members = module_members(tree, root)
    for member in members:
        if member == root:
            continue
        for parent in tree.logic_parents(member):
            if parent not in members:
                return False
    for constraint in _constraints(tree):
        involved = set(constraint.inputs) | {constraint.name}
        inside = involved & members
        if inside and not involved <= members | {constraint.name}:
            return False
        if constraint.name in members and not set(constraint.inputs) <= members:
            return False
        # A member acting as a trigger of a constraint whose dependents are
        # outside couples the module to the environment as well.
        if isinstance(constraint, FdepGate):
            if constraint.trigger in members and not set(constraint.dependents) <= members:
                return False
        else:
            if constraint.inhibitor in members and constraint.target not in members:
                return False
    return True


def module_is_dynamic(tree: DynamicFaultTree, root: str) -> bool:
    """A module is dynamic iff it contains a dynamic element or a constraint."""
    members = module_members(tree, root)
    return any(is_dynamic(tree.element(member)) for member in members)


def independent_modules(tree: DynamicFaultTree) -> Tuple[str, ...]:
    """All gates rooting an independent module (basic events excluded)."""
    modules = []
    for name in tree.topological_order():
        element = tree.element(name)
        if isinstance(element, (BasicEvent, FdepGate, InhibitionConstraint)):
            continue
        if is_independent_module(tree, name):
            modules.append(name)
    return tuple(modules)


def module_subtree(tree: DynamicFaultTree, root: str) -> DynamicFaultTree:
    """A standalone fault tree containing exactly the module rooted at ``root``.

    The new tree carries the module's members (in the original insertion
    order, so canonical hashing stays stable across extractions), declares
    every parameter a member basic event references, and sets ``root`` as its
    top event.  Only meaningful for an independent module — for any other
    root the members may reference elements outside the returned tree and
    ``validate()`` will say so.
    """
    members = module_members(tree, root)
    subtree = DynamicFaultTree(name=f"{tree.name}.{root}", top=None)
    for name in tree.names():
        if name not in members:
            continue
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            for param in (element.failure_rate_param, element.repair_rate_param):
                if param is not None and param not in subtree.parameters:
                    subtree.declare_parameter(param, tree.parameter(param))
        subtree.add(element)
    subtree.set_top(root)
    return subtree


@dataclass(frozen=True)
class Module:
    """A module as used by the DIFTree-style analysis."""

    root: str
    members: FrozenSet[str]
    dynamic: bool
    #: Child modules that were detached and are referenced as pseudo basic events.
    detached: Tuple[str, ...] = ()

    @property
    def size(self) -> int:
        return len(self.members)


def diftree_modules(tree: DynamicFaultTree) -> List[Module]:
    """The modules DIFTree would solve separately.

    Starting from the top event:

    * a **static** gate whose own context (root plus non-detachable children)
      stays static may detach every child that roots an independent module;
      the detached children are solved first and replaced by constant
      probabilities;
    * a **dynamic** gate — or a static gate whose remaining context contains a
      dynamic element — swallows its entire sub-tree into a single dynamic
      module, because a Markov-chain solution cannot use constant-probability
      pseudo events.
    """
    modules: List[Module] = []
    visited: Set[str] = set()

    def contains_dynamic(members: FrozenSet[str]) -> bool:
        return any(is_dynamic(tree.element(member)) for member in members)

    def cut(root: str) -> None:
        if root in visited:
            return
        visited.add(root)
        element = tree.element(root)
        if isinstance(element, BasicEvent):
            return
        members = module_members(tree, root)

        if isinstance(element, STATIC_GATES):
            kept: Set[str] = {root}
            detachable: List[str] = []
            for child in element.inputs:
                child_element = tree.element(child)
                if not isinstance(child_element, BasicEvent) and is_independent_module(
                    tree, child
                ):
                    detachable.append(child)
                else:
                    kept |= module_members(tree, child)
            if not contains_dynamic(frozenset(kept)):
                for child in detachable:
                    cut(child)
                modules.append(
                    Module(
                        root=root,
                        members=frozenset(kept),
                        dynamic=False,
                        detached=tuple(detachable),
                    )
                )
                return
        # Dynamic context: the whole sub-tree becomes one module.
        modules.append(Module(root=root, members=members, dynamic=True))

    cut(tree.top)
    return modules
