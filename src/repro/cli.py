"""Command-line interface of the reproduction.

The CLI mirrors the workflow of the paper's tool chain: read a DFT in Galileo
format, convert it into an I/O-IMC community, run compositional aggregation
and report reliability measures.  Sub-commands:

``analyze``
    Unreliability (or bounds, for non-deterministic trees) at one or more
    mission times, plus optional unavailability / MTTF, with composition
    statistics.
``baseline``
    The DIFTree-style modular analysis of the same file, for comparison.
``modules``
    The independent modules of the tree and how DIFTree would cut it.
``community``
    List the I/O-IMC community generated for the tree (one line per member).
``dot``
    Export the fault tree (or the final aggregated I/O-IMC) as Graphviz dot.

Run ``python -m repro --help`` for the full synopsis.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional

from . import __version__
from .baselines import DiftreeAnalyzer
from .core import AnalysisOptions, CompositionalAnalyzer
from .dft import diftree_modules, galileo, independent_modules
from .dft.visualization import to_dot
from .errors import ReproError
from .ioimc import AggregationOptions


def _load_tree(path: str):
    if path == "-":
        return galileo.parse(sys.stdin.read(), name="<stdin>")
    return galileo.parse_file(path)


def _add_tree_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "tree",
        help="path to a Galileo .dft file ('-' reads the description from stdin)",
    )


def _analysis_options(args: argparse.Namespace) -> AnalysisOptions:
    return AnalysisOptions(
        ordering=args.ordering,
        aggregation=AggregationOptions(method=args.aggregation),
        fuse=not getattr(args, "no_fuse", False),
    )


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------

def command_analyze(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    analyzer = CompositionalAnalyzer(tree, _analysis_options(args))
    print(f"Fault tree : {tree.summary()}")
    print(f"Community  : {analyzer.community.summary()}")
    print(f"Aggregation: {analyzer.statistics.summary()}")
    for time in args.time:
        if analyzer.is_nondeterministic:
            low, high = analyzer.unreliability_bounds(time)
            print(f"Unreliability(t={time:g}) in [{low:.6f}, {high:.6f}]")
        else:
            print(f"Unreliability(t={time:g}) = {analyzer.unreliability(time):.6f}")
    if args.mttf:
        print(f"Mean time to failure = {analyzer.mean_time_to_failure():.6f}")
    if args.unavailability:
        print(f"Steady-state unavailability = {analyzer.unavailability():.6f}")
    return 0


def command_baseline(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    result = DiftreeAnalyzer(tree).analyze(args.time[0])
    for module in result.modules:
        print("  " + module.summary())
    print(result.summary())
    return 0


def command_modules(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    print("Independent modules:", ", ".join(independent_modules(tree)) or "(none)")
    print("DIFTree cut:")
    for module in diftree_modules(tree):
        kind = "dynamic" if module.dynamic else "static"
        detached = f", detaches {', '.join(module.detached)}" if module.detached else ""
        print(f"  {module.root}: {kind}, {module.size} elements{detached}")
    return 0


def command_community(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    analyzer = CompositionalAnalyzer(tree, _analysis_options(args))
    for member in analyzer.community.members:
        print(f"  [{member.kind:<20}] {member.model.summary()}")
    print(analyzer.community.summary())
    return 0


def command_dot(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    if args.final_model:
        analyzer = CompositionalAnalyzer(tree, _analysis_options(args))
        output = analyzer.final_ioimc.to_dot()
    else:
        output = to_dot(tree)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        print(output)
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compositional dynamic fault tree analysis via I/O-IMC "
        "(reproduction of Boudali, Crouzen & Stoelinga, DSN 2007).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ordering",
            choices=["linked", "smallest", "sequential", "modular"],
            default="linked",
            help="composition ordering strategy (default: linked; 'modular' "
            "follows the tree's independent-module decomposition)",
        )
        sub.add_argument(
            "--aggregation",
            choices=["weak", "strong", "tau", "none"],
            default="weak",
            help="aggregation method applied after every composition (default: weak)",
        )
        sub.add_argument(
            "--no-fuse",
            action="store_true",
            help="disable fused maximal progress during composition "
            "(compose-then-reduce baseline)",
        )

    analyze = subparsers.add_parser("analyze", help="compute unreliability / MTTF / unavailability")
    _add_tree_argument(analyze)
    analyze.add_argument(
        "--time",
        type=float,
        nargs="+",
        default=[1.0],
        help="mission time(s) at which to evaluate the unreliability (default: 1.0)",
    )
    analyze.add_argument("--mttf", action="store_true", help="also report the mean time to failure")
    analyze.add_argument(
        "--unavailability",
        action="store_true",
        help="also report the steady-state unavailability (repairable trees)",
    )
    add_common(analyze)
    analyze.set_defaults(handler=command_analyze)

    baseline = subparsers.add_parser("baseline", help="run the DIFTree-style modular baseline")
    _add_tree_argument(baseline)
    baseline.add_argument("--time", type=float, nargs="+", default=[1.0])
    baseline.set_defaults(handler=command_baseline)

    modules = subparsers.add_parser("modules", help="show the tree's independent modules")
    _add_tree_argument(modules)
    modules.set_defaults(handler=command_modules)

    community = subparsers.add_parser("community", help="list the generated I/O-IMC community")
    _add_tree_argument(community)
    add_common(community)
    community.set_defaults(handler=command_community)

    dot = subparsers.add_parser("dot", help="export the tree (or final model) as Graphviz dot")
    _add_tree_argument(dot)
    dot.add_argument("--output", "-o", help="write to a file instead of stdout")
    dot.add_argument(
        "--final-model",
        action="store_true",
        help="export the final aggregated I/O-IMC instead of the fault tree",
    )
    add_common(dot)
    dot.set_defaults(handler=command_dot)
    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
